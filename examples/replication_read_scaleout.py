"""Read scale-out and delayed-apply error recovery with log shipping.

Run with::

    python examples/replication_read_scaleout.py

The transaction log already contains everything needed to materialize any
state of the database — so shipping that one stream to standbys gives
read scale-out and a safety net in a single mechanism. This example walks
both halves:

1. **Read offload.** A warm standby follows the primary by continuous
   redo apply. Current ``SELECT``\\ s route to it once offload is enabled,
   and inline ``AS OF`` reads are served from the *standby's* snapshot
   pool — the primary's media never sees the time-travel work.
2. **Delayed apply.** A second standby applies the stream on a delay.
   When an "oops" (a dropped table) slips past the primary's retention
   horizon, the delayed standby still holds the whole timeline: read the
   pre-drop state from inside its window, or promote it into a writable
   database cut just before the error.
"""

from repro import Engine


def main() -> None:
    engine = Engine()
    clock = engine.env.clock
    session = engine.session()
    session.execute("CREATE DATABASE shop")
    session.execute("USE shop")
    session.execute(
        """
        CREATE TABLE orders (
            id INT NOT NULL,
            customer VARCHAR(64) NOT NULL,
            total FLOAT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    session.execute("ALTER DATABASE shop SET UNDO_INTERVAL = 2 MINUTES")
    for i in range(10):
        session.execute(
            f"INSERT INTO orders VALUES ({i}, 'cust-{i % 3}', {25.0 * (i + 1)})"
        )

    # -- 1. a warm standby absorbing reads -----------------------------
    standby = engine.add_replica("shop", "shop_standby")
    print(f"standby attached: {standby!r}")

    engine.enable_read_offload()
    count = session.execute("SELECT COUNT(*) FROM orders").scalar()
    print(f"offloaded SELECT sees {count} orders (lag {standby.lag_bytes()}B)")

    clock.advance(30)
    session.execute("INSERT INTO orders VALUES (10, 'cust-0', 999.0)")
    engine.replication_tick()  # the shipping/apply daemons' heartbeat
    t_good = clock.now()
    clock.advance(5)

    # Inline time travel served by the standby's own snapshot pool.
    with engine.query_as_of("shop", t_good) as snap:
        historical = sum(1 for _ in snap.scan("orders"))
    print(
        f"AS OF {t_good:.0f}s saw {historical} orders — served by the "
        f"standby (primary pool misses: {engine.snapshot_pool.stats.misses}, "
        f"standby pool misses: {standby.snapshot_pool.stats.misses})"
    )

    # -- 2. the delayed-apply safety net -------------------------------
    delayed = engine.add_replica(
        "shop", "shop_delayed", apply_delay_s=10 * 60.0
    )
    clock.advance(20)
    t_before_oops = clock.now()
    clock.advance(1)
    session.execute("DROP TABLE orders")  # the application error
    engine.replication_tick()

    # Time passes; the primary's 2-minute retention crosses the drop.
    db = engine.database("shop")
    for _ in range(4):
        clock.advance(60)
        db.checkpoint()
        engine.replication_tick()
    db.enforce_retention()

    # The primary's own pool can no longer rewind past the horizon. (The
    # engine's query_as_of would transparently fall over to a standby —
    # any standby extends the reachable history — so probe the primary
    # pool directly to see the paper's retention limit bite.)
    from repro.errors import RetentionExceededError

    try:
        with engine.snapshot_pool.lease(db, t_before_oops):
            pass
        raise AssertionError("primary should no longer reach before the drop")
    except RetentionExceededError as err:
        print(f"primary rewind fails as expected: {type(err).__name__}")

    # The delayed standby still holds the whole shipped timeline.
    with engine.query_as_of("shop", t_before_oops, replica="shop_delayed") as snap:
        rescued = list(snap.scan("orders"))
    print(f"delayed standby reads {len(rescued)} orders from before the drop")

    # Or cut a writable database just before the error.
    recovered = engine.promote_replica("shop_delayed", up_to=t_before_oops)
    rows = session.execute("SELECT COUNT(*) FROM shop_delayed.orders").scalar()
    print(f"promoted {recovered.name!r}: {rows} orders on the recovered timeline")
    assert rows == len(rescued) == 11


if __name__ == "__main__":
    main()
