"""A tour of the observability layer: TRACE, SHOW METRICS, gauges.

Run with::

    python examples/observability_tour.py

Everything the engine does is measured on the *simulated* clock, so the
traces and metric values printed here are byte-identical on every run.
The tour:

1. **TRACE a cold AS OF query.** The span tree shows the whole pipeline:
   split resolution, pool miss, snapshot creation, and — per page — the
   version-store probe missing and the chain walk paying batched log
   reads (the ``io[...]`` deltas on each span).
2. **TRACE the same query warm.** The snapshot pool is dropped first, so
   the pool still misses — but every page probe now *hits* the
   cross-snapshot version store and the chain-walk spans (and their
   undo-path log reads) disappear.
3. **SHOW METRICS.** The same counters, as SQL rows: hit rates, log
   gauges, histograms.
4. **Lag gauges.** A standby and an archiver report their health as
   derived gauges — no sampling loop, just distance computed from live
   LSNs at read time.
"""

from repro.config import CostModel, SimEnv
from repro.engine.engine import Engine
from repro.sim.device import SAS_10K


def main() -> None:
    # Priced devices + CPU cost model: spans show real simulated time.
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    session = engine.session()
    session.execute("CREATE DATABASE shop")
    session.execute("USE shop")
    session.execute(
        """
        CREATE TABLE orders (
            id INT NOT NULL,
            total FLOAT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    for i in range(12):
        session.execute(f"INSERT INTO orders VALUES ({i}, {10.0 * (i + 1)})")
    session.execute("CHECKPOINT")
    t_past = env.clock.now()
    session.execute("UPDATE orders SET total = 0.0 WHERE id < 6")

    # -- 1. cold: pool miss, store misses, chain walks ------------------
    print("== cold AS OF query ==")
    result = session.execute(f"TRACE SELECT * FROM orders AS OF {t_past}")
    for (line,) in result.rows:
        print(line)

    # -- 2. warm: pool dropped, store hits, no chain walks --------------
    # Clearing the pool forces snapshot re-creation; the version store
    # survives, so page preparation is pure reuse.
    engine.snapshot_pool.clear()
    print("\n== same query, warm version store ==")
    result = session.execute(f"TRACE SELECT * FROM orders AS OF {t_past}")
    for (line,) in result.rows:
        print(line)
    walk_lines = [line for (line,) in result.rows if "chain_walk" in line]
    hits = [line for (line,) in result.rows if "hit=True" in line]
    print(
        f"\nwarm run: {len(hits)} store hits, "
        f"{len(walk_lines)} chain walks, zero undo log reads"
    )

    # -- 3. the counters behind the spans, as SQL ------------------------
    print("\n== SHOW METRICS LIKE 'version_store.*' ==")
    for name, value in session.execute(
        "SHOW METRICS LIKE 'version_store.*'"
    ).rows:
        print(f"{name} = {value}")

    # -- 4. derived lag/health gauges ------------------------------------
    engine.add_replica("shop", "standby")
    session.execute("INSERT INTO orders VALUES (100, 1.0)")
    engine.database("shop").log.flush()
    print("\n== replica lag, before and after a replication tick ==")
    for _ in range(2):
        for name, value in session.execute(
            "SHOW METRICS LIKE 'replica.standby.apply_lag_*'"
        ).rows:
            print(f"{name} = {value}")
        engine.replication_tick()
    session.close()


if __name__ == "__main__":
    main()
