"""A tour of chaos hardening: injected faults, detection, auto-failover.

Run with::

    python examples/chaos_failover_tour.py

Every fault in this tour comes from the seeded
:class:`~repro.chaos.injector.FaultInjector`, every clock is simulated,
and every decision (retry backoff, alert firing, the failover verdict)
is derived from those — so the whole story below is byte-identical on
every run. The tour:

1. **Arm chaos.** ``engine.enable_chaos(seed)`` shares one seeded
   injector across shippers, replicas, archivers and devices; rules
   name an injection point, a fault kind, and when.
2. **Survive transient faults.** A partitioned standby's ship attempts
   fail; the cursor holds its ground, backoff paces the retries, and
   when the link heals the stream resumes from the exact LSN — nothing
   skipped, nothing double-applied.
3. **Detect a real death.** A scheduled whole-primary crash halts the
   database. The built-in ``repl.ship_errors``/``repl.ship_stall``
   alerts fire, the failure detector suspects, waits ``confirm_s``
   for any sign of progress, then confirms the primary down.
4. **Fail over.** The coordinator promotes the most-caught-up healthy
   standby, re-points the surviving replica at the new primary, and
   read offload follows. Zero committed writes are lost: every commit
   flushed the log, and the durable tail was drained to subscribers.
5. **Read the records.** ``SHOW FAULTS`` is the injected schedule;
   ``engine.ha_events`` is the detection/failover timeline — the same
   rows CI diffs across two same-seed runs.
"""

from repro.chaos import FaultRule
from repro.config import SimEnv
from repro.engine.engine import Engine


def show(title: str, rows) -> None:
    print(f"-- {title} --")
    for row in rows:
        print(f"  {row}")


def main() -> None:
    env = SimEnv.for_tests()
    engine = Engine(env)
    db = engine.create_database("shop")
    session = engine.session("shop")
    session.execute(
        "CREATE TABLE orders (id INT NOT NULL, total FLOAT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    sa = engine.add_replica("shop", "sa")
    sb = engine.add_replica("shop", "sb")
    engine.enable_read_offload()
    engine.enable_auto_failover(confirm_s=2.0)

    # -- 1. arm ----------------------------------------------------------
    chaos = engine.enable_chaos(seed=0)
    print(f"armed: {chaos!r}")

    # -- 2. transient faults: retry, backoff, exact resume ---------------
    now = env.clock.now()
    chaos.add_rule(
        FaultRule(
            point="repl.ship.send", kind="partition",
            target="sb", window=(now, now + 1.0),
        )
    )
    for i in range(20):
        session.execute(f"INSERT INTO orders VALUES ({i}, {i * 2.5})")
    engine.replication_tick()
    print(
        f"during the partition: sa received {sa.received_lsn:#x}, "
        f"sb held at {sb.received_lsn:#x} "
        f"(streaks {engine.shipper_errors('shop')})"
    )
    for _ in range(4):
        env.clock.advance(0.5)
        engine.replication_tick()
    print(
        f"after it heals:      sb resumed to {sb.received_lsn:#x} "
        f"(streaks {engine.shipper_errors('shop')})"
    )
    assert sa.received_lsn == sb.received_lsn

    # -- 3 + 4. crash, detect, fail over ---------------------------------
    committed = sum(1 for _ in db.scan("orders"))
    chaos.schedule_crash("shop", env.clock.now() + 0.5)
    for _ in range(12):
        env.clock.advance(0.5)
        engine.replication_tick()
    promoted_name = engine.ha.completed["shop"]
    promoted = engine.database(promoted_name)
    surviving = sb if promoted_name == "sa" else sa
    print(f"promoted: {promoted_name}; survivor re-pointed: "
          f"{surviving.primary is promoted}")
    print(f"committed orders before crash: {committed}, "
          f"on the new primary: {sum(1 for _ in promoted.scan('orders'))}")
    routed = engine.routing_replica(promoted_name)
    print(f"read offload now routes to: {routed.name}")

    # The new primary is a primary: it takes writes and ships them on.
    with promoted.transaction() as txn:
        promoted.insert(txn, "orders", (100, 250.0))
    engine.replication_tick()
    print(f"post-failover write replicated: "
          f"{surviving.get('orders', (100,)) is not None}")

    # -- 5. the records ---------------------------------------------------
    show(
        "SHOW FAULTS (the injected schedule)",
        engine.sql("SHOW FAULTS").rows,
    )
    show(
        "HA timeline",
        [
            f"[t={e['t']:.1f}] {e['event']} {e['db']}: {e['detail']}"
            for e in engine.ha_events
        ],
    )
    session.close()


if __name__ == "__main__":
    main()
