"""Retention windows and storage media: the operational side of time travel.

Run with::

    python examples/retention_and_media.py

Demonstrates section 4.3 and the section 6 media findings:

* ``UNDO_INTERVAL`` bounds how far back snapshots can reach; enforcement
  truncates the log, and probing beyond the horizon raises
  ``RetentionExceededError``.
* The same as-of query costs an order of magnitude more simulated time
  when the log lives on a 10K-RPM SAS spindle than on an SLC SSD, because
  page-oriented undo stalls on random log reads — the paper's argument
  for low-latency log media.
"""

from repro import SAS_10K, SLC_SSD, Engine, RetentionExceededError
from repro.bench.harness import make_perf_env
from repro.workload import TpccDriver, TpccScale, load_tpcc
from repro.workload.tpcc_txns import stock_level

SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=10,
    items=60,
)


def retention_demo() -> None:
    print("--- retention (section 4.3) ---")
    engine = Engine()
    db = engine.create_database("shop")
    clock = engine.env.clock
    load_tpcc(db, SCALE)
    db.set_undo_interval(10 * 60)  # keep 10 minutes of history
    driver = TpccDriver(db, SCALE, seed=5, think_time_s=0.05)

    driver.run_transactions(100)
    early = clock.now()
    db.checkpoint()
    clock.advance(20 * 60)  # twenty minutes pass
    driver.run_transactions(100)
    db.checkpoint()
    log_before = db.log.total_bytes()
    db.enforce_retention()
    print(f"log truncated: {log_before / 1e6:.2f} MB -> "
          f"{db.log.total_bytes() / 1e6:.2f} MB")

    recent = clock.now() - 60
    snap = engine.create_asof_snapshot("shop", "ok", recent)
    print(f"as-of {60:.0f}s back: works, "
          f"{sum(1 for _ in snap.scan('orders'))} orders visible")
    engine.drop_snapshot("ok")
    try:
        engine.create_asof_snapshot("shop", "too_old", early)
    except RetentionExceededError as exc:
        print(f"as-of {20 * 60}s back: {type(exc).__name__} (as designed)")


def media_demo() -> None:
    print("\n--- media comparison (figures 7-10) ---")
    results = {}
    for label, profile in (("SLC SSD", SLC_SSD), ("SAS 10K", SAS_10K)):
        env = make_perf_env(profile)
        engine = Engine(env)
        db = engine.create_database("shop")
        load_tpcc(db, SCALE)
        driver = TpccDriver(db, SCALE, seed=5, think_time_s=0.05)
        driver.run_for(90.0)
        target = env.clock.now() - 60.0
        t0 = env.clock.now()
        snap = engine.create_asof_snapshot("shop", "past", target)
        stock_level(snap, 1, 1, 60)
        results[label] = env.clock.now() - t0
        print(f"{label}: as-of stock-level 60s back = "
              f"{results[label] * 1000:.1f} simulated ms")
    print(f"SAS / SSD ratio: {results['SAS 10K'] / results['SLC SSD']:.1f}x "
          f"(random log reads dominate on spindles)")


if __name__ == "__main__":
    retention_demo()
    media_demo()
