"""Unbounded point-in-time recovery with the archive tier.

Run with::

    python examples/archive_pitr.py

Retention bounds how far back the paper's as-of machinery can reach: once
``UNDO_INTERVAL`` closes, page-oriented undo has no log to rewind with.
The archive tier lifts that bound. This example walks the whole story:

1. **Continuous archiving + backups.** ``BACKUP DATABASE`` archives a
   full backup (and enables continuous log archiving — segments move to
   the archive *before* retention truncates them); later backups copy
   only the pages that changed.
2. **The horizon closes.** After retention truncates the primary's log,
   creating an as-of snapshot at the old time fails — with an error that
   now names the ways out.
3. **Archive restore.** ``RESTORE DATABASE ... AS OF`` materializes the
   pre-mistake state anyway, from backup chain + archived log; inline
   ``AS OF`` queries transparently fall back to the same machinery.
4. **Backup-seeded replica.** A standby attaches long after the
   primary's log was truncated: seeded from the newest chain, gap-filled
   from archived segments, then following the live ship stream.
"""

from repro import Engine
from repro.errors import RetentionExceededError


def main() -> None:
    engine = Engine()
    clock = engine.env.clock
    session = engine.session()
    session.execute("CREATE DATABASE shop")
    session.execute("USE shop")
    session.execute(
        """
        CREATE TABLE orders (
            id INT NOT NULL,
            customer VARCHAR(64) NOT NULL,
            total FLOAT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    session.execute("ALTER DATABASE shop SET UNDO_INTERVAL = 2 MINUTES")

    # -- 1. archive tier on, full baseline, then churn + incrementals --
    for i in range(8):
        session.execute(
            f"INSERT INTO orders VALUES ({i}, 'cust-{i % 3}', {20.0 * (i + 1)})"
        )
    print(session.execute("BACKUP DATABASE shop").message)

    clock.advance(30)
    session.execute("UPDATE orders SET total = 1.0 WHERE id = 0")
    t_good = clock.now()
    print(f"good state at t={t_good:.1f}s: total(0) = 1.0")
    clock.advance(30)
    print(session.execute("BACKUP DATABASE shop").message)

    clock.advance(30)
    session.execute("DELETE FROM orders WHERE total > 50")  # the mistake
    print("the mistake: big orders deleted")

    # -- 2. retention closes over the good state -----------------------
    shop = engine.database("shop")
    for _ in range(3):
        clock.advance(120)
        shop.checkpoint()
    shop.enforce_retention()
    engine.snapshot_pool.clear()
    try:
        engine.create_asof_snapshot("shop", "too_late", t_good)
    except RetentionExceededError as err:
        print(f"\nas-of snapshot refused:\n  {err}")

    # -- 3. the archive still reaches it -------------------------------
    print()
    print(session.execute(f"RESTORE DATABASE shop AS OF {t_good} AS shop_then").message)
    rows = session.execute("SELECT id, total FROM shop_then.orders ORDER BY id").rows
    print(f"restored copy has {len(rows)} orders, total(0) = {rows[0][1]}")

    # Inline AS OF falls back to the archive transparently.
    count = session.execute(
        f"SELECT COUNT(*) FROM orders AS OF {t_good}"
    ).scalar()
    print(f"inline AS OF past the horizon sees {count} orders")

    # -- 4. a replica seeded from the backup chain ---------------------
    replica = engine.add_replica("shop", "shop_standby", seed_from_backup=True)
    session.execute("INSERT INTO orders VALUES (100, 'cust-0', 10.0)")
    engine.database("shop").log.flush()
    engine.replication_tick()
    print(
        f"\nseeded standby: {replica!r}\n"
        f"standby sees the new order: "
        f"{replica.get('orders', (100,)) is not None} (lag {replica.lag_bytes()}B)"
    )
    session.close()


if __name__ == "__main__":
    main()
