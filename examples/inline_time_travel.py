"""Inline time travel: point-in-time SQL with no snapshot ceremony.

Run with::

    python examples/inline_time_travel.py

The seed engine could already answer "what did this row look like at
12:05?" — but only through named-snapshot DDL the user had to create,
``USE`` and drop by hand. With the snapshot pool, any read can time-travel
inline::

    SELECT * FROM accounts AS OF '2012-03-22 17:26:25'

Repeated queries at the same instant share one pooled ephemeral snapshot
(one sparse side file, pages prepared once), concurrent sessions refcount
it, and the pool evicts least-recently-used snapshots under a byte budget.
This example walks an "oops" recovery end to end in SQL: accidental
deletes, inline historical reads to find the good state, and the
reconcile ``INSERT ... SELECT ... AS OF`` — all without a single
``CREATE DATABASE ... AS SNAPSHOT`` statement.
"""

from repro import Engine


def main() -> None:
    engine = Engine()
    clock = engine.env.clock
    session = engine.session()
    session.execute("CREATE DATABASE bank")
    session.execute("USE bank")
    session.execute(
        """
        CREATE TABLE accounts (
            id INT NOT NULL,
            owner VARCHAR(64) NOT NULL,
            balance FLOAT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    for i in range(8):
        session.execute(
            f"INSERT INTO accounts VALUES ({i}, 'owner-{i}', {100.0 * (i + 1)})"
        )

    clock.advance(60)
    t_good = clock.now()
    print(f"t_good = {t_good:.0f}s: "
          f"{session.execute('SELECT COUNT(*) FROM accounts').scalar()} accounts")

    # The application error: a sloppy DELETE wipes most of the table.
    clock.advance(60)
    session.execute("DELETE FROM accounts WHERE id > 1")
    remaining = session.execute("SELECT COUNT(*) FROM accounts").scalar()
    print(f"after the oops: {remaining} accounts remain")

    # Inline historical reads — no DDL, no USE, no DROP.
    total_then = session.execute(
        f"SELECT SUM(balance) FROM accounts AS OF {t_good}"
    ).scalar()
    print(f"inline AS OF {t_good:.0f}: total balance was {total_then:.2f}")

    # Repeated queries at the same instant hit the pool.
    for account_id in (5, 6, 7):
        row = session.execute(
            f"SELECT owner, balance FROM accounts AS OF {t_good} "
            f"WHERE id = {account_id}"
        ).rows[0]
        print(f"  as-of id={account_id}: {row[0]} {row[1]:.2f}")
    stats = engine.snapshot_pool.stats
    print(f"pool: {stats.misses} snapshot created, {stats.hits} reuses, "
          f"{engine.snapshot_pool.total_bytes()} side-file bytes")
    assert stats.misses == 1, "every query shared one pooled snapshot"

    # Reconcile: pull the lost rows back from the past, inline.
    session.execute(
        f"INSERT INTO accounts SELECT * FROM accounts AS OF {t_good} "
        f"WHERE id > 1"
    )
    total_now = session.execute("SELECT SUM(balance) FROM accounts").scalar()
    print(f"after reconcile: total balance {total_now:.2f}")
    assert abs(total_now - total_then) < 1e-6

    # The programmatic twin of the SQL above.
    with engine.query_as_of("bank", t_good) as snapshot:
        rows = list(snapshot.scan("accounts"))
    print(f"query_as_of lease saw {len(rows)} historical rows; "
          f"pool now: {engine.snapshot_pool!r}")

    # --- the repeated-audit loop -------------------------------------
    # An auditor re-checks several past instants over and over (think a
    # compliance dashboard). Pooled snapshots make the *same* instant
    # cheap; the cross-snapshot version store makes *nearby* instants
    # cheap too: each page image prepared once is keyed by the validity
    # interval its chain walk proved, so every audit point whose split
    # falls in the interval reuses it — even after the pool itself was
    # dropped under memory pressure.
    audit_points = []
    for step in range(4):
        clock.advance(30)
        audit_points.append(clock.now())
        session.execute(
            f"UPDATE accounts SET balance = balance + {step + 1} WHERE id = 0"
        )
    for audit_round in range(3):
        if audit_round:
            # Simulate pool-tier memory pressure between audit rounds.
            engine.snapshot_pool.clear()
        for when in audit_points:
            total = session.execute(
                f"SELECT SUM(balance) FROM accounts AS OF {when}"
            ).scalar()
            assert total is not None
    store = engine.version_store_stats()
    print(
        f"audit loop over {len(audit_points)} instants x3 rounds: "
        f"version store hit rate {store['hit_rate']:.0%} "
        f"({store['hits']} hits, {store['misses']} misses, "
        f"{store['versions']} stored versions, {store['bytes']} bytes)"
    )


if __name__ == "__main__":
    main()
