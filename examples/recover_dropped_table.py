"""The paper's introduction scenario: recover a dropped table, in SQL.

Run with::

    python examples/recover_dropped_table.py

Steps, exactly as section 1 of the paper describes them:

1. *Determine the point in time and mount the snapshot* — create an as-of
   snapshot at an approximate time, check the catalog for the table;
   if it is not there yet, drop the snapshot and probe an earlier time.
   Each probe is cheap: only metadata pages are unwound.
2. *Reconcile* — read the table's schema from the snapshot's catalog,
   recreate it in the live database, and ``INSERT ... SELECT`` the data
   across.
"""

from repro import Engine


def main() -> None:
    engine = Engine()
    engine.create_database("erp")
    clock = engine.env.clock
    sql = engine.session("erp")

    sql.execute(
        """
        CREATE TABLE vendors (
            id INT NOT NULL,
            name VARCHAR(60) NOT NULL,
            rating FLOAT NOT NULL,
            PRIMARY KEY (id)
        )
        """
    )
    sql.execute(
        "INSERT INTO vendors VALUES "
        "(1,'Acme',4.5),(2,'Globex',3.9),(3,'Initech',2.1)"
    )
    sql.execute("ALTER DATABASE erp SET UNDO_INTERVAL = 24 HOURS")

    clock.advance(1800)  # half an hour of uptime
    drop_moment = clock.now()
    sql.execute("DROP TABLE vendors")
    clock.advance(900)
    print("tables now:", sql.execute("SHOW TABLES").rows)

    # --- Step 1: probe backwards for a snapshot where the table exists.
    probe_times = [drop_moment + 60, drop_moment - 60, drop_moment - 600]
    mounted = None
    for attempt, when in enumerate(probe_times):
        stamp = clock.to_datetime(when).replace(tzinfo=None).isoformat(sep=" ")
        name = f"erp_probe{attempt}"
        sql.execute(f"CREATE DATABASE {name} AS SNAPSHOT OF erp AS OF '{stamp}'")
        snap = engine.snapshot(name)
        exists = snap.table_exists("vendors")
        print(f"probe {attempt} at {stamp}: vendors {'present' if exists else 'missing'}")
        if exists:
            mounted = name
            break
        sql.execute(f"DROP DATABASE {name}")
    assert mounted is not None

    # --- Step 2: recreate the table from the snapshot's own catalog and
    # reconcile the data with INSERT ... SELECT.
    schema = engine.snapshot(mounted).schema("vendors")
    columns = ", ".join(
        f"{col.name} {'FLOAT' if col.ctype.value == 'float' else 'INT' if col.ctype.value == 'int' else f'VARCHAR({col.max_len})'}"
        f"{'' if col.nullable else ' NOT NULL'}"
        for col in schema.columns
    )
    sql.execute(
        f"CREATE TABLE vendors ({columns}, PRIMARY KEY ({', '.join(schema.key)}))"
    )
    copied = sql.execute(f"INSERT INTO vendors SELECT * FROM {mounted}.vendors")
    print(f"\nreconciled {copied.rowcount} rows")
    print("vendors again:", sql.execute("SELECT * FROM vendors ORDER BY id").rows)
    sql.execute(f"DROP DATABASE {mounted}")


if __name__ == "__main__":
    main()
