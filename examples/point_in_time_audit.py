"""Point-in-time audit: watch a TPC-C customer's balance move through time.

Run with::

    python examples/point_in_time_audit.py

Beyond error recovery, as-of snapshots answer historical questions ("what
did this account look like at 12:05?") without any temporal-table
machinery: every answer comes from the same transaction log the engine
keeps anyway. This example runs a TPC-C burst, then audits one customer's
balance and one district's order volume at several past instants — and
cross-checks the totals against the (heap-stored) payment history.

Each audit instant is read through ``engine.query_as_of``: an ephemeral
snapshot leased from the engine's pool, created on first touch and shared
by every later query at the same instant — no snapshot DDL, naming, or
cleanup. The same point is also queried inline in SQL
(``SELECT ... FROM tpcc.customer AS OF <t>``) to show both surfaces hit
the same pooled snapshot.
"""

from repro import Engine
from repro.workload import TpccDriver, TpccScale, load_tpcc


def main() -> None:
    engine = Engine()
    db = engine.create_database("tpcc")
    clock = engine.env.clock
    scale = TpccScale(
        warehouses=1,
        districts_per_warehouse=2,
        customers_per_district=10,
        items=60,
    )
    load_tpcc(db, scale)
    driver = TpccDriver(db, scale, seed=2024, think_time_s=0.02)

    customer_key = (1, 1, 1)
    instants = []
    for _phase in range(4):
        driver.run_transactions(120)
        clock.advance(30)
        instants.append(clock.now())
    # Audit strictly past instants: "as of now" is a moving target (every
    # commit — including the ones snapshot creation itself logs — moves
    # it), so resolving the same past time twice shares a pool entry.
    clock.advance(5)

    print("live balance:", db.get("customer", customer_key)[4])
    print("\naudit trail (pooled inline as-of reads):")
    print(f"{'instant':>10} {'balance':>12} {'orders(d=1)':>12} {'payments':>9}")
    for when in instants:
        with engine.query_as_of("tpcc", when) as snap:
            balance = snap.get("customer", customer_key)[4]
            orders = sum(1 for _ in snap.scan("orders", (1, 1, 0), (1, 1, 2**31)))
            payments = sum(1 for _ in snap.scan("history"))
            print(f"{when:>10.0f} {balance:>12.2f} {orders:>12} {payments:>9}")
            # Cross-check: ytd across warehouses equals the history heap
            # total, *as of the same instant* — consistency spans B-trees
            # and heaps.
            ytd = sum(w[2] for w in snap.scan("warehouse"))
            hist = sum(h[4] for h in snap.scan("history"))
            assert abs(ytd - hist) < 1e-6, "audit mismatch!"
    print("\nevery instant's warehouse YTD matched its payment history ✔")

    # The same instants again, now in inline SQL — each query reuses the
    # pooled snapshot the audit loop above already populated.
    misses_before = engine.snapshot_pool.stats.misses
    for when in instants:
        balance = engine.sql(
            f"SELECT c_balance FROM tpcc.customer AS OF {when} "
            f"WHERE w_id = 1 AND d_id = 1 AND c_id = 1"
        ).scalar()
        print(f"SQL AS OF {when:.0f}: balance {balance:.2f}")
    assert engine.snapshot_pool.stats.misses == misses_before, (
        "inline SQL reads must reuse the pooled audit snapshots"
    )
    print(f"\nsnapshot pool after the audit: {engine.snapshot_pool!r}")


if __name__ == "__main__":
    main()
