"""Point-in-time audit: watch a TPC-C customer's balance move through time.

Run with::

    python examples/point_in_time_audit.py

Beyond error recovery, as-of snapshots answer historical questions ("what
did this account look like at 12:05?") without any temporal-table
machinery: every answer comes from the same transaction log the engine
keeps anyway. This example runs a TPC-C burst, then audits one customer's
balance and one district's order volume at several past instants — and
cross-checks the totals against the (heap-stored) payment history.
"""

from repro import Engine
from repro.workload import TpccDriver, TpccScale, load_tpcc


def main() -> None:
    engine = Engine()
    db = engine.create_database("tpcc")
    clock = engine.env.clock
    scale = TpccScale(
        warehouses=1,
        districts_per_warehouse=2,
        customers_per_district=10,
        items=60,
    )
    load_tpcc(db, scale)
    driver = TpccDriver(db, scale, seed=2024, think_time_s=0.02)

    customer_key = (1, 1, 1)
    instants = []
    for phase in range(4):
        driver.run_transactions(120)
        clock.advance(30)
        instants.append(clock.now())

    print("live balance:", db.get("customer", customer_key)[4])
    print("\naudit trail (as-of snapshots):")
    print(f"{'instant':>10} {'balance':>12} {'orders(d=1)':>12} {'payments':>9}")
    for index, when in enumerate(instants):
        snap = engine.create_asof_snapshot("tpcc", f"audit{index}", when)
        balance = snap.get("customer", customer_key)[4]
        orders = sum(1 for _ in snap.scan("orders", (1, 1, 0), (1, 1, 2**31)))
        payments = sum(1 for _ in snap.scan("history"))
        print(f"{when:>10.0f} {balance:>12.2f} {orders:>12} {payments:>9}")
        # Cross-check: ytd across warehouses equals the history heap total,
        # *as of the same instant* — consistency spans B-trees and heaps.
        ytd = sum(w[2] for w in snap.scan("warehouse"))
        hist = sum(h[4] for h in snap.scan("history"))
        assert abs(ytd - hist) < 1e-6, "audit mismatch!"
        engine.drop_snapshot(f"audit{index}")
    print("\nevery instant's warehouse YTD matched its payment history ✔")


if __name__ == "__main__":
    main()
