"""A tour of continuous monitoring: history, alerts, health.

Run with::

    python examples/monitoring_tour.py

The monitoring layer samples the metrics registry on the *simulated*
clock from the engine's existing pump points — no thread, no wall
timers — so the whole tour (sample timestamps, alert fire/clear times,
health transitions) is byte-identical on every run. The tour:

1. **Arm the monitor.** ``engine.start_monitor()`` takes the first
   sample and installs the built-in rules over the lag gauges.
2. **Induce replica lag.** A write burst runs without replication
   ticks; the SQL pump point keeps sampling, the recorder watches
   ``replica.standby.apply_lag_bytes`` climb, and the ``repl.apply_lag``
   rule fires — ``SHOW HEALTH`` drops to DEGRADED.
3. **Catch up.** One ``replication_tick`` drains the backlog; the next
   sample sees zero lag and the alert clears — health returns to OK.
4. **Read the records.** ``SHOW HISTORY``, ``SHOW ALERTS`` and
   ``SHOW SLOW QUERIES`` expose the same data as SQL rows.
"""

from repro.config import CostModel, MonitorConfig, SimEnv
from repro.engine.engine import Engine
from repro.sim.device import SAS_10K


def show_health(session) -> None:
    for subsystem, verdict, alerts in session.execute("SHOW HEALTH").rows:
        suffix = f"  [{alerts}]" if alerts else ""
        print(f"  {subsystem}: {verdict}{suffix}")


def main() -> None:
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(
        env,
        monitor_config=MonitorConfig(
            sample_interval_s=0.01,
            apply_lag_bytes=8 * 1024,
            slow_query_sim_s=0.01,
        ),
    )
    session = engine.session()
    session.execute("CREATE DATABASE shop")
    session.execute("USE shop")
    session.execute(
        "CREATE TABLE orders (id INT NOT NULL, total FLOAT NOT NULL, "
        "PRIMARY KEY (id))"
    )
    engine.add_replica("shop", "standby")
    engine.replication_tick()

    # -- 1. arm ----------------------------------------------------------
    engine.start_monitor()
    # The callback registry is how HA failover logic will react to lag.
    engine.on_alert("repl.*", lambda event: print(
        f"  >> callback: {event['event']} {event['rule']} "
        f"at t={event['t']:.6f}"
    ))
    print("== monitor armed ==")
    show_health(session)

    # -- 2. induce lag ---------------------------------------------------
    print("\n== write burst, replication paused ==")
    for i in range(120):
        session.execute(f"INSERT INTO orders VALUES ({i}, {1.0 * i})")
    print(f"replica lag: {engine.replica('standby').lag_bytes()} bytes")
    show_health(session)

    # -- 3. catch up -----------------------------------------------------
    print("\n== replication tick: backlog drains ==")
    engine.replication_tick()
    env.clock.advance(engine.monitor_config.sample_interval_s)
    session.execute("SELECT COUNT(*) FROM orders")
    show_health(session)

    # -- 4. the records --------------------------------------------------
    print("\n== SHOW HISTORY 'replica.standby.apply_lag_bytes' ==")
    for row in session.execute(
        "SHOW HISTORY 'replica.standby.apply_lag_bytes'"
    ).rows:
        metric, points, last, lo, hi, mean, rate = row
        print(f"  {metric}: points={points} last={last} max={hi}")
    print("\n== SHOW ALERTS ==")
    for rule, metric, state, severity, _v, fired, cleared, count in session.execute(
        "SHOW ALERTS"
    ).rows:
        print(
            f"  {rule} on {metric}: {state} "
            f"(fired at {fired:.6f}, cleared at {cleared:.6f}, {count}x)"
        )
    print("\n== SHOW SLOW QUERIES ==")
    for t_s, statement, sim_s, spans in session.execute(
        "SHOW SLOW QUERIES"
    ).rows:
        print(f"  [t={t_s:.6f}] {statement}: {sim_s:.6f}s ({spans} span lines)")
    session.close()


if __name__ == "__main__":
    main()
