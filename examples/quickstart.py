"""Quickstart: recover accidentally deleted rows with an as-of snapshot.

Run with::

    python examples/quickstart.py

A tiny shop database suffers an over-eager DELETE; instead of restoring a
backup, we mount a snapshot of the database *as of* a moment before the
mistake, read the lost rows from it, and put them back — the paper's core
workflow in ~50 lines.
"""

from repro import Column, ColumnType, Engine, TableSchema


def main() -> None:
    engine = Engine()
    db = engine.create_database("shop")
    clock = engine.env.clock

    items = TableSchema(
        "items",
        (
            Column("id", ColumnType.INT),
            Column("name", ColumnType.STR, max_len=40),
            Column("qty", ColumnType.INT),
        ),
        key=("id",),
    )
    db.create_table(items)
    with db.transaction() as txn:
        for i, (name, qty) in enumerate(
            [("anvil", 3), ("rope", 120), ("dynamite", 7), ("bird seed", 46)]
        ):
            db.insert(txn, "items", (i, name, qty))
    print("inventory:", list(db.scan("items")))

    # Time passes; business happens.
    clock.advance(300)
    with db.transaction() as txn:
        db.update(txn, "items", (1,), {"qty": 115})
    moment_before_mistake = clock.now()
    print(f"\nall good at t={moment_before_mistake:.0f}s "
          f"({clock.to_datetime():%Y-%m-%d %H:%M:%S})")

    # The application error: someone deletes the wrong rows.
    clock.advance(60)
    with db.transaction() as txn:
        db.delete(txn, "items", (0,))
        db.delete(txn, "items", (2,))
    print("after the mistake:", list(db.scan("items")))

    # Rewind: a read-only replica of the database as of the good moment.
    snap = engine.create_asof_snapshot("shop", "shop_before", moment_before_mistake)
    lost = [row for row in snap.scan("items") if db.get("items", (row[0],)) is None]
    print("\nrows visible only in the past:", lost)

    # Reconcile: copy the lost rows back into the live database.
    with db.transaction() as txn:
        for row in lost:
            db.insert(txn, "items", row)
    engine.drop_snapshot("shop_before")
    print("recovered inventory:", list(db.scan("items")))

    stats = engine.env.stats
    print(
        f"\n(prepared {stats.pages_prepared_asof} pages, "
        f"undid {stats.undo_records_applied} log records — "
        f"no backup was restored)"
    )


if __name__ == "__main__":
    main()
