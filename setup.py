"""Legacy setup shim.

The environment's setuptools lacks the ``wheel`` package, so PEP 517
editable installs fail; ``pip install -e . --no-use-pep517`` with this
shim works everywhere. Configuration lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
