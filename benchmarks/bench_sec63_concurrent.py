"""Section 6.3 — impact of concurrent as-of queries on throughput.

Paper numbers: running a 5-minute-back as-of query in a loop alongside the
TPC-C workload reduced throughput from 270,000 to 180,000 tpmC (a ~33%
drop), with snapshot creation averaging ~20 s and the as-of stock-level
~30 s. Expected shape here: interleaving as-of snapshot+query work into
the transaction stream costs a visible double-digit percentage of
throughput, because the snapshot checkpoints, undo log reads and sparse
writes share the devices with the OLTP stream.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env
from repro.sim.device import SLC_SSD
from repro.workload.tpcc_txns import stock_level

#: Transactions per measurement window.
WINDOW_TXNS = 800
#: One as-of create+query every this many transactions. The paper ran the
#: query "in a loop", i.e. essentially back to back with the workload.
ASOF_EVERY = 50
#: How far back the looping query goes (the paper used 5 minutes).
BACK_MINUTES = 2.0


def run_sec63() -> dict:
    env = make_perf_env(SLC_SSD)
    engine, db, driver = build_tpcc(env, BENCH_SCALE, name="tpcc63")
    driver.think_time_s = 0.01
    # Warm-up builds enough history to go BACK_MINUTES into.
    driver.run_for(BACK_MINUTES * 60.0 + 60.0)

    baseline = driver.run_transactions(WINDOW_TXNS)

    create_times = []
    query_times = []
    concurrent_committed = 0
    window_start = env.clock.now()
    real_window = 0.0
    snap_index = 0
    remaining = WINDOW_TXNS
    while remaining > 0:
        chunk = driver.run_transactions(min(ASOF_EVERY, remaining))
        concurrent_committed += chunk.committed
        real_window += chunk.real_seconds
        remaining -= min(ASOF_EVERY, remaining)
        target = env.clock.now() - BACK_MINUTES * 60.0
        snap_index += 1
        t0 = env.clock.now()
        snap = engine.create_asof_snapshot(db.name, f"loop{snap_index}", target)
        create_times.append(env.clock.now() - t0)
        t1 = env.clock.now()
        stock_level(snap, w_id=1, d_id=1, threshold=60)
        query_times.append(env.clock.now() - t1)
        engine.drop_snapshot(f"loop{snap_index}")
    concurrent_sim = env.clock.now() - window_start

    return {
        "baseline_tpm": baseline.tpm,
        "concurrent_tpm": concurrent_committed * 60.0 / concurrent_sim,
        "create_avg_s": sum(create_times) / len(create_times),
        "query_avg_s": sum(query_times) / len(query_times),
        "asof_loops": snap_index,
    }


def test_sec63_concurrent(benchmark, show):
    result = benchmark.pedantic(run_sec63, rounds=1, iterations=1)

    drop = 1 - result["concurrent_tpm"] / result["baseline_tpm"]
    table = ReportTable(
        "Section 6.3: concurrent as-of query impact",
        ["metric", "value", "paper"],
    )
    table.add("baseline tpm", result["baseline_tpm"], "270,000 tpmC")
    table.add("concurrent tpm", result["concurrent_tpm"], "180,000 tpmC")
    table.add("throughput drop", f"{drop * 100:.1f}%", "33%")
    table.add("snapshot create avg s", result["create_avg_s"], "~20 s")
    table.add("as-of stock-level avg s", result["query_avg_s"], "~30 s")
    show(table)
    save_results("sec63_concurrent", result)

    # The shape: a clearly visible throughput cost, not a collapse.
    assert result["concurrent_tpm"] < result["baseline_tpm"]
    assert 0.05 < drop < 0.8
    # The loop stayed serviceable: create and query both complete fast
    # relative to the look-back distance.
    assert result["create_avg_s"] < BACK_MINUTES * 60
    assert result["query_avg_s"] < BACK_MINUTES * 60
