"""Ablation — what each section 4.2 log extension buys.

Not a paper figure, but the paper's design discussion quantified: each
extension is toggled off to show (a) what breaks or (b) what the
derivation fallback costs, plus the section 7.1 comparison of proactive
copy-on-write snapshots versus on-demand as-of logging.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import make_perf_env
from repro.config import DatabaseConfig
from repro.engine.engine import Engine
from repro.errors import MissingUndoInfoError, StorageError
from repro.sim.device import SLC_SSD
from repro.workload import TpccDriver, TpccScale, load_tpcc

SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=15,
    items=80,
)


def _fresh(config: DatabaseConfig):
    env = make_perf_env(SLC_SSD)
    engine = Engine(env)
    db = engine.create_database("abl", config)
    load_tpcc(db, SCALE, seed=3)
    driver = TpccDriver(db, SCALE, seed=3, think_time_s=0.05)
    return engine, db, driver


def _drop_and_reuse(engine, db, driver):
    """Drop a (sacrificial) table, then churn so its pages get
    re-allocated; returns the as-of instant when it still existed."""
    from repro.catalog.schema import Column, ColumnType, TableSchema

    scratch = TableSchema(
        "scratch",
        (
            Column("k", ColumnType.INT),
            Column("v", ColumnType.STR, max_len=120),
        ),
        key=("k",),
    )
    db.create_table(scratch)
    with db.transaction() as txn:
        for i in range(300):
            db.insert(txn, "scratch", (i, "payload " * 10))
    driver.run_for(30.0)
    good = db.env.clock.now()
    db.env.clock.advance(5)
    db.drop_table("scratch")
    driver.run_for(90.0)  # heavy churn re-allocates the freed pages
    return good


def run_ablation() -> dict:
    outcomes = {}

    # --- preformat on re-allocation -----------------------------------
    for label, enabled in (("preformat on", True), ("preformat off", False)):
        config = DatabaseConfig().with_extensions(preformat_on_realloc=enabled)
        engine, db, driver = _fresh(config)
        good = _drop_and_reuse(engine, db, driver)
        try:
            snap = engine.create_asof_snapshot("abl", "a", good)
            rows = sum(1 for _ in snap.scan("scratch"))
            engine.drop_snapshot("a")
            if rows == 300:
                outcomes[label] = {"result": f"recovered {rows} rows", "ok": True}
            else:
                outcomes[label] = {"result": f"only {rows}/300 rows", "ok": False}
        except (MissingUndoInfoError, StorageError) as exc:
            # Broken chain: either the walk noticed (MissingUndoInfoError)
            # or the rewound page came back unformatted and the tree
            # descent failed on it.
            outcomes[label] = {"result": f"failed: {type(exc).__name__}", "ok": False}
        outcomes[label]["preformat_bytes"] = db.env.stats.preformat_bytes

    # --- CLR undo info / SMO delete undo info --------------------------
    for label, kwargs in (
        ("clr+smo info on", {}),
        ("clr info off", {"clr_undo_info": False}),
        ("smo info off", {"smo_delete_undo_info": False}),
    ):
        config = DatabaseConfig().with_extensions(**kwargs)
        engine, db, driver = _fresh(config)
        driver.run_for(60.0)
        good = db.env.clock.now()
        db.env.clock.advance(1)
        driver.run_for(120.0)
        before = db.env.stats.snapshot()
        snap = engine.create_asof_snapshot("abl", "b", good)
        stock_rows = sum(1 for _ in snap.scan("stock"))
        order_rows = sum(1 for _ in snap.scan("order_line"))
        spent = db.env.stats.delta(before)
        engine.drop_snapshot("b")
        outcomes[label] = {
            "result": f"{stock_rows}+{order_rows} rows",
            "ok": True,
            "undo_log_reads": spent.undo_log_reads,
            # Total log-record fetches on the undo path (cache hits
            # included): the derivation fallback shows up here even when
            # the block cache absorbs the extra device reads.
            "undo_fetches": spent.undo_log_reads + spent.undo_log_cache_hits,
            "log_bytes": db.log.total_bytes(),
        }

    # --- proactive COW snapshot vs on-demand as-of ----------------------
    config = DatabaseConfig()
    engine, db, driver = _fresh(config)
    driver.run_for(30.0)
    cow = engine.create_snapshot("abl", "cow")
    driver.run_for(120.0)
    cow_bytes = cow.side_file_bytes()
    good = db.env.clock.now()
    db.env.clock.advance(1)
    driver.run_for(30.0)
    asof = engine.create_asof_snapshot("abl", "ondemand", good)
    from repro.workload.tpcc_txns import stock_level

    stock_level(asof, 1, 1, 60)
    asof_bytes = asof.side_file_bytes()
    outcomes["cow vs as-of side-file"] = {
        "cow_bytes": cow_bytes,
        "asof_bytes_after_query": asof_bytes,
        "ok": True,
        "result": f"COW pushed {cow_bytes // 1024} KiB without any query; "
        f"as-of materialized {asof_bytes // 1024} KiB for one query",
    }
    return outcomes


def test_ablation_extensions(benchmark, show):
    outcomes = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    table = ReportTable(
        "Ablation: the section 4.2 extensions",
        ["variant", "outcome"],
    )
    for label, data in outcomes.items():
        table.add(label, data["result"])
    show(table)
    save_results(
        "ablation_extensions",
        {k: {kk: vv for kk, vv in v.items() if kk != "ok"} for k, v in outcomes.items()},
    )

    # Preformat is what makes dropped-table recovery survive page reuse.
    assert outcomes["preformat on"]["ok"]
    assert not outcomes["preformat off"]["ok"]
    assert outcomes["preformat on"]["preformat_bytes"] > 0

    # Without embedded undo info the as-of query still works (derivation
    # from the compensated/paired record) but fetches more log records.
    assert outcomes["clr info off"]["ok"]
    assert outcomes["smo info off"]["ok"]
    base_fetches = outcomes["clr+smo info on"]["undo_fetches"]
    assert outcomes["smo info off"]["undo_fetches"] >= base_fetches
    # And embedding the info costs log bytes, which the leaner configs save.
    assert outcomes["smo info off"]["log_bytes"] <= outcomes["clr+smo info on"]["log_bytes"]

    # The proactive COW snapshot pays for pages nobody asked about; the
    # on-demand as-of side file stays proportional to the query.
    cow = outcomes["cow vs as-of side-file"]
    assert cow["asof_bytes_after_query"] < cow["cow_bytes"]
