"""Chaos bench: seeded TPC-C under injected faults, ending in failover.

Runs the TPC-C workload with the replication pump active while a seeded
:class:`~repro.chaos.injector.FaultInjector` perturbs every boundary —
transient send failures, corrupted stream frames, stalled device writes —
then halts the primary mid-flight and lets the auto-failover coordinator
promote a survivor. The run's contract, enforced even in smoke mode:

* the promoted database passes ``checkdb`` clean;
* **zero** committed writes are lost across the crash (committed ⇒
  durable ⇒ drained to the survivors before the primary dies);
* a failover actually happened, and read offload follows the survivor;
* the whole run — fault schedule, alert timeline, failover decision —
  is byte-identical across two same-seed executions.

Standalone script (CI runs it with ``--smoke``):
``python benchmarks/bench_chaos.py [--smoke]``. Raw numbers land in
``bench_results/chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import ReportTable, attach_metrics, save_results  # noqa: E402
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env  # noqa: E402
from repro.chaos import FaultRule  # noqa: E402
from repro.sim.device import SLC_SSD  # noqa: E402
from repro.tools.checkdb import check_database  # noqa: E402
from repro.workload import TpccScale  # noqa: E402

SMOKE_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=40,
)

#: Tables whose row counts prove no committed write was lost.
AUDIT_TABLES = ("orders", "order_line", "history", "new_order")


def _row_counts(db, tables=AUDIT_TABLES) -> dict[str, int]:
    return {t: sum(1 for _ in db.scan(t)) for t in tables}


def run_chaos_scenario(smoke: bool, seed: int) -> tuple[dict, str]:
    """One full chaos run; returns (payload, deterministic timeline)."""
    scale = SMOKE_SCALE if smoke else BENCH_SCALE
    rounds = 4 if smoke else 10
    txns_per_round = 15 if smoke else 50

    env = make_perf_env(SLC_SSD)
    engine, db, driver = build_tpcc(env, scale, seed=seed)
    engine.add_replica(db.name, "sa")
    sb = engine.add_replica(db.name, "sb")
    engine.enable_read_offload()
    engine.enable_auto_failover(confirm_s=2.0)
    chaos = engine.enable_chaos(
        seed=seed,
        rules=[
            FaultRule(
                point="repl.ship.send", kind="transient",
                target="s?", probability=0.05,
            ),
            FaultRule(
                point="repl.stream.frame", kind="corrupt",
                target="sa", probability=0.02,
            ),
            FaultRule(
                point="device.write", kind="stall",
                probability=0.01, latency_s=0.002,
            ),
        ],
    )
    driver.pump = engine.replication_tick

    committed = 0
    sim_seconds = 0.0
    for _ in range(rounds):
        run = driver.run_transactions(txns_per_round)
        committed += run.committed
        sim_seconds += run.sim_seconds

    # Quiesce: every committed transaction already flushed its log, so
    # this is the durable ground truth the crash must not lose.
    engine.replication_tick()
    pre_crash = _row_counts(db)
    send_errors = engine.shipper_for(db.name).stats.send_errors
    retries = engine.shipper_for(db.name).stats.retries

    chaos.schedule_crash(db.name, env.clock.now() + 0.25)
    for _ in range(24):  # detection -> confirmation -> failover -> catch-up
        env.clock.advance(0.5)
        engine.replication_tick()

    promoted_name = engine.ha.completed.get(db.name, "")
    promoted = engine.database(promoted_name) if promoted_name else None
    post_crash = _row_counts(promoted) if promoted else {}
    rows_lost = sum(
        pre_crash[t] - post_crash.get(t, 0) for t in AUDIT_TABLES
    )
    report = check_database(promoted) if promoted else None
    survivor = sb if promoted_name == "sa" else engine.replicas.get("sa")
    routed = engine.routing_replica(promoted_name) if promoted_name else None

    timeline = json.dumps(
        {
            "faults": engine.fault_events(),
            "ha": engine.ha_events,
            "alerts": engine.alert_events(),
            "promoted": promoted_name,
        },
        sort_keys=True,
    )
    payload = {
        "smoke": smoke,
        "seed": seed,
        "committed_txns": committed,
        "tpm": committed * 60.0 / sim_seconds if sim_seconds else 0.0,
        "send_errors": send_errors,
        "retries_healed": retries,
        "fault_events": len(engine.fault_events()),
        "promoted": promoted_name,
        "checkdb_ok": bool(report and report.ok),
        "rows_pre_crash": pre_crash,
        "rows_post_failover": post_crash,
        "rows_lost": rows_lost,
        "survivor_repointed": bool(
            survivor is not None and survivor.primary is promoted
        ),
        "offload_routed": routed.name if routed is not None else None,
        "ha_events": engine.ha_events,
        "health": engine.health()["overall"],
    }
    return attach_metrics(payload, env), timeline


def run_chaos_bench(smoke: bool = False, seed: int = 11) -> dict:
    payload, timeline = run_chaos_scenario(smoke, seed)
    # The CI diff contract, in-process: an identical seed replays the
    # identical fault schedule, alert timeline, and failover decision.
    _, timeline2 = run_chaos_scenario(smoke, seed)
    payload["deterministic"] = timeline == timeline2
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale / short run (the CI tier-2 configuration)",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)
    result = run_chaos_bench(smoke=args.smoke, seed=args.seed)

    table = ReportTable(
        "Chaos: TPC-C under faults, primary crash, auto-failover",
        ["metric", "value"],
    )
    table.add("committed txns", result["committed_txns"])
    table.add("workload tpm", result["tpm"])
    table.add("injected fault events", result["fault_events"])
    table.add("send errors / healed", f"{result['send_errors']}/{result['retries_healed']}")
    table.add("promoted survivor", result["promoted"])
    table.add("rows lost across crash", result["rows_lost"])
    table.add("checkdb on survivor", "OK" if result["checkdb_ok"] else "FAILED")
    table.add("offload routed to", result["offload_routed"])
    table.add("deterministic replay", result["deterministic"])
    table.show()
    path = save_results("chaos", result)
    print(f"\nresults saved to {path}")

    assert result["promoted"], "no failover happened"
    assert result["checkdb_ok"], "promoted survivor failed checkdb"
    assert result["rows_lost"] == 0, "committed writes lost across the crash"
    assert result["survivor_repointed"], "surviving standby not re-pointed"
    assert result["deterministic"], "same seed diverged between runs"
    return 0


if __name__ == "__main__":
    sys.exit(main())
