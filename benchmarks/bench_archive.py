"""Archive bench: incremental-backup size and restore-time vs chain length.

Under a running TPC-C workload with continuous log archiving active
(archive media priced as the cold SAS tier), measures:

* **incremental vs full size** — pages copied by each chained incremental
  against the full baseline (the churn/size asymmetry incrementals buy);
* **restore time vs chain length** — materializing one archived time per
  backup era, so successive restores lay down longer chains with shorter
  log replays; the planner's choice (chain members vs replay bytes) is
  recorded per point;
* **past-horizon restore** — after retention truncates the primary's log,
  the same restore still works from the archive alone (the pooled as-of
  path provably cannot reach the time anymore).

Standalone script (CI runs it with ``--smoke``)::

    python benchmarks/bench_archive.py [--smoke]

Raw numbers land in ``bench_results/archive.json``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.archive.restore import plan_restore  # noqa: E402
from repro.bench import ReportTable, attach_metrics, save_results  # noqa: E402
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env  # noqa: E402
from repro.errors import RetentionExceededError  # noqa: E402
from repro.sim.device import SAS_10K, SLC_SSD  # noqa: E402
from repro.workload import TpccScale, stock_level  # noqa: E402

SMOKE_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=40,
)


def run_archive_bench(smoke: bool = False) -> dict:
    scale = SMOKE_SCALE if smoke else BENCH_SCALE
    rounds = 2 if smoke else 4
    txns_per_round = 60 if smoke else 300
    # Cold pages the workload never touches: a full backup pays for them,
    # incrementals do not (the paper's 40 GB database, scaled down).
    filler_pages = 400 if smoke else 4000

    env = make_perf_env(SLC_SSD)
    engine, db, driver = build_tpcc(env, scale, filler_pages=filler_pages)
    driver.pump = engine.replication_tick

    # The archive rides the cold tier; the primary stays on SSD.
    archiver = engine.enable_archiving(db.name, profile=SAS_10K)
    full = engine.backup_database(db.name)

    marks: list[float] = []
    incremental_sizes: list[int] = []
    for round_index in range(rounds):
        driver.run_transactions(txns_per_round)
        env.clock.advance(1.0)
        marks.append(env.clock.now())
        env.clock.advance(1.0)
        if round_index < rounds - 1:
            incremental = engine.backup_database(db.name)
            incremental_sizes.append(incremental.size_bytes)
    driver.run_transactions(txns_per_round // 4)
    db.log.flush()
    archiver.poll()

    # -- restore time vs chain length ----------------------------------
    points = []
    results_match = True
    for mark in marks:
        plan = plan_restore(archiver.store, db.name, mark)
        t0 = env.clock.now()
        restored = engine.restore_from_archive(db.name, mark)
        restore_s = env.clock.now() - t0
        restored_result = stock_level(restored, w_id=1, d_id=1, threshold=60)
        with engine.snapshot_pool.lease(db, mark) as snap:
            live_result = stock_level(snap, w_id=1, d_id=1, threshold=60)
        results_match = results_match and restored_result == live_result
        points.append(
            {
                "chain_len": len(plan.chain),
                "backup_bytes": plan.backup_bytes,
                "replay_bytes": plan.replay_bytes,
                "restore_s": restore_s,
                "estimated_s": plan.estimated_s,
            }
        )
        engine.drop_database(restored.name)

    # -- the unbounded-PITR claim: restore past the retention horizon --
    # Drop the pooled splits first: a pooled reuse legitimately survives a
    # closed window (its pin kept the log), which would mask the horizon.
    engine.snapshot_pool.clear()
    db.set_undo_interval(1.0)
    env.clock.advance(30.0)
    db.checkpoint()
    env.clock.advance(30.0)
    db.checkpoint()
    db.enforce_retention()
    try:
        engine.snapshot_pool.acquire(db, marks[0])
        pool_raises_past_horizon = False
    except RetentionExceededError:
        pool_raises_past_horizon = True
    t1 = env.clock.now()
    past = engine.restore_from_archive(db.name, marks[0])
    past_horizon_restore_s = env.clock.now() - t1
    past_result = stock_level(past, w_id=1, d_id=1, threshold=60)
    engine.drop_database(past.name)

    mean_incremental = (
        sum(incremental_sizes) / len(incremental_sizes)
        if incremental_sizes
        else 0
    )
    payload = {
        "smoke": smoke,
        "full_backup_bytes": full.size_bytes,
        "incremental_backup_bytes": incremental_sizes,
        "incremental_to_full_ratio": (
            mean_incremental / full.size_bytes if full.size_bytes else 0.0
        ),
        "archived_segments": archiver.stats.segments_archived,
        "archived_bytes": archiver.stats.bytes_archived,
        "restore_points": points,
        "results_match": results_match,
        "pool_raises_past_horizon": pool_raises_past_horizon,
        "past_horizon_restore_s": past_horizon_restore_s,
        "past_horizon_stock_level": past_result,
    }
    return attach_metrics(payload, env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale / short run (the CI tier-2 configuration)",
    )
    args = parser.parse_args(argv)
    result = run_archive_bench(smoke=args.smoke)

    table = ReportTable(
        "Archive tier: incremental backups and chain restores",
        ["metric", "value"],
    )
    table.add("full backup (bytes)", result["full_backup_bytes"])
    table.add("mean incremental / full", f"{result['incremental_to_full_ratio']:.3f}")
    table.add("archived log (bytes)", result["archived_bytes"])
    for point in result["restore_points"]:
        table.add(
            f"restore, chain={point['chain_len']}",
            f"{point['restore_s']:.3f}s (replay {point['replay_bytes']}B)",
        )
    table.add("past-horizon restore (s)", f"{result['past_horizon_restore_s']:.3f}")
    table.show()
    path = save_results("archive", result)
    print(f"\nresults saved to {path}")

    # The subsystem's contract, enforced even in smoke mode.
    assert result["incremental_to_full_ratio"] < 1.0, (
        "incremental backups did not shrink below the full baseline"
    )
    assert result["results_match"], "archive restore diverged from live AS OF"
    assert result["pool_raises_past_horizon"], (
        "retention did not close — the past-horizon claim was not exercised"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
