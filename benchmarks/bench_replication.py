"""Replication bench: catch-up lag and offloaded point-in-time throughput.

Measures, under a running TPC-C workload with the replication pump active:

* **steady-state lag** — bytes of durable primary log not yet applied on
  the standby, sampled across the run (bounded lag is the subsystem's
  core promise);
* **bulk catch-up** — a replica attached after the fact replays the
  whole backlog; reported as MB/s of log applied (the parallel redo
  apply path's headline number);
* **offloaded as-of reads** — warm pooled ``stock_level_as_of`` served
  from the standby's snapshot pool vs the primary's, plus result
  equality between the two.

Unlike the figure benches this is a standalone script (CI runs it with
``--smoke``): ``python benchmarks/bench_replication.py [--smoke]``.
Raw numbers land in ``bench_results/replication.json``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import ReportTable, attach_metrics, save_results  # noqa: E402
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env  # noqa: E402
from repro.sim.device import SLC_SSD  # noqa: E402
from repro.workload import TpccScale, stock_level  # noqa: E402

SMOKE_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=40,
)


def run_replication_bench(smoke: bool = False) -> dict:
    scale = SMOKE_SCALE if smoke else BENCH_SCALE
    warmup_txns = 60 if smoke else 300
    sample_rounds = 6 if smoke else 12
    txns_per_round = 20 if smoke else 60
    asof_queries = 5 if smoke else 20

    env = make_perf_env(SLC_SSD)
    engine, db, driver = build_tpcc(env, scale)
    driver.run_transactions(warmup_txns // 2)

    # -- steady-state lag under the workload ---------------------------
    replica = engine.add_replica(db.name, "standby")
    driver.pump = engine.replication_tick
    # The monitor rides the same pump: its recorder watches the lag
    # gauges across the run and its alert timeline lands in the payload
    # (a healthy run ships with zero firing alerts).
    engine.start_monitor()
    lag_samples: list[int] = []
    for _ in range(sample_rounds):
        driver.run_transactions(txns_per_round)
        lag_samples.append(replica.lag_bytes())
    run = driver.run_transactions(warmup_txns // 2)
    engine.replication_tick()
    db.log.flush()
    engine.replication_tick()
    final_lag = replica.lag_bytes()

    # -- offloaded warm point-in-time reads ----------------------------
    target = env.clock.now() - 30.0
    # Cold acquisitions on both sides first, then warm timings.
    offloaded_result = driver.stock_level_as_of(engine, target)
    with engine.snapshot_pool.lease(db, target) as snap:
        primary_result = stock_level(snap, w_id=1, d_id=1, threshold=60)
    results_match = offloaded_result == primary_result

    t0 = env.clock.now()
    for _ in range(asof_queries):
        driver.stock_level_as_of(engine, target)
    replica_warm_s = (env.clock.now() - t0) / asof_queries

    t1 = env.clock.now()
    for _ in range(asof_queries):
        with engine.snapshot_pool.lease(db, target) as snap:
            stock_level(snap, w_id=1, d_id=1, threshold=60)
    primary_warm_s = (env.clock.now() - t1) / asof_queries

    # -- bulk catch-up: a late replica replays the whole history -------
    t2 = env.clock.now()
    late = engine.add_replica(db.name, "late_standby")
    catchup_s = env.clock.now() - t2
    backlog_bytes = late.stats.bytes_received

    payload = {
        "smoke": smoke,
        "tpm": run.tpm,
        "max_lag_bytes": max(lag_samples),
        "mean_lag_bytes": sum(lag_samples) / len(lag_samples),
        "final_lag_bytes": final_lag,
        # High-water mark of received-but-unapplied bytes: the real
        # mid-pump backlog, even when samples land after a tick.
        "peak_apply_backlog_bytes": replica.stats.peak_apply_backlog_bytes,
        "records_applied": replica.stats.records_applied,
        "bytes_shipped": engine.shipper_for(db.name).stats.bytes_shipped,
        "offloaded_stock_level": offloaded_result,
        "primary_stock_level": primary_result,
        "results_match": results_match,
        "replica_warm_asof_s": replica_warm_s,
        "primary_warm_asof_s": primary_warm_s,
        "offloaded_asof_per_min": (
            60.0 / replica_warm_s if replica_warm_s > 0 else 0.0
        ),
        "catchup_backlog_bytes": backlog_bytes,
        "catchup_s": catchup_s,
        "catchup_mb_per_s": (
            backlog_bytes / catchup_s / 1e6 if catchup_s > 0 else 0.0
        ),
        "monitor_samples": engine.monitor.recorder.samples_taken,
        "alert_events": engine.alert_events(),
        "health": engine.health()["overall"],
        "lag_history": engine.monitor_history("replica.standby.apply_lag_bytes"),
    }
    return attach_metrics(payload, env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale / short run (the CI tier-2 configuration)",
    )
    args = parser.parse_args(argv)
    result = run_replication_bench(smoke=args.smoke)

    table = ReportTable(
        "Log-shipping replication: lag and offloaded AS OF reads",
        ["metric", "value"],
    )
    table.add("workload tpm", result["tpm"])
    table.add("max lag under load (bytes)", result["max_lag_bytes"])
    table.add("peak apply backlog (bytes)", result["peak_apply_backlog_bytes"])
    table.add("final lag (bytes)", result["final_lag_bytes"])
    table.add("warm AS OF on standby (s)", result["replica_warm_asof_s"])
    table.add("warm AS OF on primary (s)", result["primary_warm_asof_s"])
    table.add("bulk catch-up (MB/s)", result["catchup_mb_per_s"])
    table.add("monitor samples", result["monitor_samples"])
    table.add("health", result["health"])
    table.show()
    path = save_results("replication", result)
    print(f"\nresults saved to {path}")

    # The subsystem's contract, enforced even in smoke mode.
    assert result["results_match"], "standby AS OF result diverged from primary"
    assert result["final_lag_bytes"] == 0, "replica failed to catch up"
    assert result["max_lag_bytes"] < 1 << 20, "lag unbounded under load"
    return 0


if __name__ == "__main__":
    sys.exit(main())
