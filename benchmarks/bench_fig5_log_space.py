"""Figure 5 — space overhead of the additional logging.

Paper series: transaction log space for the baseline and for the as-of
extensions at several full-page-image frequencies N. Expected shape: the
extensions cost some extra log; smaller N (more frequent images) costs
substantially more; the baseline is the smallest.

Paper reference points (100 GB-class log at 800 warehouses): additional
logging "does increase the transaction log space usage", dominated by the
page images.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import logging_sweep_results


def run_fig5() -> list:
    return logging_sweep_results()


def test_fig5_log_space(benchmark, show):
    points = benchmark.pedantic(run_fig5, rounds=1, iterations=1)

    table = ReportTable(
        "Figure 5: log space vs full-page-image interval N",
        ["configuration", "log MB", "vs baseline", "image MB", "records"],
    )
    baseline = points[0].log_bytes
    for point in points:
        table.add(
            point.label,
            point.log_bytes / 1e6,
            f"{point.log_bytes / baseline:.2f}x",
            point.image_bytes / 1e6,
            point.log_records,
        )
    show(table)
    save_results(
        "fig5_log_space",
        {
            point.label: {
                "log_bytes": point.log_bytes,
                "image_bytes": point.image_bytes,
                "log_records": point.log_records,
            }
            for point in points
        },
    )

    by_label = {point.label: point for point in points}
    base = by_label["baseline (no as-of logging)"]
    no_images = by_label["extensions, no images"]
    # Extensions cost extra log even without images (CLR/SMO payloads).
    assert no_images.log_bytes >= base.log_bytes
    # Log space grows monotonically as N shrinks.
    ordered = [point for point in points if point.label.startswith("extensions, N=")]
    sizes = [point.log_bytes for point in ordered]
    assert sizes == sorted(sizes), "smaller N must cost more log space"
    # N=1 is dramatically bigger than the baseline (full image per change).
    assert by_label["extensions, N=1"].log_bytes > 3 * base.log_bytes
