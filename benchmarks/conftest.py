"""Benchmark fixtures and output plumbing.

Each bench prints its paper-style series table (visible in the tee'd
output via ``capsys.disabled``) and saves raw numbers as JSON under
``bench_results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a ReportTable through pytest's capture."""

    def _show(table):
        with capsys.disabled():
            table.show()

    return _show
