"""Figure 6 — throughput impact of the additional logging.

Paper series: TPC-C throughput (tpm) across the same configurations as
Figure 5. Expected shape: "the additional logging has little impact to
the transaction throughput" — throughput stays within a narrow band of
the baseline even while Figure 5's space grows, because throughput tracks
the number of log records (log-manager synchronization), not their size.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import logging_sweep_results


def run_fig6() -> list:
    return logging_sweep_results()


def test_fig6_throughput(benchmark, show):
    points = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    baseline = points[0].tpm
    table = ReportTable(
        "Figure 6: throughput vs full-page-image interval N",
        ["configuration", "sim tpm", "vs baseline", "log util", "engine tps (real)"],
    )
    for point in points:
        table.add(
            point.label,
            point.tpm,
            f"{point.tpm / baseline * 100:.1f}%",
            f"{point.log_utilization * 100:.1f}%",
            point.real_tps,
        )
    show(table)
    save_results(
        "fig6_throughput",
        {
            point.label: {
                "tpm": point.tpm,
                "real_tps": point.real_tps,
                "log_utilization": point.log_utilization,
            }
            for point in points
        },
    )

    by_label = {point.label: point for point in points}
    # Little impact: all extension configs except the pathological N=1
    # stay within 15% of baseline throughput.
    for point in points:
        if point.label == "extensions, N=1":
            continue
        assert point.tpm > 0.85 * baseline, point.label
    # And even N=1 — a full page image on every modification — keeps the
    # system running (paper never tested below its plotted N range).
    assert by_label["extensions, N=1"].tpm > 0.5 * baseline
    # The paper's sustainability claim ("about 100MB/sec at the peak ...
    # easily sustainable"): the sequential log bandwidth stays within the
    # device's capability for the practical settings (N >= 4); images on
    # every or every-other modification saturate it, which is why no real
    # deployment would choose them.
    for point in points:
        if point.label in (
            "baseline (no as-of logging)",
            "extensions, no images",
            "extensions, N=16",
            "extensions, N=8",
            "extensions, N=4",
        ):
            assert point.log_utilization < 1.0, point.label
