"""Figure 7 — restore vs as-of query, end-to-end, SSD media.

Paper series (log scale): end-to-end time to reach stock-level data at
increasing distances back in time — as-of snapshot (creation + query)
versus full restore + roll-forward. On the paper's SSDs, as-of took 5-18
seconds while restore took 12-26 minutes; the expected *shape* is: as-of
grows roughly linearly with distance and stays well below restore, which
is flat regardless of distance.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import time_travel_results


def run_fig7():
    return time_travel_results("ssd")


def test_fig7_restore_vs_asof_ssd(benchmark, show):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)

    table = ReportTable(
        f"Figure 7: restore vs as-of on SSD "
        f"(db {result.db_bytes / 1e6:.0f} MB, log {result.log_bytes / 1e6:.0f} MB)",
        ["minutes back", "as-of total s", "restore s", "restore / as-of"],
    )
    for point in result.points:
        table.add(
            point.minutes_back,
            point.asof_total_s,
            point.restore_s,
            f"{point.restore_s / point.asof_total_s:.1f}x",
        )
    show(table)
    save_results(
        "fig7_ssd",
        {
            str(point.minutes_back): {
                "asof_total_s": point.asof_total_s,
                "restore_s": point.restore_s,
            }
            for point in result.points
        },
    )

    points = result.points
    assert len(points) >= 3
    # As-of beats restore at every distance (the paper's headline).
    for point in points:
        assert point.asof_total_s < point.restore_s, point
    # As-of query time grows with distance...
    assert points[-1].asof_query_s > points[0].asof_query_s
    # ...while restore stays roughly flat (within 2x across the sweep).
    restores = [point.restore_s for point in points]
    assert max(restores) < 2.0 * min(restores)
