"""Section 6.4 — the crossover between as-of rewind and full restore.

The paper: "there is a cross over point where restoring the full database
... will start performing better, especially for cases where a large
amount of data needs to be accessed". We sweep the fraction of the
database an as-of session touches — from the stock-level point query up to
scanning every table including the cold filler — and find where the as-of
total crosses the (flat) restore cost.
"""

from __future__ import annotations

from repro.backup import restore_point_in_time, take_full_backup
from repro.bench import ReportTable, save_results
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env
from repro.sim.device import SLC_SSD
from repro.workload.tpcc_txns import stock_level


def _touch_scope(reader, scope: str) -> int:
    """Run one of the progressively wider as-of access patterns."""
    touched = 0
    if scope == "stock_level (1 district)":
        return stock_level(reader, w_id=1, d_id=1, threshold=60)
    if scope == "stock table scan":
        return sum(1 for _ in reader.scan("stock"))
    if scope == "all hot tables":
        for name in ("district", "stock", "orders", "order_line", "customer"):
            touched += sum(1 for _ in reader.scan(name))
        return touched
    if scope == "everything incl. cold data":
        for name in (
            "district",
            "stock",
            "orders",
            "order_line",
            "customer",
            "history",
            "filler",
        ):
            touched += sum(1 for _ in reader.scan(name))
        return touched
    raise ValueError(scope)


SCOPES = (
    "stock_level (1 district)",
    "stock table scan",
    "all hot tables",
    "everything incl. cold data",
)


def run_sec64() -> dict:
    env = make_perf_env(SLC_SSD)
    engine, db, driver = build_tpcc(env, BENCH_SCALE, filler_pages=2500, name="tpcc64")
    backup = take_full_backup(db)
    driver.run_for(4.0 * 60.0)
    target = env.clock.now() - 3.0 * 60.0

    rows = []
    for scope in SCOPES:
        t0 = env.clock.now()
        snap = engine.create_asof_snapshot(db.name, "xsnap", target)
        _touch_scope(snap, scope)
        asof_s = env.clock.now() - t0
        engine.drop_snapshot("xsnap")

        t1 = env.clock.now()
        restored = restore_point_in_time(engine, backup, db, target, "xrest")
        _touch_scope(restored, scope)
        restore_s = env.clock.now() - t1
        engine.drop_database("xrest")
        rows.append({"scope": scope, "asof_s": asof_s, "restore_s": restore_s})
    return {"rows": rows}


def test_sec64_crossover(benchmark, show):
    result = benchmark.pedantic(run_sec64, rounds=1, iterations=1)

    table = ReportTable(
        "Section 6.4: as-of vs restore as the accessed fraction grows",
        ["access pattern", "as-of s", "restore s", "winner"],
    )
    for row in result["rows"]:
        winner = "as-of" if row["asof_s"] < row["restore_s"] else "restore"
        table.add(row["scope"], row["asof_s"], row["restore_s"], winner)
    show(table)
    save_results("sec64_crossover", result)

    rows = result["rows"]
    # Narrow access: as-of wins decisively.
    assert rows[0]["asof_s"] < rows[0]["restore_s"]
    assert rows[1]["asof_s"] < rows[1]["restore_s"]
    # The crossover exists: touching everything makes restore better
    # (copying sequentially beats preparing page by page).
    assert rows[-1]["asof_s"] > rows[-1]["restore_s"]
    # And the widest as-of access costs far more than the narrow ones
    # (cost tracks data touched; exact ordering between narrow scopes
    # depends on how hot their pages are, not on their breadth).
    assert rows[-1]["asof_s"] > 3 * rows[0]["asof_s"]
