"""Figure 11 — estimated number of undo log I/Os.

Paper series: the number of log reads performed while bringing pages back
in time, versus distance. The paper estimates these from response times;
our simulator counts them exactly (`undo_log_reads` span reads plus
`undo_header_reads` discovery reads: physical log-device I/Os on the
undo path, excluding block-cache hits; the cross-snapshot version store
is disabled here so the figure shows the paper's per-snapshot cost).
Expected shape: linear growth with distance — each extra minute adds a
proportional slice of modifications to the touched pages' chains.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import time_travel_results


def run_fig11():
    return {
        "ssd": time_travel_results("ssd"),
        "sas": time_travel_results("sas"),
    }


def test_fig11_undo_ios(benchmark, show):
    results = benchmark.pedantic(run_fig11, rounds=1, iterations=1)

    table = ReportTable(
        "Figure 11: undo log I/Os per as-of query",
        ["minutes back", "undo IOs (ssd)", "undo IOs (sas)", "records undone (ssd)"],
    )
    ssd_points = {p.minutes_back: p for p in results["ssd"].points}
    sas_points = {p.minutes_back: p for p in results["sas"].points}
    for distance in sorted(set(ssd_points) & set(sas_points)):
        table.add(
            distance,
            ssd_points[distance].undo_ios,
            sas_points[distance].undo_ios,
            ssd_points[distance].undo_records,
        )
    show(table)
    save_results(
        "fig11_undo_ios",
        {
            profile: {
                "points": {
                    str(p.minutes_back): {
                        "undo_ios": p.undo_ios,
                        "undo_records": p.undo_records,
                    }
                    for p in result.points
                },
                "metrics": result.metrics,
            }
            for profile, result in results.items()
        },
    )

    for result in results.values():
        points = result.points
        # Undo I/Os grow with distance and the growth is pronounced.
        assert points[-1].undo_ios > points[0].undo_ios
        assert points[-1].undo_ios > 2 * max(1, points[0].undo_ios)
        # Records undone grow monotonically (the underlying linear driver).
        undone = [p.undo_records for p in points]
        assert undone == sorted(undone)
