"""Figure 10 — snapshot creation time vs as-of query time, SAS media.

Same series as Figure 9 on rotating media: creation stays bounded by the
checkpoint-interval log scan; query time grows linearly and much faster
than on SSD because every cache-missing log read pays a seek.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import time_travel_results


def run_fig10():
    return time_travel_results("sas")


def test_fig10_create_vs_query_sas(benchmark, show):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)

    table = ReportTable(
        "Figure 10: snapshot creation vs as-of query on SAS",
        ["minutes back", "creation s", "query s", "pages prepared"],
    )
    for point in result.points:
        table.add(
            point.minutes_back,
            point.asof_create_s,
            point.asof_query_s,
            point.pages_prepared,
        )
    show(table)
    save_results(
        "fig10_sas",
        {
            str(point.minutes_back): {
                "create_s": point.asof_create_s,
                "query_s": point.asof_query_s,
            }
            for point in result.points
        },
    )

    points = result.points
    assert points[-1].asof_query_s > points[0].asof_query_s
    assert points[-1].asof_query_s > points[-1].asof_create_s
    # Query cost at the far end clearly dominates the near end (the
    # linear-growth claim, readable even with coarse distances).
    assert points[-1].asof_query_s > 2 * points[0].asof_query_s
