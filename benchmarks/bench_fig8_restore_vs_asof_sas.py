"""Figure 8 — restore vs as-of query, end-to-end, SAS (10K spindle) media.

Same series as Figure 7 on rotating media. Paper numbers: as-of 34-300
seconds (log-read stalls dominate on spindles), restore about 44 minutes.
Expected shape: as-of still wins everywhere, the as-of curve is much
steeper than on SSD (random log I/O is the bottleneck — the paper's
argument for keeping the log on low-latency media), and restore is flat.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import time_travel_results


def run_fig8():
    return time_travel_results("sas")


def test_fig8_restore_vs_asof_sas(benchmark, show):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    table = ReportTable(
        f"Figure 8: restore vs as-of on SAS "
        f"(db {result.db_bytes / 1e6:.0f} MB, log {result.log_bytes / 1e6:.0f} MB)",
        ["minutes back", "as-of total s", "restore s", "restore / as-of"],
    )
    for point in result.points:
        table.add(
            point.minutes_back,
            point.asof_total_s,
            point.restore_s,
            f"{point.restore_s / point.asof_total_s:.1f}x",
        )
    show(table)
    save_results(
        "fig8_sas",
        {
            str(point.minutes_back): {
                "asof_total_s": point.asof_total_s,
                "restore_s": point.restore_s,
            }
            for point in result.points
        },
    )

    points = result.points
    assert len(points) >= 3
    for point in points:
        assert point.asof_total_s < point.restore_s, point
    assert points[-1].asof_query_s > points[0].asof_query_s
    restores = [point.restore_s for point in points]
    assert max(restores) < 2.0 * min(restores)


def test_fig8_sas_slower_than_ssd(benchmark, show):
    """The cross-figure claim: as-of queries stall on rotating-media log
    reads, so SAS query times sit far above SSD at every distance."""
    sas = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    ssd = time_travel_results("ssd")
    table = ReportTable(
        "Figures 7/8 cross-check: as-of query seconds by media",
        ["minutes back", "ssd query s", "sas query s", "sas / ssd"],
    )
    pairs = 0
    for ssd_pt, sas_pt in zip(ssd.points, sas.points, strict=False):
        if ssd_pt.minutes_back != sas_pt.minutes_back:
            continue
        ratio = (
            sas_pt.asof_query_s / ssd_pt.asof_query_s
            if ssd_pt.asof_query_s
            else float("inf")
        )
        table.add(ssd_pt.minutes_back, ssd_pt.asof_query_s, sas_pt.asof_query_s, f"{ratio:.1f}x")
        if sas_pt.minutes_back >= 2:
            assert sas_pt.asof_query_s > 3 * ssd_pt.asof_query_s
            pairs += 1
    show(table)
    assert pairs >= 2
