"""Inline point-in-time query cost: cold pool miss vs named-snapshot DDL
vs warm pooled reuse.

The pooled inline path changes the economics of the paper's as-of query:

* **cold inline** — first ``AS OF`` read at a point: pool miss, pays
  snapshot creation (checkpoint + bounded analysis) plus the query's lazy
  page preparation, exactly like the DDL path.
* **named DDL** — ``CREATE DATABASE ... AS SNAPSHOT OF ... AS OF`` plus
  the query plus ``DROP``: the seed's only way to time-travel.
* **warm pooled** — a second inline read at the same point reuses the
  pooled snapshot: no checkpoint, no analysis scan, no new side file, and
  every page the first query prepared is already in the sparse file — so
  its cost collapses to roughly the query's CPU plus sparse reads.

All timings are simulated seconds from the shared device/cost models.
"""

from __future__ import annotations

from repro.bench import ReportTable, attach_metrics, save_results
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env
from repro.sim.device import SLC_SSD
from repro.workload.tpcc_txns import stock_level


def run_inline_asof():
    env = make_perf_env(SLC_SSD)
    # Store disabled, like the figure benches: this bench compares pool
    # ceremony (cold miss vs named DDL vs warm reuse). With the store on,
    # the cold read would publish page versions that the later named-DDL
    # query consumes, skewing the "same work, no ceremony" comparison.
    engine, db, driver = build_tpcc(env, BENCH_SCALE, version_store_budget=0)
    driver.run_for(3 * 60.0)

    now = env.clock.now()
    target = now - 60.0

    # Cold inline query: pool miss — creation plus lazy page preparation,
    # against the realistically dirty buffer pool the workload left.
    t0 = env.clock.now()
    cold = driver.stock_level_as_of(engine, target)
    cold_s = env.clock.now() - t0

    # Warm pooled reuse at the same point in time.
    bytes_before_warm = engine.snapshot_pool.total_bytes()
    t1 = env.clock.now()
    warm = driver.stock_level_as_of(engine, target)
    warm_s = env.clock.now() - t1
    warm_new_bytes = engine.snapshot_pool.total_bytes() - bytes_before_warm

    # The seed's ceremony: named snapshot DDL, query, drop. Keep the
    # primary busy first so creation (which checkpoints) finds a
    # realistically dirty buffer pool, as it would in production.
    driver.run_for(15.0)
    t2 = env.clock.now()
    snap = engine.create_asof_snapshot(db.name, "named", target)
    create_s = env.clock.now() - t2
    t3 = env.clock.now()
    named = stock_level(snap, w_id=1, d_id=1, threshold=60)
    named_query_s = env.clock.now() - t3
    engine.drop_snapshot("named")

    assert cold == warm == named
    payload = {
        "cold_inline_s": cold_s,
        "warm_pooled_s": warm_s,
        "named_create_s": create_s,
        "named_query_s": named_query_s,
        "named_total_s": create_s + named_query_s,
        "warm_new_side_file_bytes": warm_new_bytes,
        "pool_hits": engine.snapshot_pool.stats.hits,
        "pool_misses": engine.snapshot_pool.stats.misses,
        "pool_bytes": engine.snapshot_pool.total_bytes(),
    }
    return attach_metrics(payload, env)


def test_inline_asof_cold_vs_warm(benchmark, show):
    result = benchmark.pedantic(run_inline_asof, rounds=1, iterations=1)

    table = ReportTable(
        "Inline AS OF: cold pool miss vs named DDL vs warm pooled reuse",
        ["path", "sim seconds"],
    )
    table.add("cold inline (miss)", result["cold_inline_s"])
    table.add("named DDL create", result["named_create_s"])
    table.add("named DDL query", result["named_query_s"])
    table.add("named DDL total", result["named_total_s"])
    table.add("warm pooled (hit)", result["warm_pooled_s"])
    show(table)
    save_results("inline_asof", result)

    # The warm read hit the pool and created no new side file.
    assert result["pool_misses"] == 1
    assert result["pool_hits"] == 1
    assert result["warm_new_side_file_bytes"] == 0
    # Warm pooled reuse is measurably cheaper than snapshot creation —
    # the whole point of pooling: creation (checkpoint + analysis) is
    # skipped entirely, and so is the lazy page preparation.
    assert result["warm_pooled_s"] < 0.5 * result["named_create_s"]
    assert result["warm_pooled_s"] < result["cold_inline_s"]
    # Cold inline ~ named create + query: same machinery, no ceremony.
    # The margin absorbs a protocol asymmetry: the cold read checkpoints
    # a pool dirtied by the whole workload run, while the named create
    # checkpoints only the 15 s of churn since that checkpoint.
    assert result["cold_inline_s"] < 2.5 * result["named_total_s"] + 1e-6
