"""Figure 9 — snapshot creation time vs as-of query time, SSD media.

Paper shape: creation time is "more or less constant" (bounded by the log
scanned between the checkpoint preceding the SplitLSN and the SplitLSN —
i.e. by the 30-second checkpoint interval) while query time grows
linearly with the amount of modification to the touched pages.
"""

from __future__ import annotations

from repro.bench import ReportTable, save_results
from repro.bench.harness import time_travel_results


def run_fig9():
    return time_travel_results("ssd")


def test_fig9_create_vs_query_ssd(benchmark, show):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)

    table = ReportTable(
        "Figure 9: snapshot creation vs as-of query on SSD",
        ["minutes back", "creation s", "query s", "pages prepared"],
    )
    for point in result.points:
        table.add(
            point.minutes_back,
            point.asof_create_s,
            point.asof_query_s,
            point.pages_prepared,
        )
    show(table)
    save_results(
        "fig9_ssd",
        {
            str(point.minutes_back): {
                "create_s": point.asof_create_s,
                "query_s": point.asof_query_s,
            }
            for point in result.points
        },
    )

    points = result.points
    # Query grows with distance; by the far end it dominates creation.
    assert points[-1].asof_query_s > points[0].asof_query_s
    assert points[-1].asof_query_s > points[-1].asof_create_s
    # Creation stays bounded (it never scans more than a checkpoint
    # interval of log): no point should cost more than the whole query
    # sweep's maximum.
    max_query = max(point.asof_query_s for point in points)
    for point in points:
        assert point.asof_create_s < max(max_query, 10 * points[0].asof_create_s + 1e-6)
    # The number of pages touched by the query is roughly constant — the
    # cost growth comes from per-page history, not from page count.
    prepared = [point.pages_prepared for point in points]
    assert max(prepared) <= 3 * max(1, min(prepared))
