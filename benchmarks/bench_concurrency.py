"""Concurrency bench: session-scaling throughput and latch contention.

Runs the same fixed batch of TPC-C transactions split across 1..N
concurrent sessions (``engine.run_sessions``) and reports:

* **throughput scaling** — committed transactions per real second at
  each worker count (reported, never asserted: Python threads share the
  GIL, so the interesting signal is that throughput *doesn't collapse*
  as sessions are added, not that it multiplies);
* **latch contention** — per-latch acquisition/contention counters from
  the structures the concurrent engine serializes on (database write
  latch, snapshot pool, version store, log manager, buffer pool, lock
  manager), the data that says *where* the engine queues;
* **mixed-storm integrity** — one storm of writers + current readers +
  AS OF sweeps at the top worker count, followed by a full checkdb (the
  bench fails hard if the storm corrupts the database — same contract
  as ``tests/test_concurrency.py``, at bench scale).

Standalone script (CI runs it with ``--smoke``):
``python benchmarks/bench_concurrency.py [--smoke]``.
Raw numbers land in ``bench_results/concurrency.json``.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import ReportTable, attach_metrics, save_results  # noqa: E402
from repro.bench.harness import build_tpcc, make_perf_env  # noqa: E402
from repro.sim.device import SLC_SSD  # noqa: E402
from repro.tools.checkdb import check_database  # noqa: E402
from repro.workload import TpccDriver, TpccScale  # noqa: E402

SCALE = TpccScale(
    warehouses=2,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=50,
)

STORM_TIMEOUT_S = 300.0


def _tracked_latches(engine, db) -> dict:
    return {
        "db.write": db.write_latch,
        "snapshot_pool": engine.snapshot_pool.latch,
        "version_store": engine.version_store.latch,
        "log_manager": db.log.latch,
        "buffer_pool": db.buffer.latch,
        "lock_manager": db.locks.latch,
    }


def _latch_report(engine, db) -> dict:
    return {
        name: latch.stats()
        for name, latch in _tracked_latches(engine, db).items()
    }


def _writer_task(db, barrier, txns, seed):
    def run():
        driver = TpccDriver(db, SCALE, seed=seed)
        barrier.wait(STORM_TIMEOUT_S)
        return driver.run_transactions(txns)

    return run


def run_scaling(worker_counts, txns_total, smoke) -> list[dict]:
    """One fresh engine per worker count; same total work each time."""
    rows = []
    for workers in worker_counts:
        env = make_perf_env(SLC_SSD)
        engine, db, _driver = build_tpcc(env, SCALE, seed=7)
        per_worker = txns_total // workers
        barrier = threading.Barrier(workers)

        t0 = time.perf_counter()
        outcomes = engine.run_sessions(
            [
                _writer_task(db, barrier, per_worker, 100 + i)
                for i in range(workers)
            ],
            workers=workers,
            timeout_s=STORM_TIMEOUT_S,
        )
        elapsed = time.perf_counter() - t0

        committed = sum(o.committed for o in outcomes)
        rows.append(
            {
                "workers": workers,
                "transactions": sum(o.transactions for o in outcomes),
                "committed": committed,
                "rolled_back": sum(o.rolled_back for o in outcomes),
                "real_seconds": elapsed,
                "committed_per_s": committed / elapsed if elapsed else 0.0,
                "latches": _latch_report(engine, db),
                "write_latch_contention": db.write_latch.contention_ratio(),
            }
        )
    return rows


def run_mixed_storm(workers, txns, smoke):
    """Writers + current readers + AS OF sweeps, then a full checkdb.
    Returns ``(payload_row, env)`` so the caller can attach the storm's
    simulated I/O metrics."""
    env = make_perf_env(SLC_SSD)
    engine, db, _driver = build_tpcc(env, SCALE, seed=7)
    engine.start_monitor()
    t_asof = env.clock.now()
    writers = max(1, workers // 2)
    readers = max(1, workers // 4)
    sweeps = max(1, workers // 4)
    barrier = threading.Barrier(writers + readers + sweeps)

    def reader():
        barrier.wait(STORM_TIMEOUT_S)
        seen = 0
        with engine.session(db.name) as session:
            for _ in range(txns):
                seen += session.execute(
                    "SELECT COUNT(*) FROM district"
                ).scalar()
        return seen

    def sweeper(seed):
        def run():
            driver = TpccDriver(db, SCALE, seed=seed)
            barrier.wait(STORM_TIMEOUT_S)
            total = 0
            for _ in range(max(2, txns // 4)):
                total += driver.stock_level_as_of(engine, t_asof)
            return total

        return run

    tasks = [_writer_task(db, barrier, txns, 200 + i) for i in range(writers)]
    tasks += [reader] * readers
    tasks += [sweeper(300 + i) for i in range(sweeps)]
    t0 = time.perf_counter()
    outcomes = engine.run_sessions(
        tasks, workers=len(tasks), timeout_s=STORM_TIMEOUT_S
    )
    elapsed = time.perf_counter() - t0
    report = check_database(db)
    pool = engine.snapshot_pool
    return env, {
        "workers": workers,
        "sessions": len(tasks),
        "writers": writers,
        "readers": readers,
        "asof_sweeps": sweeps,
        "committed": sum(o.committed for o in outcomes[:writers]),
        "real_seconds": elapsed,
        "checkdb_ok": report.ok,
        "pool_leaked_leases": pool.active_leases(),
        "pool_bytes": pool.total_bytes(),
        "pool_budget_bytes": pool.budget_bytes,
        "latches": _latch_report(engine, db),
        "health": engine.health()["overall"],
    }


def run_concurrency_bench(smoke: bool = False) -> dict:
    worker_counts = [1, 4] if smoke else [1, 2, 4, 8]
    txns_total = 80 if smoke else 400
    storm_workers = 4 if smoke else 8
    storm_txns = 15 if smoke else 40

    scaling = run_scaling(worker_counts, txns_total, smoke)
    storm_env, storm = run_mixed_storm(storm_workers, storm_txns, smoke)

    base = scaling[0]["committed_per_s"] or 1.0
    payload = {
        "smoke": smoke,
        "scale": {
            "warehouses": SCALE.warehouses,
            "districts": SCALE.districts_per_warehouse,
            "customers": SCALE.customers_per_district,
            "items": SCALE.items,
        },
        "txns_total": txns_total,
        "scaling": scaling,
        "speedup_vs_single": [
            round(row["committed_per_s"] / base, 3) for row in scaling
        ],
        "mixed_storm": storm,
    }
    return attach_metrics(payload, storm_env)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale / short run (the CI tier-2 configuration)",
    )
    args = parser.parse_args(argv)
    result = run_concurrency_bench(smoke=args.smoke)

    table = ReportTable(
        "Concurrent sessions: throughput scaling and latch contention",
        ["workers", "committed/s", "speedup", "write-latch contention"],
    )
    for row, speedup in zip(
        result["scaling"], result["speedup_vs_single"], strict=True
    ):
        table.add(
            row["workers"],
            f"{row['committed_per_s']:.1f}",
            f"{speedup:.2f}x",
            f"{row['write_latch_contention']:.3f}",
        )
    table.show()

    storm = result["mixed_storm"]
    contended = sorted(
        (
            (stats["contentions"], name)
            for name, stats in storm["latches"].items()
        ),
        reverse=True,
    )
    print(
        f"\nmixed storm: {storm['sessions']} sessions "
        f"({storm['writers']}w/{storm['readers']}r/{storm['asof_sweeps']}asof), "
        f"{storm['committed']} committed in {storm['real_seconds']:.2f}s, "
        f"checkdb={'ok' if storm['checkdb_ok'] else 'CORRUPT'}"
    )
    print("hottest latches (contentions): " + ", ".join(
        f"{name}={count}" for count, name in contended[:3]
    ))
    path = save_results("concurrency", result)
    print(f"results saved to {path}")

    # Integrity is the contract even at bench scale; scaling is reported,
    # not asserted (GIL).
    assert storm["checkdb_ok"], "mixed storm corrupted the database"
    assert storm["pool_leaked_leases"] == 0, "storm leaked pooled leases"
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
