"""Version-store bench: nearby AS OF sweeps, cold vs warm store.

The paper's Figure 11 identifies undo log I/O as the dominant cost of
point-in-time reads; the cross-snapshot
:class:`~repro.core.version_store.PageVersionStore` removes it for
repeated/nearby reads by keying prepared page images on the validity
interval the chain walk proves. This bench measures the audit-loop
workload that motivates the store: a sweep of AS OF ``stock_level``
queries at nearby times over a TPC-C history, run four ways —

* **store disabled** — yesterday's engine: every query is a pool miss
  that pays the (already batched/coalesced) chain walks.
* **cold store** — store enabled but empty: same walks, plus publishes.
* **warm repeated** — the same sweep after the snapshot pool was dropped
  (memory pressure, restart of the pool tier): snapshots are recreated,
  but every page probe hits the store — undo log reads collapse.
* **warm nearby** — the sweep shifted to *different* SplitLSNs between
  the same commits: hits wherever a page's interval brackets both
  splits, batched walks (publishing new intervals) where it doesn't.

Unlike the figure benches this is a standalone script (CI runs it with
``--smoke --gate``): ``python benchmarks/bench_version_store.py
[--smoke] [--gate]``. Full-run numbers land in
``bench_results/version_store.json``; smoke numbers in
``bench_results/version_store_smoke.json``, which is the committed
baseline the ``--gate`` mode enforces (fail when warm-store undo log
reads regress more than 20%).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import ReportTable, attach_metrics, save_results  # noqa: E402
from repro.bench.harness import BENCH_SCALE, build_tpcc, make_perf_env  # noqa: E402
from repro.config import DatabaseConfig  # noqa: E402
from repro.sim.device import SLC_SSD  # noqa: E402
from repro.workload import TpccScale  # noqa: E402

SMOKE_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=8,
    items=40,
)

#: Regression margin for the CI gate (fractional increase allowed).
GATE_MARGIN = 0.20

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "bench_results")


def _sweep(engine, driver, env, targets) -> dict:
    """Run one AS OF sweep; returns I/O deltas, timings and results."""
    before = env.stats.snapshot()
    t0 = env.clock.now()
    results = [driver.stock_level_as_of(engine, t) for t in targets]
    elapsed = env.clock.now() - t0
    spent = env.stats.delta(before)
    return {
        "results": results,
        "elapsed_s": elapsed,
        "undo_log_reads": spent.undo_log_reads,
        "undo_header_reads": spent.undo_header_reads,
        "undo_reads_coalesced": spent.undo_reads_coalesced,
        "undo_records_applied": spent.undo_records_applied,
        "pages_prepared": spent.pages_prepared_asof,
        "store_hits": spent.version_store_hits,
        "store_misses": spent.version_store_misses,
    }


def run_version_store_bench(smoke: bool = False) -> dict:
    scale = SMOKE_SCALE if smoke else BENCH_SCALE
    workload_s = 60.0 if smoke else 180.0
    queries = 5 if smoke else 20
    spacing_s = 3.0
    nearby_offset_s = 1.0

    env = make_perf_env(SLC_SSD)
    # The paper's regime: the retained log is much larger than the log
    # cache (section 6.2), so chain walks actually touch the device —
    # 16 cached blocks (1 MB) against a multi-MB history.
    engine, db, driver = build_tpcc(
        env, scale, config=DatabaseConfig(log_cache_blocks=16)
    )
    driver.run_for(workload_s)

    now = env.clock.now()
    targets = [now - (queries - k) * spacing_s for k in range(queries)]
    nearby = [t + nearby_offset_s for t in targets]

    store = engine.version_store
    store_budget = store.budget_bytes

    # -- store disabled: the pre-store engine ---------------------------
    engine.set_version_store_budget(0)
    disabled = _sweep(engine, driver, env, targets)

    # -- cold store: same sweep, publishing -----------------------------
    engine.snapshot_pool.clear()
    engine.set_version_store_budget(store_budget)
    cold = _sweep(engine, driver, env, targets)

    # -- warm store, repeated sweep (pool dropped, store survives) ------
    engine.snapshot_pool.clear()
    warm = _sweep(engine, driver, env, targets)

    # -- warm store, nearby splits --------------------------------------
    engine.snapshot_pool.clear()
    warm_nearby = _sweep(engine, driver, env, nearby)

    assert warm["results"] == cold["results"] == disabled["results"]
    # Undo-path random log I/Os = coalesced span reads + header-discovery
    # reads; both stall on the log device, so the headline reduction
    # counts them together.
    disabled_reads = disabled["undo_log_reads"] + disabled["undo_header_reads"]
    warm_reads = warm["undo_log_reads"] + warm["undo_header_reads"]
    reduction = disabled_reads / max(1, warm_reads)
    speedup = disabled["elapsed_s"] / warm["elapsed_s"] if warm["elapsed_s"] else 0.0
    payload = {
        "smoke": smoke,
        "queries": queries,
        "spacing_s": spacing_s,
        "nearby_offset_s": nearby_offset_s,
        "store_stats": engine.version_store_stats(),
    }
    for name, sweep in (
        ("disabled", disabled),
        ("cold", cold),
        ("warm", warm),
        ("warm_nearby", warm_nearby),
    ):
        for key, value in sweep.items():
            if key == "results":
                continue
            payload[f"{name}_{key}"] = value
    payload["undo_read_reduction"] = reduction
    payload["warm_speedup"] = speedup
    payload["warm_nearby_hit_rate"] = warm_nearby["store_hits"] / max(
        1, warm_nearby["store_hits"] + warm_nearby["store_misses"]
    )
    return attach_metrics(payload, env)


def _gate(fresh: dict, baseline_path: str) -> int:
    """Fail when warm-store undo log reads regressed past the margin."""
    if not os.path.exists(baseline_path):
        print(f"gate: no committed baseline at {baseline_path}; recording only")
        return 0
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    failures = []
    for metric in (
        "warm_undo_log_reads",
        "warm_undo_header_reads",
        "cold_undo_log_reads",
    ):
        base = baseline.get(metric)
        got = fresh.get(metric)
        if base is None or got is None:
            continue
        allowed = base + max(1, int(base * GATE_MARGIN))
        status = "ok" if got <= allowed else "REGRESSION"
        print(f"gate: {metric}: baseline={base} fresh={got} allowed<={allowed} {status}")
        if got > allowed:
            failures.append(metric)
    if fresh["undo_read_reduction"] < 3.0:
        print(
            f"gate: undo_read_reduction {fresh['undo_read_reduction']:.1f}x "
            f"below the 3x acceptance floor: REGRESSION"
        )
        failures.append("undo_read_reduction")
    # The embedded repro.obs.metrics/v1 snapshot carries the registry's
    # own view of the store; gate on it too so the canonical schema (not
    # just the ad-hoc sweep fields) is what CI enforces.
    metrics = fresh.get("metrics", {})
    if metrics.get("schema") != "repro.obs.metrics/v1":
        print("gate: payload lacks a repro.obs.metrics/v1 snapshot: REGRESSION")
        failures.append("metrics_schema")
    else:
        got_rate = metrics.get("gauges", {}).get("version_store.hit_rate", 0.0)
        base_rate = (
            baseline.get("metrics", {}).get("gauges", {}).get("version_store.hit_rate")
        )
        if base_rate is not None:
            floor = base_rate * (1 - GATE_MARGIN)
            status = "ok" if got_rate >= floor else "REGRESSION"
            print(
                f"gate: metrics.version_store.hit_rate: baseline={base_rate:.3f} "
                f"fresh={got_rate:.3f} allowed>={floor:.3f} {status}"
            )
            if got_rate < floor:
                failures.append("metrics.version_store.hit_rate")
    if failures:
        print(f"gate: FAILED ({', '.join(failures)})")
        return 1
    print("gate: passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small scale for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="compare against the committed baseline; exit 1 on >20%% "
        "warm-store undo-read regression",
    )
    args = parser.parse_args(argv)

    result = run_version_store_bench(smoke=args.smoke)

    table = ReportTable(
        "AS OF sweep at nearby times: cold vs warm version store",
        ["sweep", "undo reads", "hdr reads", "coalesced", "store hits", "sim s"],
    )
    for name in ("disabled", "cold", "warm", "warm_nearby"):
        table.add(
            name,
            result[f"{name}_undo_log_reads"],
            result[f"{name}_undo_header_reads"],
            result[f"{name}_undo_reads_coalesced"],
            result[f"{name}_store_hits"],
            result[f"{name}_elapsed_s"],
        )
    table.show()
    print(
        f"\nundo-read reduction (disabled -> warm): "
        f"{result['undo_read_reduction']:.1f}x; "
        f"warm sweep speedup: {result['warm_speedup']:.1f}x; "
        f"nearby-split hit rate: {result['warm_nearby_hit_rate']:.0%}"
    )

    name = "version_store_smoke" if args.smoke else "version_store"
    exit_code = 0
    if args.gate:
        exit_code = _gate(result, os.path.join(RESULTS_DIR, f"{name}.json"))
    if not args.gate or exit_code == 0:
        path = save_results(name, result)
        print(f"results saved to {path}")
    return exit_code


if __name__ == "__main__":
    raise SystemExit(main())
