"""Log-shipping replication: warm standbys fed by the transaction log.

The paper's central observation — the transaction log already contains
everything needed to materialize any past state — extends naturally from
one node to many: the same stream that powers ``AS OF`` undo can be
shipped to standbys that absorb current and point-in-time reads.

* :class:`~repro.replication.stream.LogFrame` — the framed, checksummed
  wire format shipped between primary and standby.
* :class:`~repro.replication.shipper.LogShipper` — primary side: tails the
  :class:`~repro.wal.log_manager.LogManager`, frames durable records, and
  streams them to subscribed replicas, resumable from each replica's LSN
  cursor.
* :class:`~repro.replication.replica.Replica` — standby side: a full
  :class:`~repro.engine.database.Database` shell kept warm by continuous
  redo apply (the :class:`~repro.wal.apply.RedoApplier` shared with crash
  recovery), serving current reads, pooled ``AS OF`` reads from its own
  :class:`~repro.core.snapshot_pool.SnapshotPool`, and — with a configured
  ``apply_delay_s`` — acting as a delayed-apply safety net for application
  error recovery beyond the primary's retention window.
"""

from repro.replication.replica import Replica, ReplicaStats
from repro.replication.shipper import LogShipper, ShipperStats
from repro.replication.stream import LogFrame

__all__ = [
    "LogFrame",
    "LogShipper",
    "ShipperStats",
    "Replica",
    "ReplicaStats",
]
