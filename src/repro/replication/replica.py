"""The standby: a database shell kept warm by continuous redo apply.

A :class:`Replica` owns a :class:`~repro.engine.database.Database` created
without bootstrap — every page of its state, including the boot page and
the system catalog, arrives by replaying the primary's log from its very
first record (the primary's own bootstrap is logged). Apply runs through
the :class:`~repro.wal.apply.RedoApplier` shared with ARIES crash
recovery, batched per page and costed as partition-parallel redo (cf.
*Fast Failure Recovery for Main-Memory DBMSs on Multicores*).

The replica serves three kinds of reads:

* **current** — the reader protocol (``get``/``scan``/``table``) against
  the applied state; eventually consistent with the primary, bounded by
  the shipping/apply lag.
* **point in time** — ``AS OF`` leases from the replica's own
  :class:`~repro.core.snapshot_pool.SnapshotPool` over the replica's own
  shipped log; the primary is not involved at all. Because the shipped
  log is byte-identical to the primary's, prepared page images are too:
  replica snapshots probe and publish the engine's shared
  :class:`~repro.core.version_store.PageVersionStore` under the
  *primary's* key, so a chain walk paid on either side is reusable by
  every pool.
* **delayed** — with ``apply_delay_s`` set, received frames are held in a
  staging queue and applied only once they are older than the delay. The
  window between applied and received state is an application-error
  safety net: any point inside it can be read (or promoted to) even after
  the primary's retention horizon has passed, because the replica keeps
  its entire shipped log.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from repro.catalog.catalog import SYS_COLUMNS_ID, SYS_OBJECTS_ID
from repro.core.snapshot_pool import DEFAULT_POOL_BUDGET_BYTES, SnapshotPool
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.engine.boot import BOOT_PAGE_ID
from repro.engine.database import Database
from repro.engine.recovery import analyze_log, undo_pass
from repro.errors import ReplicationError, ReplicationFaultError
from repro.replication.stream import LogFrame
from repro.wal.apply import RedoApplier
from repro.wal.lsn import FIRST_LSN, NULL_LSN, format_lsn
from repro.wal.records import CommitRecord


@dataclass
class ReplicaStats:
    """Observable replica behavior."""

    frames_received: int = 0
    bytes_received: int = 0
    records_applied: int = 0
    apply_batches: int = 0
    #: High-water mark of received-but-unapplied bytes (delay + lag).
    peak_apply_backlog_bytes: int = 0


class Replica:
    """A warm standby for one primary database."""

    def __init__(
        self,
        primary,
        name: str,
        *,
        apply_delay_s: float = 0.0,
        apply_slots: int = 4,
        snapshot_pool_budget: int = DEFAULT_POOL_BUDGET_BYTES,
        config=None,
    ) -> None:
        if apply_delay_s < 0:
            raise ValueError("apply_delay_s must be >= 0")
        self.primary = primary
        self.name = name
        self.apply_delay_s = apply_delay_s
        self.db = Database(
            name,
            config if config is not None else primary.config,
            primary.env,
            bootstrap=False,
        )
        self.db.read_only = True
        # The replica never truncates its shipped log; reachability is
        # bounded by the log itself, not the primary's retention window.
        self.db.retention_override_s = float("inf")
        #: Pooled ephemeral snapshots over the replica's own log/state.
        self.snapshot_pool = SnapshotPool(snapshot_pool_budget)
        self.stats = ReplicaStats()
        self._applier = RedoApplier(self.db, parallel_slots=apply_slots)
        #: Next LSN to apply (exclusive end of the applied prefix).
        self.applied_lsn = FIRST_LSN
        #: Wall clock / LSN of the last applied commit record.
        self.applied_wall = 0.0
        self.applied_commit_lsn = NULL_LSN
        #: Received frames awaiting their apply-delay: (ship_wall, end_lsn).
        self._delay_queue: deque[tuple[float, int]] = deque()
        #: Newest shipped checkpoint — the SplitLSN search anchor, valid
        #: even before any page state has been applied (the checkpoint
        #: chain lives in the log, which the standby already holds).
        self._newest_ckpt_lsn = NULL_LSN
        self.dropped = False
        #: Consecutive faulted apply attempts (set by the engine's tick;
        #: read offload routes away from a faulted standby).
        self.consecutive_apply_errors = 0
        #: Sim time before which the engine skips apply retries here.
        self.apply_retry_s = 0.0
        #: The last apply fault, as text.
        self.last_apply_error: str | None = None

    # ------------------------------------------------------------------
    # Seeding (backup-seeded standbys; see the engine's archive tier)
    # ------------------------------------------------------------------

    def seed(self, pages: dict[int, bytes], seed_lsn: int) -> None:
        """Adopt a backup chain's pages as this standby's initial state.

        Instead of replaying the primary's log from its very first record
        — impossible once the primary has truncated — the standby starts
        from a restored backup chain: its pages are laid down, its log is
        rebased to start at ``seed_lsn`` (the chain's last checkpoint
        LSN), and shipping resumes from there. Must run before any frame
        has been received.
        """
        if self.applied_lsn != FIRST_LSN or self.stats.frames_received:
            raise ReplicationError(
                f"replica {self.name!r} already has shipped state; seed "
                f"before attaching it to a shipper"
            )
        self.db.file_manager.write_sequential(pages)
        self.db.log.open_at(seed_lsn)
        self.applied_lsn = seed_lsn
        self.db.publish_horizon_lsn = seed_lsn
        self.db.invalidate_caches()
        self.db.reload_boot()
        # The backup's boot page names the checkpoint the chain is
        # consistent with — the SplitLSN search anchor until newer
        # checkpoints arrive through the stream.
        self._newest_ckpt_lsn = self.db.last_checkpoint_lsn

    # ------------------------------------------------------------------
    # Receive (the shipper calls this)
    # ------------------------------------------------------------------

    @property
    def received_lsn(self) -> int:
        """End of the log landed on this standby (the resume cursor)."""
        return self.db.log.end_lsn

    def receive(self, blob: bytes) -> int:
        """Land one encoded frame; returns the new received LSN.

        Frames must arrive in order with no gaps; a mismatched start LSN
        raises :class:`ReplicationError` carrying the expected cursor, and
        the shipper resynchronizes from :attr:`received_lsn`.
        """
        self._check_alive()
        try:
            frame = LogFrame.decode(blob)
        except ReplicationFaultError:
            raise
        except ReplicationError as err:
            # Torn/corrupted/short frame on the wire: typed as a
            # transient stream fault carrying the exact resume cursor,
            # so the shipper's retry resends this range and nothing else.
            raise ReplicationFaultError(
                f"replica {self.name!r} rejected a frame at "
                f"{format_lsn(self.received_lsn)}: {err}",
                resume_lsn=self.received_lsn,
            ) from err
        if frame.start_lsn != self.received_lsn:
            raise ReplicationFaultError(
                f"replica {self.name!r} expected frame at "
                f"{format_lsn(self.received_lsn)}, got "
                f"{format_lsn(frame.start_lsn)}",
                resume_lsn=self.received_lsn,
            )
        ckpt = self.db.log.ingest(frame.start_lsn, frame.payload)
        if ckpt != NULL_LSN and ckpt > self._newest_ckpt_lsn:
            self._newest_ckpt_lsn = ckpt
            self.db.last_checkpoint_lsn = max(
                self.db.last_checkpoint_lsn, ckpt
            )
        self._delay_queue.append((frame.ship_wall, frame.end_lsn))
        self.stats.frames_received += 1
        self.stats.bytes_received += len(frame.payload)
        backlog = self.received_lsn - self.applied_lsn
        if backlog > self.stats.peak_apply_backlog_bytes:
            self.stats.peak_apply_backlog_bytes = backlog
        return self.received_lsn

    # ------------------------------------------------------------------
    # Apply
    # ------------------------------------------------------------------

    def eligible_lsn(self) -> int:
        """How far apply may currently advance (delay-aware)."""
        if self.apply_delay_s <= 0:
            return self.received_lsn
        horizon = self.db.env.clock.now() - self.apply_delay_s
        eligible = self.applied_lsn
        for ship_wall, end_lsn in self._delay_queue:
            if ship_wall > horizon:
                break
            eligible = end_lsn
        return eligible

    def apply_ready(self) -> int:
        """Apply every received record whose delay has elapsed; returns
        the number of records redone."""
        self._check_alive()
        eligible = self.eligible_lsn()
        chaos = getattr(self.db.env, "chaos", None)
        if chaos is not None and eligible > self.applied_lsn:
            chaos.hit("repl.apply", target=self.name)
        # Redo mutates the standby's pages across records; offloaded
        # readers serialize against it on the standby's write latch.
        with self.db.write_latch:
            return self._apply_range(eligible)

    # -- apply fault state (the engine's tick drives retry/backoff) ----

    def note_apply_fault(self, err, now: float, retry) -> None:
        """Record a faulted apply attempt and schedule its retry."""
        self.consecutive_apply_errors += 1
        self.last_apply_error = f"{type(err).__name__}: {err}"
        self.apply_retry_s = now + retry.delay(self.consecutive_apply_errors)

    def note_apply_ok(self) -> None:
        if self.consecutive_apply_errors:
            self.consecutive_apply_errors = 0
            self.last_apply_error = None
            self.apply_retry_s = 0.0

    def is_faulted(self) -> bool:
        """Whether apply is currently failing (routing skips this
        standby until a successful retry clears the streak)."""
        return self.consecutive_apply_errors > 0

    def _apply_range(self, to_lsn: int) -> int:
        if to_lsn <= self.applied_lsn:
            return 0
        with self.db.env.tracer.span(
            "repl.apply", replica=self.name, to_lsn=to_lsn
        ) as span:
            applied = self._apply_range_traced(to_lsn)
            span.set(records=applied)
        return applied

    def _apply_range_traced(self, to_lsn: int) -> int:
        touched_meta = False
        state = {"wall": self.applied_wall, "commit": self.applied_commit_lsn}

        def records():
            nonlocal touched_meta
            for rec in self.db.log.scan(self.applied_lsn, to_lsn):
                if isinstance(rec, CommitRecord):
                    state["wall"] = rec.wall_clock
                    state["commit"] = rec.lsn
                elif rec.IS_PAGE_MOD and (
                    rec.page_id == BOOT_PAGE_ID
                    or rec.object_id in (SYS_OBJECTS_ID, SYS_COLUMNS_ID)
                ):
                    touched_meta = True
                yield rec

        applied = self._applier.apply(records())
        self.applied_lsn = to_lsn
        # Snapshot preparation on this replica may publish open-ended
        # page intervals; they are only proven up to the applied prefix
        # (received-but-unapplied records can touch any page).
        self.db.publish_horizon_lsn = to_lsn
        self.applied_wall = state["wall"]
        self.applied_commit_lsn = state["commit"]
        while self._delay_queue and self._delay_queue[0][1] <= self.applied_lsn:
            self._delay_queue.popleft()
        if touched_meta:
            self.db.invalidate_caches()
            with self.db.fetch_page(BOOT_PAGE_ID) as guard:
                boot_ready = guard.page.is_formatted()
            if boot_ready:
                self.db.reload_boot()
                # The boot page trails the received log; keep the newest
                # shipped checkpoint as the SplitLSN search anchor.
                self.db.last_checkpoint_lsn = max(
                    self.db.last_checkpoint_lsn, self._newest_ckpt_lsn
                )
        if applied:
            self.stats.records_applied += applied
            self.stats.apply_batches += 1
        return applied

    def ensure_applied_through(self, as_of_wall: float) -> int:
        """Advance apply (delay notwithstanding) so ``as_of_wall`` is
        covered; returns the SplitLSN for that time.

        This is the delayed replica's recovery read path: any point inside
        the delay window can be materialized by applying forward to it —
        never backward, so pick the earliest interesting point first.
        """
        self._check_alive()
        split = find_split_lsn(self.db, as_of_wall)
        if split >= self.applied_lsn:
            self._apply_range(self.db.log.record_aligned_end(split, 1))
        return split

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    @contextmanager
    def read_as_of(self, as_of_wall: float):
        """Lease a pooled point-in-time view from this replica's pool.

        Applies forward if the requested time is past the replica's
        applied position (the delayed-recovery path); times already
        covered are served without touching the apply cursor.
        """
        self.ensure_applied_through(as_of_wall)
        snapshot = self.snapshot_pool.acquire(self.db, as_of_wall)
        try:
            yield snapshot
        finally:
            self.snapshot_pool.release(snapshot)

    # Reader protocol passthrough: a replica quacks like a read-only
    # database, so drivers and the SQL layer can target it directly.

    def get(self, table: str, key, txn=None):
        return self.db.get(table, key)

    def scan(self, table: str, lo=None, hi=None):
        return self.db.scan(table, lo, hi)

    def table(self, name: str):
        return self.db.table(name)

    def tables(self) -> list[str]:
        return self.db.tables()

    # ------------------------------------------------------------------
    # Lag
    # ------------------------------------------------------------------

    def lag_bytes(self) -> int:
        """Bytes of durable primary log not yet applied here."""
        return max(0, self.primary.log.durable_lsn - self.applied_lsn)

    def received_lag_bytes(self) -> int:
        """Bytes of durable primary log not yet shipped here."""
        return max(0, self.primary.log.durable_lsn - self.received_lsn)

    # ------------------------------------------------------------------
    # Promotion (the delayed-apply error-recovery endgame)
    # ------------------------------------------------------------------

    def promote(self, up_to_wall: float | None = None) -> Database:
        """Turn this standby into a writable database; returns it.

        With ``up_to_wall`` the timeline stops at that point's SplitLSN —
        shipped records beyond it are discarded — which is how a delayed
        replica recovers from an application error: promote to just before
        the error, inside the delay window, regardless of the primary's
        retention horizon. Without it, everything received is applied
        (failover to the most recent shipped state).

        Transactions in flight at the promotion point are rolled back with
        the same logical-undo machinery crash recovery uses; the replica
        object itself is retired (``dropped``), the database lives on.
        """
        self._check_alive()
        if up_to_wall is None:
            to_lsn = self.received_lsn
        else:
            split = find_split_lsn(self.db, up_to_wall)
            to_lsn = self.db.log.record_aligned_end(split, 1)
        if to_lsn < self.applied_lsn:
            # Redo only moves forward: pages already reflect records past
            # the requested point, and discarding their log would leave
            # page LSNs dangling beyond the log end. Rewinding is the
            # as-of machinery's job (read_as_of), not promotion's.
            raise ReplicationError(
                f"replica {self.name!r} already applied through "
                f"{format_lsn(self.applied_lsn)}; cannot promote back to "
                f"{format_lsn(to_lsn)}"
            )
        self._apply_range(to_lsn)
        self.db.log.discard_after(to_lsn)
        self.snapshot_pool.clear()
        self.dropped = True
        self.db.read_only = False
        self.db.retention_override_s = None
        if self.db.version_store is not None:
            # The promoted timeline diverges from the primary's at the
            # discard point: stop sharing the primary's store key and
            # start a fresh history under this database's own name.
            # Versions published under the primary's key stay valid for
            # the primary — they describe the still-shared prefix.
            self.db.version_store.purge(self.db.name)
            self.db.version_store_key = self.db.name
        self.db.publish_horizon_lsn = None
        # The receive-time checkpoint anchor may point into the discarded
        # tail; the boot page of the applied state is the truth now.
        self.db.invalidate_caches()
        self.db.reload_boot()
        base = NULL_LSN
        for lsn, _wall, _prev in checkpoint_chain(self.db):
            base = lsn
            break
        if base == NULL_LSN or base >= to_lsn:
            base = self.db.log.start_lsn
        analysis = analyze_log(self.db.log, base)
        undo_pass(self.db, analysis)
        self.db.txns.adopt_txn_id_floor(analysis.max_txn_id)
        self.db.checkpoint()
        return self.db

    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.dropped:
            raise ReplicationError(f"replica {self.name!r} was dropped")

    def drop(self) -> None:
        """Discard the standby and its pooled snapshots."""
        self.dropped = True
        self.snapshot_pool.clear()
        self._delay_queue.clear()

    def __repr__(self) -> str:
        return (
            f"Replica({self.name!r} of {self.primary.name!r}, "
            f"applied={format_lsn(self.applied_lsn)}, "
            f"received={format_lsn(self.received_lsn)}, "
            f"delay={self.apply_delay_s:.0f}s)"
        )
