"""Primary-side log shipping: tail the WAL, frame it, stream it.

The :class:`LogShipper` owns one primary database's outbound replication.
Each subscribed replica has an LSN cursor; :meth:`poll` ships every
durable byte past each cursor as record-aligned, checksummed
:class:`~repro.replication.stream.LogFrame` batches. Cursors make the
stream resumable: a replica that reconnects (or a freshly constructed
shipper that attaches an existing replica) continues from the replica's
reported ``received_lsn`` — no state beyond the log itself is needed,
which is the whole appeal of log-shipping replication.

The shipper also registers a retention pin on the primary: the log below
the slowest subscriber's cursor is not truncated out from under it (see
:func:`repro.core.retention.enforce_retention`). A replica that detaches
releases the pin; if retention then truncates past its cursor, a later
re-attach fails with :class:`~repro.errors.ReplicationError` and the
replica must be reseeded (``add_replica(seed_from_backup=True)`` when an
archived backup chain exists). Subscribers need not be replicas: the
archive tier's :class:`~repro.archive.archiver.LogArchiver` consumes the
same stream, and its cursor-pin is what guarantees log is archived
*before* retention drops it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ReplicationError
from repro.replication.stream import LogFrame
from repro.wal.lsn import format_lsn

#: Default frame payload budget. Frames are cut at record boundaries, so a
#: single oversized record still ships whole.
DEFAULT_BATCH_BYTES = 256 * 1024


@dataclass
class ShipperStats:
    """Observable shipping behavior (asserted on by tests/benchmarks)."""

    polls: int = 0
    frames_shipped: int = 0
    bytes_shipped: int = 0
    #: Cursor resyncs from a replica's reported position (reconnects).
    resyncs: int = 0


class _Subscription:
    __slots__ = ("replica", "cursor")

    def __init__(self, replica, cursor: int) -> None:
        self.replica = replica
        self.cursor = cursor


class LogShipper:
    """Streams one primary's committed, durable log to its replicas."""

    def __init__(self, db, *, batch_bytes: int = DEFAULT_BATCH_BYTES) -> None:
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be positive")
        self.db = db
        self.batch_bytes = batch_bytes
        self.stats = ShipperStats()
        self._subs: dict[str, _Subscription] = {}
        db.add_retention_pin(self._retention_pin)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def _retention_pin(self) -> int | None:
        """The oldest LSN any subscriber still needs shipped."""
        if not self._subs:
            return None
        return min(sub.cursor for sub in self._subs.values())

    def attach(self, replica) -> None:
        """Subscribe ``replica``, resuming from its received-LSN cursor."""
        cursor = replica.received_lsn
        if cursor < self.db.log.start_lsn:
            raise ReplicationError(
                f"replica {replica.name!r} resumes at {format_lsn(cursor)} "
                f"but the primary log starts at "
                f"{format_lsn(self.db.log.start_lsn)}; reseed the replica"
            )
        self._subs[replica.name] = _Subscription(replica, cursor)

    def detach(self, name: str) -> None:
        self._subs.pop(name, None)

    def subscribers(self) -> list[str]:
        return list(self._subs)

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def poll(self) -> int:
        """Ship pending durable bytes to every subscriber.

        Returns the total payload bytes shipped. Only durable log is ever
        shipped — the volatile tail can still vanish in a crash, and a
        standby must never hold records its primary can lose.
        """
        self.stats.polls += 1
        log = self.db.log
        target = log.durable_lsn
        now = self.db.env.clock.now()
        total = 0
        with self.db.env.tracer.span("repl.ship.poll", db=self.db.name) as span:
            for sub in self._subs.values():
                reported = sub.replica.received_lsn
                if reported != sub.cursor:
                    # The replica's position moved under us (restart, manual
                    # reseed): trust the replica, it owns the durable truth.
                    if reported < log.start_lsn:
                        raise ReplicationError(
                            f"replica {sub.replica.name!r} resumes at "
                            f"{format_lsn(reported)}, below the primary's "
                            f"retained log ({format_lsn(log.start_lsn)})"
                        )
                    sub.cursor = reported
                    self.stats.resyncs += 1
                while sub.cursor < target:
                    end = log.record_aligned_end(
                        sub.cursor, self.batch_bytes, target
                    )
                    if end <= sub.cursor:
                        break
                    frame = LogFrame(
                        sub.cursor, log.read_bytes(sub.cursor, end), now
                    )
                    sub.replica.receive(frame.encode())
                    sub.cursor = end
                    self.stats.frames_shipped += 1
                    self.stats.bytes_shipped += len(frame.payload)
                    total += len(frame.payload)
            span.set(bytes=total)
        return total

    def max_lag_bytes(self) -> int:
        """Largest unshipped byte count across subscribers."""
        target = self.db.log.durable_lsn
        if not self._subs:
            return 0
        return max(target - sub.cursor for sub in self._subs.values())

    def __repr__(self) -> str:
        return (
            f"LogShipper({self.db.name!r}, subscribers={len(self._subs)}, "
            f"shipped={self.stats.bytes_shipped}B)"
        )
