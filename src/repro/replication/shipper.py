"""Primary-side log shipping: tail the WAL, frame it, stream it.

The :class:`LogShipper` owns one primary database's outbound replication.
Each subscribed replica has an LSN cursor; :meth:`poll` ships every
durable byte past each cursor as record-aligned, checksummed
:class:`~repro.replication.stream.LogFrame` batches. Cursors make the
stream resumable: a replica that reconnects (or a freshly constructed
shipper that attaches an existing replica) continues from the replica's
reported ``received_lsn`` — no state beyond the log itself is needed,
which is the whole appeal of log-shipping replication.

Shipping is fault-tolerant: a transient receive failure (CRC mismatch,
injected partition, archiver flush crash — anything raising
:class:`~repro.errors.ReplicationFaultError` or a transient
:class:`~repro.errors.FaultInjectedError`) marks only that subscription
failed and schedules a retry under an exponential-backoff
:class:`~repro.chaos.retry.RetryPolicy`. The cursor is NOT advanced on
failure and every successful receive re-reports the subscriber's durable
``received_lsn``, so a retried stream can neither skip nor double-apply
a record — resume is LSN-checked on both ends and CRC-checked per frame.
Per-subscriber health is exported as ``repl.ship.<name>.*`` gauges: a
``consecutive_errors`` count, and a ``progress_t`` gauge that is
*unregistered* while the subscription is failing — its recorded series
goes stale, which is exactly what the built-in ``repl.ship_stall``
absence alert (and the failure detector on top) watches for.

The shipper also registers a retention pin on the primary: the log below
the slowest subscriber's cursor is not truncated out from under it (see
:func:`repro.core.retention.enforce_retention`). A replica that detaches
releases the pin; if retention then truncates past its cursor, a later
re-attach fails with :class:`~repro.errors.ReplicationError` and the
replica must be reseeded (``add_replica(seed_from_backup=True)`` when an
archived backup chain exists). Subscribers need not be replicas: the
archive tier's :class:`~repro.archive.archiver.LogArchiver` consumes the
same stream, and its cursor-pin is what guarantees log is archived
*before* retention drops it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.retry import RetryPolicy
from repro.errors import (
    DatabaseUnavailableError,
    FaultInjectedError,
    ReplicationError,
    ReplicationFaultError,
)
from repro.replication.stream import LogFrame
from repro.wal.lsn import format_lsn

#: Default frame payload budget. Frames are cut at record boundaries, so a
#: single oversized record still ships whole.
DEFAULT_BATCH_BYTES = 256 * 1024


@dataclass
class ShipperStats:
    """Observable shipping behavior (asserted on by tests/benchmarks)."""

    polls: int = 0
    frames_shipped: int = 0
    bytes_shipped: int = 0
    #: Cursor resyncs from a replica's reported position (reconnects).
    resyncs: int = 0
    #: Transient per-subscriber send failures (each schedules a retry).
    send_errors: int = 0
    #: Successful sends that followed at least one failure.
    retries: int = 0


class _Subscription:
    __slots__ = (
        "replica",
        "cursor",
        "consecutive_errors",
        "next_retry_s",
        "last_error",
        "last_progress_s",
    )

    def __init__(self, replica, cursor: int, now: float) -> None:
        self.replica = replica
        self.cursor = cursor
        #: Consecutive failed ship attempts (0 = healthy).
        self.consecutive_errors = 0
        #: Sim time before which poll() skips this subscription (backoff).
        self.next_retry_s = 0.0
        #: The last failure, as text (surfaced via subscriber_errors()).
        self.last_error: str | None = None
        #: Sim time of the last successful ship attempt.
        self.last_progress_s = now


class LogShipper:
    """Streams one primary's committed, durable log to its replicas."""

    def __init__(
        self,
        db,
        *,
        batch_bytes: int = DEFAULT_BATCH_BYTES,
        retry: RetryPolicy | None = None,
    ) -> None:
        if batch_bytes < 1:
            raise ValueError("batch_bytes must be positive")
        self.db = db
        self.batch_bytes = batch_bytes
        self.retry = retry if retry is not None else RetryPolicy()
        self.stats = ShipperStats()
        self._subs: dict[str, _Subscription] = {}
        self._registry = None
        db.add_retention_pin(self._retention_pin)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------

    def _retention_pin(self) -> int | None:
        """The oldest LSN any subscriber still needs shipped."""
        if not self._subs:
            return None
        return min(sub.cursor for sub in self._subs.values())

    def attach(self, replica) -> None:
        """Subscribe ``replica``, resuming from its received-LSN cursor."""
        cursor = replica.received_lsn
        if cursor < self.db.log.start_lsn:
            raise ReplicationError(
                f"replica {replica.name!r} resumes at {format_lsn(cursor)} "
                f"but the primary log starts at "
                f"{format_lsn(self.db.log.start_lsn)}; reseed the replica"
            )
        self._subs[replica.name] = _Subscription(
            replica, cursor, self.db.env.clock.now()
        )
        self._install_sub_metrics(replica.name)

    def detach(self, name: str) -> None:
        self._subs.pop(name, None)
        if self._registry is not None:
            self._registry.remove_prefix(f"repl.ship.{name}.")

    def subscribers(self) -> list[str]:
        return list(self._subs)

    def subscriber_errors(self) -> dict[str, int]:
        """Consecutive ship failures per subscriber (0 = healthy) — the
        failure detector's liveness read."""
        return {
            name: sub.consecutive_errors for name, sub in self._subs.items()
        }

    # ------------------------------------------------------------------
    # Per-subscriber health metrics (repl.ship.<name>.*)
    # ------------------------------------------------------------------

    def bind_registry(self, registry) -> None:
        """Export per-subscriber gauges into ``registry`` (the engine's
        metric install path calls this once per shipper)."""
        self._registry = registry
        for name in self._subs:
            self._install_sub_metrics(name)

    def _install_sub_metrics(self, name: str) -> None:
        if self._registry is None:
            return
        sub = self._subs[name]
        self._registry.gauge(
            f"repl.ship.{name}.consecutive_errors",
            lambda: sub.consecutive_errors,
            "consecutive failed ship attempts to this subscriber",
        )
        self._install_progress_gauge(name, sub)

    def _install_progress_gauge(self, name: str, sub: _Subscription) -> None:
        if self._registry is None:
            return
        self._registry.gauge(
            f"repl.ship.{name}.progress_t",
            lambda: sub.last_progress_s,
            "sim time of the last successful ship attempt; unregistered "
            "while the subscription is failing (absence = stall signal)",
        )

    # ------------------------------------------------------------------
    # Shipping
    # ------------------------------------------------------------------

    def poll(self) -> int:
        """Ship pending durable bytes to every subscriber.

        Returns the total payload bytes shipped. Only durable log is ever
        shipped — the volatile tail can still vanish in a crash, and a
        standby must never hold records its primary can lose.

        A transient fault on one subscription (typed stream fault or an
        injected one) is contained to it: the error state is recorded,
        the retry is scheduled, and every other subscriber still ships.
        Fatal faults (reseed-required cursor divergence, archiver races)
        propagate.
        """
        self.stats.polls += 1
        log = self.db.log
        now = self.db.env.clock.now()
        chaos = getattr(self.db.env, "chaos", None)
        total = 0
        with self.db.env.tracer.span("repl.ship.poll", db=self.db.name) as span:
            if getattr(self.db, "crashed", False):
                down = DatabaseUnavailableError(
                    f"primary {self.db.name!r} is down"
                )
                for sub in self._subs.values():
                    if now >= sub.next_retry_s:
                        self._note_failure(sub, down, now)
                span.set(bytes=0)
                return 0
            target = log.durable_lsn
            for sub in list(self._subs.values()):
                if now < sub.next_retry_s:
                    continue  # still backing off from the last failure
                try:
                    if chaos is not None:
                        chaos.hit("repl.ship.poll", target=self.db.name)
                    total += self._ship_to(sub, log, target, now, chaos)
                except (ReplicationFaultError, FaultInjectedError) as err:
                    if not err.transient:
                        raise
                    self._note_failure(sub, err, now)
                else:
                    self._note_progress(sub, now)
            span.set(bytes=total)
        return total

    def _ship_to(self, sub, log, target: int, now: float, chaos) -> int:
        """Ship everything pending to one subscriber; returns bytes."""
        reported = sub.replica.received_lsn
        if reported != sub.cursor:
            # The replica's position moved under us (restart, manual
            # reseed, a retried frame that half-landed): trust the
            # replica, it owns the durable truth.
            if reported < log.start_lsn:
                raise ReplicationError(
                    f"replica {sub.replica.name!r} resumes at "
                    f"{format_lsn(reported)}, below the primary's "
                    f"retained log ({format_lsn(log.start_lsn)})"
                )
            sub.cursor = reported
            self.stats.resyncs += 1
        shipped = 0
        while sub.cursor < target:
            end = log.record_aligned_end(sub.cursor, self.batch_bytes, target)
            if end <= sub.cursor:
                break
            payload = log.read_bytes(sub.cursor, end)
            blob = LogFrame(sub.cursor, payload, now).encode()
            if chaos is not None:
                chaos.hit("repl.ship.send", target=sub.replica.name)
                blob = chaos.hit(
                    "repl.stream.frame", target=sub.replica.name, payload=blob
                )
            sub.replica.receive(blob)
            # Only now is the frame durably landed; a failure above left
            # the cursor put, so the retry resends the exact same range.
            sub.cursor = end
            self.stats.frames_shipped += 1
            self.stats.bytes_shipped += len(payload)
            shipped += len(payload)
        return shipped

    def _note_failure(self, sub: _Subscription, err, now: float) -> None:
        sub.consecutive_errors += 1
        sub.last_error = f"{type(err).__name__}: {err}"
        sub.next_retry_s = now + self.retry.delay(sub.consecutive_errors)
        self.stats.send_errors += 1
        if self._registry is not None:
            # Stop reporting progress: the recorded series goes stale and
            # the repl.ship_stall absence rule picks the outage up.
            self._registry.remove(
                f"repl.ship.{sub.replica.name}.progress_t"
            )

    def _note_progress(self, sub: _Subscription, now: float) -> None:
        if sub.consecutive_errors:
            self.stats.retries += 1
            sub.consecutive_errors = 0
            sub.last_error = None
            sub.next_retry_s = 0.0
            self._install_progress_gauge(sub.replica.name, sub)
        sub.last_progress_s = now

    def max_lag_bytes(self) -> int:
        """Largest unshipped byte count across subscribers."""
        target = self.db.log.durable_lsn
        if not self._subs:
            return 0
        return max(target - sub.cursor for sub in self._subs.values())

    def remove_metrics(self) -> None:
        """Unregister every per-subscriber gauge (shipper teardown)."""
        if self._registry is None:
            return
        for name in self._subs:
            self._registry.remove_prefix(f"repl.ship.{name}.")

    def __repr__(self) -> str:
        return (
            f"LogShipper({self.db.name!r}, subscribers={len(self._subs)}, "
            f"shipped={self.stats.bytes_shipped}B)"
        )
