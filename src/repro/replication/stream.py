"""The log-shipping wire format: framed, checksummed batches of log bytes.

A frame carries a contiguous, record-aligned byte range of the primary's
log, stamped with the primary's wall clock at ship time (the anchor a
delayed-apply replica holds batches against). The CRC covers header and
payload, so a corrupt or torn frame is rejected before any byte lands on
the standby's log.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import ReplicationError

#: Magic bytes opening every shipped frame.
FRAME_MAGIC = b"REPROSHP"

#: magic, start_lsn, ship_wall, payload length, crc32.
_FRAME_HEADER = struct.Struct("<8sQdII")
FRAME_HEADER_SIZE = _FRAME_HEADER.size


@dataclass(frozen=True)
class LogFrame:
    """One shipped batch: log bytes ``[start_lsn, end_lsn)``."""

    start_lsn: int
    payload: bytes
    ship_wall: float

    @property
    def end_lsn(self) -> int:
        return self.start_lsn + len(self.payload)

    def encode(self) -> bytes:
        header = _FRAME_HEADER.pack(
            FRAME_MAGIC, self.start_lsn, self.ship_wall, len(self.payload), 0
        )
        crc = zlib.crc32(header) & 0xFFFFFFFF
        crc = zlib.crc32(self.payload, crc) & 0xFFFFFFFF
        return header[:-4] + crc.to_bytes(4, "little") + self.payload

    @classmethod
    def decode(cls, blob: bytes) -> "LogFrame":
        if len(blob) < FRAME_HEADER_SIZE:
            raise ReplicationError(
                f"frame truncated: {len(blob)} bytes < header size "
                f"{FRAME_HEADER_SIZE}"
            )
        magic, start_lsn, ship_wall, length, crc = _FRAME_HEADER.unpack_from(blob, 0)
        if magic != FRAME_MAGIC:
            raise ReplicationError(f"bad frame magic {magic!r}")
        if len(blob) != FRAME_HEADER_SIZE + length:
            raise ReplicationError(
                f"frame length mismatch: header claims {length} payload "
                f"bytes, got {len(blob) - FRAME_HEADER_SIZE}"
            )
        check = blob[: FRAME_HEADER_SIZE - 4] + b"\0\0\0\0" + blob[FRAME_HEADER_SIZE:]
        if zlib.crc32(check) & 0xFFFFFFFF != crc:
            raise ReplicationError(
                f"frame CRC mismatch for LSNs starting at {start_lsn:#x}"
            )
        return cls(start_lsn, bytes(blob[FRAME_HEADER_SIZE:]), ship_wall)
