"""Benchmark harness: experiment builders and result reporting.

Each file under ``benchmarks/`` regenerates one table or figure of the
paper's section 6; the heavy lifting (environment construction, workload
runs, the shared time-travel experiment behind Figures 7-11) lives here.
"""

from repro.bench.harness import (
    TimeTravelPoint,
    build_tpcc,
    make_perf_env,
    run_time_travel_experiment,
    time_travel_results,
)
from repro.bench.reporting import ReportTable, attach_metrics, save_results

__all__ = [
    "make_perf_env",
    "build_tpcc",
    "run_time_travel_experiment",
    "time_travel_results",
    "TimeTravelPoint",
    "ReportTable",
    "attach_metrics",
    "save_results",
]
