"""Benchmark result formatting and persistence.

Benches print paper-style series tables and save raw numbers as JSON under
``bench_results/`` so EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..", "bench_results")


class ReportTable:
    """A small fixed-width table renderer for bench output."""

    def __init__(self, title: str, columns: list[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add(self, *values) -> None:
        formatted = []
        for value in values:
            if isinstance(value, float):
                if value == 0:
                    formatted.append("0")
                elif abs(value) >= 100:
                    formatted.append(f"{value:,.0f}")
                elif abs(value) >= 1:
                    formatted.append(f"{value:,.2f}")
                else:
                    formatted.append(f"{value:.4f}")
            else:
                formatted.append(str(value))
        self.rows.append(formatted)

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def attach_metrics(payload: dict, env, like: str | None = None) -> dict:
    """Embed the canonical metrics snapshot in a bench payload.

    Every bench that saves results also ships ``payload["metrics"]`` —
    the same ``repro.obs.metrics/v1`` document ``SHOW METRICS`` and
    ``python -m repro.tools.obs`` export — so the CI perf gate can read
    engine-internal rates without re-deriving them from ad-hoc fields.
    """
    payload["metrics"] = env.metrics.snapshot(like)
    return payload


def save_results(name: str, payload: dict) -> str:
    """Persist a bench's raw numbers as JSON; returns the path."""
    directory = os.path.abspath(RESULTS_DIR)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path
