"""Shared experiment machinery for the section 6 reproduction.

The central piece is :func:`run_time_travel_experiment`, which powers
Figures 7, 8, 9, 10 and 11 from one workload run: load TPC-C (plus cold
filler pages so the database has a realistic size for the restore
baseline), take a full backup, run the workload for a simulated window
with 30-second checkpoints, then — for increasing distances back in time —
measure as-of snapshot creation, the as-of stock-level query, the
restore-based alternative, and the undo log I/O counts.

All timings are simulated seconds produced by the device/cost models
(section 4 of DESIGN.md documents this substitution for the paper's
physical testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backup import restore_point_in_time, take_full_backup
from repro.config import CostModel, DatabaseConfig, SimEnv
from repro.engine.engine import Engine
from repro.sim.device import SAS_10K, SLC_SSD, DeviceProfile
from repro.workload import TpccDriver, TpccScale, add_filler_table, load_tpcc
from repro.workload.tpcc_txns import stock_level

#: Default workload scale for performance benches. Four warehouses spread
#: the update stream across pages the way the paper's 800 warehouses do —
#: a single queried district then owns a realistic share of the log.
BENCH_SCALE = TpccScale(
    warehouses=4,
    districts_per_warehouse=4,
    customers_per_district=20,
    items=150,
)

#: Cold pages inflating the database for the restore baseline
#: (the paper's 40 GB database, scaled).
FILLER_PAGES = 24000

#: Per-transaction pacing so "minutes back in time" maps to a controlled
#: number of page modifications (the paper's axis is wall-clock minutes).
THINK_TIME_S = 0.2

PROFILES: dict[str, DeviceProfile] = {"ssd": SLC_SSD, "sas": SAS_10K}


def make_perf_env(data_profile: DeviceProfile, log_profile: DeviceProfile | None = None) -> SimEnv:
    """A SimEnv with real device timing and the default CPU cost model."""
    return SimEnv(
        data_profile=data_profile,
        log_profile=log_profile or data_profile,
        cost=CostModel(),
    )


def build_tpcc(
    env: SimEnv,
    scale: TpccScale = BENCH_SCALE,
    *,
    filler_pages: int = 0,
    config: DatabaseConfig | None = None,
    name: str = "tpcc",
    seed: int = 7,
    version_store_budget: int | None = None,
):
    """(engine, db, driver) with TPC-C loaded and optionally inflated.

    ``version_store_budget=0`` disables the cross-snapshot page version
    store — the figure benches pass it to reproduce the *paper's*
    baseline undo costs; ``bench_version_store.py`` measures the store.
    """
    engine = Engine(env, version_store_budget=version_store_budget)
    if config is None:
        # Server-class log cache (the paper's testbed had 24 GB RAM):
        # 4 MB of cached log blocks for the undo path.
        config = DatabaseConfig(log_cache_blocks=64)
    db = engine.create_database(name, config)
    load_tpcc(db, scale, seed=seed)
    if filler_pages:
        add_filler_table(db, filler_pages)
    driver = TpccDriver(db, scale, seed=seed, think_time_s=THINK_TIME_S)
    return engine, db, driver


@dataclass
class TimeTravelPoint:
    """Measurements for one back-in-time distance."""

    minutes_back: float
    asof_create_s: float
    asof_query_s: float
    restore_s: float
    undo_ios: int
    undo_records: int
    pages_prepared: int
    sparse_bytes: int

    @property
    def asof_total_s(self) -> float:
        return self.asof_create_s + self.asof_query_s


@dataclass
class TimeTravelResult:
    """Full outcome of the shared Figures 7-11 experiment."""

    profile: str
    db_bytes: int
    log_bytes: int
    workload_minutes: float
    tpm: float
    points: list[TimeTravelPoint] = field(default_factory=list)
    #: Canonical ``repro.obs.metrics/v1`` snapshot taken after the sweep.
    metrics: dict = field(default_factory=dict)


def run_time_travel_experiment(
    profile_name: str,
    *,
    workload_minutes: float = 8.0,
    distances_minutes=(1.0, 2.0, 4.0, 6.0, 8.0),
    filler_pages: int = FILLER_PAGES,
    scale: TpccScale = BENCH_SCALE,
) -> TimeTravelResult:
    """Run the shared experiment on the given media profile."""
    profile = PROFILES[profile_name]
    env = make_perf_env(profile)
    # Store disabled: Figures 7-11 measure per-snapshot chain-walk costs
    # (via the batched/coalesced walk the engine now always uses), not
    # the cross-snapshot reuse layered on top.
    engine, db, driver = build_tpcc(
        env, scale, filler_pages=filler_pages, version_store_budget=0
    )
    backup = take_full_backup(db)

    start_wall = env.clock.now()
    run_result = driver.run_for(workload_minutes * 60.0)
    end_wall = env.clock.now()

    outcome = TimeTravelResult(
        profile=profile_name,
        db_bytes=db.file_manager.page_count * db.config.page_size,
        log_bytes=db.log.total_bytes(),
        workload_minutes=(end_wall - start_wall) / 60.0,
        tpm=run_result.tpm,
    )
    per_minute = sorted(set(distances_minutes))

    for distance in per_minute:
        # Keep the primary busy between measurements so each snapshot
        # creation finds a realistically dirty buffer pool and a fresh log
        # tail — the paper's system never sits quiesced.
        driver.run_for(15.0)
        now = env.clock.now()
        target_wall = now - distance * 60.0
        if target_wall <= start_wall:
            continue
        snap_name = f"asof_{profile_name}_{distance}"
        before = env.stats.snapshot()
        t0 = env.clock.now()
        snap = engine.create_asof_snapshot(db.name, snap_name, target_wall)
        create_s = env.clock.now() - t0
        t1 = env.clock.now()
        stock_level(snap, w_id=1, d_id=1, threshold=60)
        query_s = env.clock.now() - t1
        spent = env.stats.delta(before)
        sparse_bytes = snap.side_file_bytes()
        engine.drop_snapshot(snap_name)

        t2 = env.clock.now()
        restored = restore_point_in_time(
            engine, backup, db, target_wall, f"restored_{profile_name}_{distance}"
        )
        stock_level(restored, w_id=1, d_id=1, threshold=60)
        restore_s = env.clock.now() - t2
        engine.drop_database(restored.name)

        outcome.points.append(
            TimeTravelPoint(
                minutes_back=distance,
                asof_create_s=create_s,
                asof_query_s=query_s,
                restore_s=restore_s,
                undo_ios=spent.undo_log_reads + spent.undo_header_reads,
                undo_records=spent.undo_records_applied,
                pages_prepared=spent.pages_prepared_asof,
                sparse_bytes=sparse_bytes,
            )
        )
    outcome.metrics = env.metrics.snapshot()
    return outcome


@dataclass
class LoggingSweepPoint:
    """One configuration of the Figures 5/6 logging sweep."""

    label: str
    log_bytes: int
    log_records: int
    image_bytes: int
    preformat_bytes: int
    clr_undo_bytes: int
    tpm: float
    real_tps: float
    #: Log-device utilization over the run (the paper's "sustainable
    #: sequential IO" claim holds while this stays below 1.0).
    log_utilization: float


def run_logging_sweep(
    image_intervals=(0, 16, 8, 4, 2, 1),
    *,
    transactions: int = 1200,
    scale: TpccScale = BENCH_SCALE,
) -> list[LoggingSweepPoint]:
    """The Figures 5/6 sweep: baseline (extensions off) plus the as-of
    logging extensions at several full-page-image intervals N.

    Each configuration runs the same transaction count on identical seeds;
    log volume is measured over the workload window only (load excluded)
    and throughput comes from the cost model with no think time, so the
    per-record log-manager cost is the differentiator — the paper's
    observation that record *count*, not size, is what throughput feels.
    """
    points: list[LoggingSweepPoint] = []
    variants = [("baseline (no as-of logging)", None)]
    for interval in image_intervals:
        label = "extensions, no images" if interval == 0 else f"extensions, N={interval}"
        variants.append((label, interval))
    for label, interval in variants:
        if interval is None:
            config = DatabaseConfig().with_extensions(enabled=False)
        else:
            config = DatabaseConfig().with_extensions(page_image_interval=interval)
        env = make_perf_env(SLC_SSD)
        engine = Engine(env)
        db = engine.create_database("sweep", config)
        load_tpcc(db, scale, seed=7)
        driver = TpccDriver(db, scale, seed=7)
        before_bytes = db.log.total_bytes()
        before = env.stats.snapshot()
        busy_before = env.log_device.busy_seconds
        result = driver.run_transactions(transactions)
        spent = env.stats.delta(before)
        busy = env.log_device.busy_seconds - busy_before
        utilization = busy / result.sim_seconds if result.sim_seconds else 0.0
        points.append(
            LoggingSweepPoint(
                label=label,
                log_bytes=db.log.total_bytes() - before_bytes,
                log_records=spent.log_records,
                image_bytes=spent.page_image_bytes,
                preformat_bytes=spent.preformat_bytes,
                clr_undo_bytes=spent.clr_undo_bytes,
                tpm=result.tpm,
                real_tps=result.real_tps,
                log_utilization=utilization,
            )
        )
    return points


_CACHE: dict[str, TimeTravelResult] = {}
_SWEEP_CACHE: list[LoggingSweepPoint] | None = None


def logging_sweep_results() -> list[LoggingSweepPoint]:
    """Memoized Figures 5/6 sweep (both benches read the same run)."""
    global _SWEEP_CACHE
    if _SWEEP_CACHE is None:
        _SWEEP_CACHE = run_logging_sweep()
    return _SWEEP_CACHE


def time_travel_results(profile_name: str) -> TimeTravelResult:
    """Memoized shared experiment (Figures 7-11 read the same run)."""
    if profile_name not in _CACHE:
        _CACHE[profile_name] = run_time_travel_experiment(profile_name)
    return _CACHE[profile_name]
