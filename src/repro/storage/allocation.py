"""Allocation maps: logged page allocation with ever-allocated tracking.

Allocation state lives in ordinary pages (bitmap bodies) whose updates are
logged like any other page modification — the paper relies on this so that
as-of snapshots unwind allocation metadata with the same physical undo
mechanism as data (section 3).

Geometry: map pages sit at fixed ids — page 1, then every
``pages_per_map + 1`` pages — and each covers the pages immediately after
it. Page 0 is the boot page, outside any map. Each covered page has two
bits: *allocated* and *ever-allocated*; the latter is the section 4.2
metadata that tells re-allocation (preformat required) apart from first
allocation (nothing worth preserving).
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.storage.buffer import BufferPool
from repro.storage.page import PageType, alloc_bitmap_geometry, ever_bit_offset
from repro.wal.apply import PageModifier
from repro.wal.records import AllocPageRecord, DeallocPageRecord

#: Page id of the boot page (never allocatable).
BOOT_PAGE_ID = 0
#: Page id of the first allocation-map page.
FIRST_MAP_PAGE_ID = 1


class AllocationManager:
    """Allocator over the map pages of one database."""

    def __init__(
        self,
        buffer: BufferPool,
        modifier: PageModifier,
        system_txn_factory,
    ) -> None:
        self.buffer = buffer
        self.modifier = modifier
        #: Callable running ``fn(txn)`` inside a committed system
        #: transaction; map-page formatting must survive user rollbacks.
        self._system_txn = system_txn_factory
        self.pages_per_map = alloc_bitmap_geometry(buffer.file_manager.page_size)
        self._ever_offset = ever_bit_offset(buffer.file_manager.page_size)
        #: Per-map search hints (soft state, safe to reset at any time).
        self._hints: dict[int, int] = {}

    def clear_hints(self) -> None:
        """Drop the soft allocation-search hints (crash simulation)."""
        self._hints.clear()

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    def map_page_for(self, page_id: int) -> tuple[int, int]:
        """(map page id, local bit index) covering ``page_id``."""
        if page_id <= BOOT_PAGE_ID:
            raise AllocationError(f"page {page_id} is not allocatable")
        stride = self.pages_per_map + 1
        group = (page_id - FIRST_MAP_PAGE_ID) // stride
        map_pid = FIRST_MAP_PAGE_ID + group * stride
        local = page_id - map_pid - 1
        if local < 0:
            raise AllocationError(f"page {page_id} is an allocation map page")
        return map_pid, local

    def is_map_page(self, page_id: int) -> bool:
        stride = self.pages_per_map + 1
        return (
            page_id >= FIRST_MAP_PAGE_ID
            and (page_id - FIRST_MAP_PAGE_ID) % stride == 0
        )

    # ------------------------------------------------------------------
    # Map page lifecycle
    # ------------------------------------------------------------------

    def _ensure_map(self, map_pid: int) -> None:
        """Format a map page on first use (inside a system transaction)."""
        with self.buffer.fetch(map_pid) as guard:
            if guard.page.is_formatted():
                return

        def _format(txn) -> None:
            with self.buffer.fetch(map_pid) as inner:
                self.modifier.format_page(
                    txn,
                    inner,
                    PageType.ALLOC_MAP,
                    was_ever_allocated=False,
                )

        self._system_txn(_format)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, txn, hint_page: int | None = None) -> tuple[int, bool]:
        """Allocate a free page under ``txn``.

        Returns ``(page_id, was_ever_allocated)`` — the caller must log a
        preformat record before formatting when the second element is True
        (done by :meth:`PageModifier.format_page`).
        """
        stride = self.pages_per_map + 1
        group = 0
        if hint_page is not None and hint_page > BOOT_PAGE_ID:
            group = (hint_page - FIRST_MAP_PAGE_ID) // stride
        while True:
            map_pid = FIRST_MAP_PAGE_ID + group * stride
            self._ensure_map(map_pid)
            local = self._find_free_local(map_pid)
            if local is not None:
                return self._claim(txn, map_pid, local)
            group += 1

    def _find_free_local(self, map_pid: int) -> int | None:
        start = self._hints.get(map_pid, 0)
        with self.buffer.fetch(map_pid) as guard:
            page = guard.page
            for local in range(start, self.pages_per_map):
                if not page.get_body_bit(local):
                    return local
            # The hint may have skipped freed bits; rescan once from zero.
            if start > 0:
                for local in range(0, start):
                    if not page.get_body_bit(local):
                        return local
        return None

    def _claim(self, txn, map_pid: int, local: int) -> tuple[int, bool]:
        target = map_pid + 1 + local
        with self.buffer.fetch(map_pid) as guard:
            page = guard.page
            if page.get_body_bit(local):
                raise AllocationError(f"page {target} already allocated")
            was_ever = page.get_body_bit(self._ever_offset + local)
            rec = AllocPageRecord(
                target_page=target,
                was_ever_allocated=was_ever,
                page_id=map_pid,
            )
            self.modifier.apply(txn, guard, rec)
        self._hints[map_pid] = local + 1
        return target, was_ever

    def deallocate(self, txn, page_id: int) -> None:
        """Free a page; its content stays on disk for preformat to find."""
        map_pid, local = self.map_page_for(page_id)
        with self.buffer.fetch(map_pid) as guard:
            if not guard.page.get_body_bit(local):
                raise AllocationError(f"page {page_id} is not allocated")
            rec = DeallocPageRecord(target_page=page_id, page_id=map_pid)
            self.modifier.apply(txn, guard, rec)
        hint = self._hints.get(map_pid)
        if hint is None or local < hint:
            self._hints[map_pid] = local

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def is_allocated(self, page_id: int) -> bool:
        map_pid, local = self.map_page_for(page_id)
        with self.buffer.fetch(map_pid) as guard:
            if not guard.page.is_formatted():
                return False
            return guard.page.get_body_bit(local)

    def was_ever_allocated(self, page_id: int) -> bool:
        map_pid, local = self.map_page_for(page_id)
        with self.buffer.fetch(map_pid) as guard:
            if not guard.page.is_formatted():
                return False
            return guard.page.get_body_bit(self._ever_offset + local)

    def allocated_page_ids(self) -> list[int]:
        """Every allocated page id, plus boot and formatted map pages.

        This is the page set a full backup copies.
        """
        pages = [BOOT_PAGE_ID]
        stride = self.pages_per_map + 1
        group = 0
        while True:
            map_pid = FIRST_MAP_PAGE_ID + group * stride
            with self.buffer.fetch(map_pid) as guard:
                page = guard.page
                if not page.is_formatted():
                    break
                pages.append(map_pid)
                for local in range(self.pages_per_map):
                    if page.get_body_bit(local):
                        pages.append(map_pid + 1 + local)
            group += 1
        return pages
