"""Row serialization: schema-driven encoding of tuples to page payloads.

Layout: a null bitmap (one bit per column, set = NULL), followed by the
non-null column values in schema order. Fixed-width types are stored
inline; variable-length types carry a u16 length prefix.

The same codec also encodes bare key tuples (for B-tree interior entries
and lock keys) via :class:`KeyCodec`, which treats the key columns as a
mini-schema with no nullable columns.
"""

from __future__ import annotations

import struct

from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.errors import StorageError

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U16 = struct.Struct("<H")


def _encode_value(ctype: ColumnType, value, out: bytearray) -> None:
    if ctype is ColumnType.INT:
        out += _I64.pack(value)
    elif ctype is ColumnType.FLOAT:
        out += _F64.pack(float(value))
    elif ctype is ColumnType.BOOL:
        out.append(1 if value else 0)
    elif ctype is ColumnType.STR:
        raw = value.encode("utf-8")
        out += _U16.pack(len(raw))
        out += raw
    elif ctype is ColumnType.BYTES:
        out += _U16.pack(len(value))
        out += value
    else:  # pragma: no cover - exhaustive over ColumnType
        raise StorageError(f"unsupported column type {ctype}")


def _decode_value(ctype: ColumnType, data: bytes, pos: int):
    if ctype is ColumnType.INT:
        return _I64.unpack_from(data, pos)[0], pos + 8
    if ctype is ColumnType.FLOAT:
        return _F64.unpack_from(data, pos)[0], pos + 8
    if ctype is ColumnType.BOOL:
        return bool(data[pos]), pos + 1
    if ctype is ColumnType.STR:
        (length,) = _U16.unpack_from(data, pos)
        start = pos + 2
        return data[start : start + length].decode("utf-8"), start + length
    if ctype is ColumnType.BYTES:
        (length,) = _U16.unpack_from(data, pos)
        start = pos + 2
        return bytes(data[start : start + length]), start + length
    raise StorageError(f"unsupported column type {ctype}")  # pragma: no cover


class RowCodec:
    """Encode/decode full rows for one :class:`TableSchema`."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._types = tuple(col.ctype for col in schema.columns)
        self._bitmap_len = (len(self._types) + 7) // 8

    def encode(self, row: tuple) -> bytes:
        """Serialize a validated row tuple."""
        self.schema.check_row(row)
        bitmap = bytearray(self._bitmap_len)
        body = bytearray()
        for index, (ctype, value) in enumerate(zip(self._types, row, strict=True)):
            if value is None:
                bitmap[index // 8] |= 1 << (index % 8)
            else:
                _encode_value(ctype, value, body)
        return bytes(bitmap) + bytes(body)

    def decode(self, data: bytes) -> tuple:
        """Deserialize a payload produced by :meth:`encode`."""
        if len(data) < self._bitmap_len:
            raise StorageError(
                f"row for {self.schema.name!r}: payload shorter than null bitmap"
            )
        bitmap = data[: self._bitmap_len]
        pos = self._bitmap_len
        values = []
        for index, ctype in enumerate(self._types):
            if bitmap[index // 8] & (1 << (index % 8)):
                values.append(None)
            else:
                value, pos = _decode_value(ctype, data, pos)
                values.append(value)
        return tuple(values)

    def decode_key(self, data: bytes) -> tuple:
        """Extract only the primary-key tuple from an encoded row.

        Decodes the full row (values are cheap at our scale) and projects
        the key positions; kept as a named operation so the B-tree reads
        declare intent.
        """
        row = self.decode(data)
        return self.schema.key_of(row)


class KeyCodec:
    """Encode/decode bare key tuples given the key columns' types.

    Used for B-tree separator keys and for the lock keys embedded in DML
    log records (which as-of snapshot recovery re-acquires during its redo
    pass).
    """

    def __init__(self, ctypes) -> None:
        self.ctypes = tuple(ctypes)

    @classmethod
    def for_schema(cls, schema: TableSchema) -> "KeyCodec":
        return cls(
            schema.columns[pos].ctype for pos in schema.key_positions
        )

    def encode(self, key: tuple) -> bytes:
        if len(key) != len(self.ctypes):
            raise StorageError(
                f"key arity mismatch: expected {len(self.ctypes)}, got {len(key)}"
            )
        out = bytearray()
        for ctype, value in zip(self.ctypes, key, strict=True):
            if value is None:
                raise StorageError("key values cannot be NULL")
            _encode_value(ctype, value, out)
        return bytes(out)

    def decode(self, data: bytes) -> tuple:
        pos = 0
        values = []
        for ctype in self.ctypes:
            value, pos = _decode_value(ctype, data, pos)
            values.append(value)
        return tuple(values)


def column_spec_from_strings(name: str, type_name: str, max_len: int, nullable: bool) -> Column:
    """Rebuild a :class:`Column` from catalog-row primitives."""
    return Column(
        name=name,
        ctype=ColumnType(type_name),
        nullable=nullable,
        max_len=max_len,
    )
