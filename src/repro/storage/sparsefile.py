"""Sparse side files backing database snapshots.

Models the NTFS sparse files of the paper (sections 2.2 and 5): a
page-granular side store that holds, for a snapshot, the pages that have
been materialized for it. For regular (copy-on-write) snapshots the pages
are pre-images pushed by the primary; for as-of snapshots they are cached
copies of pages already undone to the SplitLSN.

Only regions actually written consume space — :meth:`bytes_used` is what
the paper's space-efficiency argument measures.
"""

from __future__ import annotations

from repro.errors import StorageError
from repro.sim.device import SimDevice
from repro.sim.iostats import IoStats


class SparseFile:
    """A page-indexed sparse store charged against a device."""

    def __init__(
        self,
        page_size: int,
        device: SimDevice | None = None,
        stats: IoStats | None = None,
    ) -> None:
        self.page_size = page_size
        self.device = device
        self.stats = stats
        self._pages: dict[int, bytes] = {}

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def read(self, page_id: int) -> bytearray:
        """Read a materialized page; raises if the page was never pushed."""
        data = self._pages.get(page_id)
        if data is None:
            raise StorageError(f"sparse file holds no page {page_id}")
        if self.device is not None:
            self.device.read_random(self.page_size)
        if self.stats is not None:
            self.stats.sparse_reads += 1
        return bytearray(data)

    def write(self, page_id: int, data: bytes) -> None:
        """Materialize (or overwrite) a page in the side file."""
        if len(data) != self.page_size:
            raise StorageError(
                f"sparse write of {len(data)} bytes (page size {self.page_size})"
            )
        new_page = page_id not in self._pages
        self._pages[page_id] = bytes(data)
        if self.device is not None:
            self.device.write_random(self.page_size)
        if self.stats is not None:
            self.stats.sparse_writes += 1
            if new_page:
                self.stats.sparse_bytes += self.page_size

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def bytes_used(self) -> int:
        """Actual space the side file consumes (sparse: only written pages)."""
        return len(self._pages) * self.page_size

    def page_ids(self):
        """Iterate the ids of materialized pages."""
        return iter(sorted(self._pages))

    def clear(self) -> None:
        self._pages.clear()
