"""Slotted data pages.

Every page starts with a fixed header whose two LSN fields drive the paper's
mechanism:

* ``page_lsn`` — LSN of the last log record that modified the page. Log
  records carry ``prev_page_lsn`` (the page's LSN before the modification),
  which back-links all modifications of a page into a chain that
  ``PreparePageAsOf`` walks.
* ``last_image_lsn`` — LSN of the most recent full page image logged for
  this page (section 6.1's optional every-Nth-modification images). Image
  records form their own back-chain so undo can skip log regions.

The record area grows up from the header; the slot directory grows down
from the page end (two bytes per slot holding the record offset). Record
payloads are opaque to this layer: the B-tree keeps slots in key order, the
heap appends. Modifications are *physiological* — logged as logical
operations within an identified page (insert at slot, delete at slot) — so
redo/undo replay operations rather than bytes, and internal compaction
needs no logging.
"""

from __future__ import annotations

import enum
import struct

from repro.errors import PageFullError, StorageError

#: Slot directory entry: u16 record offset (0 = vacant, offsets are always
#: >= HEADER_SIZE for live records).
_SLOT = struct.Struct("<H")
#: Record framing: u16 payload length prefix at the record offset.
_RECLEN = struct.Struct("<H")

_HEADER = struct.Struct(
    "<HBBIQQIHBBIIHHHHI4s"
    # magic, page_type, flags, page_id, page_lsn, last_image_lsn,
    # object_id, index_id, level, pad, prev_page, next_page,
    # slot_count, free_lower, free_upper, mods_since_image, checksum, reserved
)

HEADER_SIZE = _HEADER.size  # 56 bytes
PAGE_MAGIC = 0xD81A
NULL_PAGE = 0


class PageType(enum.IntEnum):
    """Discriminates how a page's body is interpreted."""

    UNFORMATTED = 0
    BOOT = 1
    ALLOC_MAP = 2
    HEAP = 3
    BTREE = 4


class Page:
    """A mutable view over one page-sized ``bytearray``.

    The constructor wraps existing bytes without validation; use
    :meth:`format` to initialize a fresh page and :meth:`is_formatted` to
    probe whether bytes hold a real page.
    """

    __slots__ = ("data",)

    def __init__(self, data: bytearray) -> None:
        if not isinstance(data, bytearray):
            data = bytearray(data)
        self.data = data

    # ------------------------------------------------------------------
    # Header accessors
    # ------------------------------------------------------------------

    def _get(self, index: int):
        return _HEADER.unpack_from(self.data, 0)[index]

    def _set(self, index: int, value) -> None:
        fields = list(_HEADER.unpack_from(self.data, 0))
        fields[index] = value
        _HEADER.pack_into(self.data, 0, *fields)

    @property
    def page_size(self) -> int:
        return len(self.data)

    @property
    def magic(self) -> int:
        return self._get(0)

    @property
    def page_type(self) -> PageType:
        return PageType(self._get(1))

    @property
    def flags(self) -> int:
        return self._get(2)

    @flags.setter
    def flags(self, value: int) -> None:
        self._set(2, value)

    @property
    def page_id(self) -> int:
        return self._get(3)

    @property
    def page_lsn(self) -> int:
        return self._get(4)

    @page_lsn.setter
    def page_lsn(self, lsn: int) -> None:
        self._set(4, lsn)

    @property
    def last_image_lsn(self) -> int:
        return self._get(5)

    @last_image_lsn.setter
    def last_image_lsn(self, lsn: int) -> None:
        self._set(5, lsn)

    @property
    def object_id(self) -> int:
        return self._get(6)

    @property
    def index_id(self) -> int:
        return self._get(7)

    @property
    def level(self) -> int:
        """B-tree level; 0 means leaf."""
        return self._get(8)

    @property
    def prev_page(self) -> int:
        return self._get(10)

    @prev_page.setter
    def prev_page(self, pid: int) -> None:
        self._set(10, pid)

    @property
    def next_page(self) -> int:
        return self._get(11)

    @next_page.setter
    def next_page(self, pid: int) -> None:
        self._set(11, pid)

    @property
    def slot_count(self) -> int:
        return self._get(12)

    @property
    def free_lower(self) -> int:
        return self._get(13)

    @property
    def free_upper(self) -> int:
        return self._get(14)

    @property
    def mods_since_image(self) -> int:
        return self._get(15)

    @mods_since_image.setter
    def mods_since_image(self, count: int) -> None:
        self._set(15, count)

    @property
    def checksum(self) -> int:
        return self._get(16)

    @checksum.setter
    def checksum(self, value: int) -> None:
        self._set(16, value)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def format(
        self,
        page_id: int,
        page_type: PageType,
        object_id: int = 0,
        index_id: int = 0,
        level: int = 0,
        prev_page: int = NULL_PAGE,
        next_page: int = NULL_PAGE,
    ) -> None:
        """Initialize this page as empty with the given identity.

        Zeroes the whole body: a formatted page has no trace of its prior
        incarnation (the paper's preformat record exists precisely to save
        that prior content in the log).
        """
        size = len(self.data)
        self.data[:] = bytes(size)
        _HEADER.pack_into(
            self.data,
            0,
            PAGE_MAGIC,
            int(page_type),
            0,
            page_id,
            0,
            0,
            object_id,
            index_id,
            level,
            0,
            prev_page,
            next_page,
            0,
            HEADER_SIZE,
            size,
            0,
            0,
            b"\0" * 4,
        )

    def deformat(self) -> None:
        """Return the page to the unformatted (all-zero) state.

        This is the physical undo of a first-time format: before its first
        allocation the page held nothing.
        """
        self.data[:] = bytes(len(self.data))

    def is_formatted(self) -> bool:
        return self.magic == PAGE_MAGIC

    def clone_bytes(self) -> bytes:
        """An immutable copy of the current page content."""
        return bytes(self.data)

    def restore(self, image: bytes) -> None:
        """Overwrite the page with a full image (page-image / preformat undo)."""
        if len(image) != len(self.data):
            raise StorageError(
                f"image size {len(image)} != page size {len(self.data)}"
            )
        self.data[:] = image

    # ------------------------------------------------------------------
    # Slot directory
    # ------------------------------------------------------------------

    def _slot_pos(self, slot: int) -> int:
        return len(self.data) - _SLOT.size * (slot + 1)

    def _slot_offset(self, slot: int) -> int:
        return _SLOT.unpack_from(self.data, self._slot_pos(slot))[0]

    def _set_slot_offset(self, slot: int, offset: int) -> None:
        _SLOT.pack_into(self.data, self._slot_pos(slot), offset)

    def _check_slot(self, slot: int, *, insert: bool = False) -> None:
        limit = self.slot_count + (1 if insert else 0)
        if not 0 <= slot < limit:
            raise StorageError(
                f"slot {slot} out of range (page {self.page_id}, "
                f"{self.slot_count} slots)"
            )

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def contiguous_free(self) -> int:
        """Bytes available between the record area and the slot directory."""
        return self.free_upper - self.free_lower

    def live_bytes(self) -> int:
        """Bytes occupied by live records (length prefixes included)."""
        total = 0
        for slot in range(self.slot_count):
            offset = self._slot_offset(slot)
            total += _RECLEN.size + _RECLEN.unpack_from(self.data, offset)[0]
        return total

    def total_free(self) -> int:
        """Free bytes counting reclaimable garbage (what compaction yields)."""
        used_by_slots = _SLOT.size * self.slot_count
        return len(self.data) - HEADER_SIZE - used_by_slots - self.live_bytes()

    def space_needed(self, payload_len: int) -> int:
        """Bytes an insert of ``payload_len`` consumes (record + new slot)."""
        return _RECLEN.size + payload_len + _SLOT.size

    def max_payload(self) -> int:
        """Largest payload an empty page of this size can hold."""
        return len(self.data) - HEADER_SIZE - _RECLEN.size - _SLOT.size

    def has_room_for(self, payload_len: int) -> bool:
        return self.space_needed(payload_len) <= self.total_free()

    # ------------------------------------------------------------------
    # Record operations (physiological units that log records replay)
    # ------------------------------------------------------------------

    def record(self, slot: int) -> bytes:
        """The payload stored at ``slot``."""
        self._check_slot(slot)
        offset = self._slot_offset(slot)
        (length,) = _RECLEN.unpack_from(self.data, offset)
        start = offset + _RECLEN.size
        return bytes(self.data[start : start + length])

    def records(self):
        """Iterate payloads in slot order."""
        for slot in range(self.slot_count):
            yield self.record(slot)

    def insert_record(self, slot: int, payload: bytes) -> None:
        """Insert ``payload`` at position ``slot``, shifting later slots up.

        Compacts the page first when fragmented; raises
        :class:`PageFullError` when the record cannot fit even then.
        """
        self._check_slot(slot, insert=True)
        needed = self.space_needed(len(payload))
        if needed > self.contiguous_free():
            if needed > self.total_free():
                raise PageFullError(
                    f"page {self.page_id}: need {needed} bytes, "
                    f"have {self.total_free()}"
                )
            self.compact()
        offset = self.free_lower
        _RECLEN.pack_into(self.data, offset, len(payload))
        start = offset + _RECLEN.size
        self.data[start : start + len(payload)] = payload
        # Shift slot directory entries [slot, count) one position down
        # (toward lower addresses, since the directory grows downward).
        count = self.slot_count
        if slot < count:
            src_lo = self._slot_pos(count - 1)
            src_hi = self._slot_pos(slot) + _SLOT.size
            self.data[src_lo - _SLOT.size : src_hi - _SLOT.size] = self.data[
                src_lo:src_hi
            ]
        self._set_slot_offset(slot, offset)
        self._set(12, count + 1)
        self._set(13, offset + _RECLEN.size + len(payload))
        self._set(14, self._slot_pos(count))

    def delete_record(self, slot: int) -> bytes:
        """Remove the record at ``slot`` and return its payload.

        Later slots shift down by one; the record bytes become reclaimable
        garbage.
        """
        self._check_slot(slot)
        payload = self.record(slot)
        count = self.slot_count
        if slot < count - 1:
            src_lo = self._slot_pos(count - 1)
            src_hi = self._slot_pos(slot)
            self.data[src_lo + _SLOT.size : src_hi + _SLOT.size] = self.data[
                src_lo:src_hi
            ]
        self._set_slot_offset(count - 1, 0)
        self._set(12, count - 1)
        self._set(14, self._slot_pos(count - 2) if count > 1 else len(self.data))
        return payload

    def update_record(self, slot: int, payload: bytes) -> bytes:
        """Replace the record at ``slot``; returns the prior payload."""
        self._check_slot(slot)
        old = self.record(slot)
        offset = self._slot_offset(slot)
        if len(payload) <= len(old):
            _RECLEN.pack_into(self.data, offset, len(payload))
            start = offset + _RECLEN.size
            self.data[start : start + len(payload)] = payload
            return old
        # Grow: relocate to fresh space (compacting first if necessary).
        extra = _RECLEN.size + len(payload)
        if extra > self.contiguous_free():
            if len(payload) - len(old) > self.total_free():
                raise PageFullError(
                    f"page {self.page_id}: update needs {len(payload) - len(old)} "
                    f"more bytes, have {self.total_free()}"
                )
            # Temporarily drop the old record so compaction reclaims it.
            self._set_slot_offset(slot, 0)
            self.compact(skip_vacant=True)
        new_offset = self.free_lower
        _RECLEN.pack_into(self.data, new_offset, len(payload))
        start = new_offset + _RECLEN.size
        self.data[start : start + len(payload)] = payload
        self._set_slot_offset(slot, new_offset)
        self._set(13, new_offset + _RECLEN.size + len(payload))
        return old

    def compact(self, skip_vacant: bool = False) -> None:
        """Rewrite live records densely from the header boundary.

        Physiological logging makes compaction invisible to the log: the
        logical content (slot → payload) is unchanged.
        """
        live: list[tuple[int, bytes]] = []
        for slot in range(self.slot_count):
            offset = self._slot_offset(slot)
            if offset == 0:
                if skip_vacant:
                    continue
                raise StorageError(f"page {self.page_id}: vacant slot {slot}")
            (length,) = _RECLEN.unpack_from(self.data, offset)
            start = offset + _RECLEN.size
            live.append((slot, bytes(self.data[start : start + length])))
        write_at = HEADER_SIZE
        for slot, payload in live:
            _RECLEN.pack_into(self.data, write_at, len(payload))
            start = write_at + _RECLEN.size
            self.data[start : start + len(payload)] = payload
            self._set_slot_offset(slot, write_at)
            write_at = start + len(payload)
        self._set(13, write_at)

    # ------------------------------------------------------------------
    # Body bit access (allocation bitmaps)
    # ------------------------------------------------------------------

    def get_body_bit(self, bit_index: int) -> bool:
        """Read bit ``bit_index`` of the page body (after the header)."""
        byte = HEADER_SIZE + bit_index // 8
        if byte >= len(self.data):
            raise StorageError(f"bit {bit_index} beyond page body")
        return bool(self.data[byte] & (1 << (bit_index % 8)))

    def set_body_bit(self, bit_index: int, value: bool) -> None:
        """Write bit ``bit_index`` of the page body."""
        byte = HEADER_SIZE + bit_index // 8
        if byte >= len(self.data):
            raise StorageError(f"bit {bit_index} beyond page body")
        mask = 1 << (bit_index % 8)
        if value:
            self.data[byte] |= mask
        else:
            self.data[byte] &= ~mask & 0xFF

    def __repr__(self) -> str:
        if not self.is_formatted():
            return f"Page(unformatted, {len(self.data)} bytes)"
        return (
            f"Page(id={self.page_id}, type={self.page_type.name}, "
            f"lsn={self.page_lsn}, slots={self.slot_count}, "
            f"obj={self.object_id}, level={self.level})"
        )


def alloc_bitmap_geometry(page_size: int) -> int:
    """Number of pages one allocation-map page can track.

    The map body is split in two parallel bitmaps: *allocated* and
    *ever-allocated* (the paper's section 4.2 metadata distinguishing first
    allocation from re-allocation). Each tracked page therefore costs two
    bits, taken from separate halves of the body.
    """
    body_bits = (page_size - HEADER_SIZE) * 8
    return body_bits // 2


def ever_bit_offset(page_size: int) -> int:
    """Bit index where the ever-allocated bitmap begins."""
    return alloc_bitmap_geometry(page_size)
