"""Database data files and the file manager that prices their I/O.

A :class:`DataFile` is a dumb page store (read/write page bytes by id).
:class:`FileManager` layers policy on top: checksum stamping/verification
and simulated device charging. The buffer pool talks only to the file
manager, mirroring the paper's layering where "maintaining the
copy-on-write data and re-directing page reads ... are managed entirely in
the database file management subsystem".
"""

from __future__ import annotations

import os

from repro.errors import StorageError
from repro.sim import hostio
from repro.sim.device import SimDevice
from repro.sim.iostats import IoStats
from repro.storage.checksum import stamp_checksum, verify_and_clear_checksum


class DataFile:
    """Abstract page store."""

    page_size: int

    def read_page(self, page_id: int) -> bytearray:
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    @property
    def page_count(self) -> int:
        raise NotImplementedError

    def size_bytes(self) -> int:
        return self.page_count * self.page_size

    def flush(self) -> None:
        """Make buffered writes durable (no-op for memory files)."""

    def close(self) -> None:
        """Release resources."""


class MemoryDataFile(DataFile):
    """In-memory page store (the default test and benchmark backend).

    Unwritten pages read back as zeroes, like a freshly extended file.
    """

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._pages: dict[int, bytes] = {}
        self._page_count = 0

    def read_page(self, page_id: int) -> bytearray:
        if page_id < 0:
            raise StorageError(f"negative page id {page_id}")
        data = self._pages.get(page_id)
        if data is None:
            return bytearray(self.page_size)
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise StorageError(
                f"page {page_id}: write of {len(data)} bytes "
                f"(page size {self.page_size})"
            )
        self._pages[page_id] = bytes(data)
        if page_id >= self._page_count:
            self._page_count = page_id + 1

    @property
    def page_count(self) -> int:
        return self._page_count

    def copy_pages(self) -> dict[int, bytes]:
        """Snapshot of all written pages (used by backups)."""
        return dict(self._pages)


class OnDiskDataFile(DataFile):
    """Real-file page store, for examples that want durable artifacts."""

    def __init__(self, path: str, page_size: int) -> None:
        self.page_size = page_size
        self.path = path
        self._file = hostio.create_or_open(path)

    def read_page(self, page_id: int) -> bytearray:
        if page_id < 0:
            raise StorageError(f"negative page id {page_id}")
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:
            data = data + bytes(self.page_size - len(data))
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        if len(data) != self.page_size:
            raise StorageError(
                f"page {page_id}: write of {len(data)} bytes "
                f"(page size {self.page_size})"
            )
        self._file.seek(page_id * self.page_size)
        self._file.write(data)

    @property
    def page_count(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell() // self.page_size

    def flush(self) -> None:
        hostio.fsync(self._file)

    def close(self) -> None:
        self._file.close()

    def copy_pages(self) -> dict[int, bytes]:
        """All pages currently in the file (used by backups)."""
        pages = {}
        for page_id in range(self.page_count):
            data = bytes(self.read_page(page_id))
            if any(data):
                pages[page_id] = data
        return pages


class FileManager:
    """Checksummed, device-priced access to one database's data file."""

    def __init__(
        self,
        datafile: DataFile,
        device: SimDevice,
        stats: IoStats,
    ) -> None:
        self.datafile = datafile
        self.device = device
        self.stats = stats

    @property
    def page_size(self) -> int:
        return self.datafile.page_size

    @property
    def page_count(self) -> int:
        return self.datafile.page_count

    def read_page(self, page_id: int) -> bytearray:
        """Random-read one page; verifies its checksum."""
        data = self.datafile.read_page(page_id)
        self.device.read_random(self.page_size)
        self.stats.page_reads += 1
        self.stats.page_read_bytes += self.page_size
        verify_and_clear_checksum(data, page_id)
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Random-write one page; stamps its checksum."""
        out = bytearray(data)
        stamp_checksum(out)
        self.datafile.write_page(page_id, bytes(out))
        self.device.write_random(self.page_size)
        self.stats.page_writes += 1
        self.stats.page_write_bytes += self.page_size

    def read_page_raw(self, page_id: int) -> bytearray:
        """Read page bytes without device charging or checksum handling.

        Used by crash simulation and by tests that inspect durable state;
        not a code path the engine's normal operation takes.
        """
        return self.datafile.read_page(page_id)

    def read_sequential(self, page_ids) -> list[bytearray]:
        """Stream-read many pages (backup scans), priced as sequential I/O."""
        pages = []
        total = 0
        for page_id in page_ids:
            data = self.datafile.read_page(page_id)
            verify_and_clear_checksum(data, page_id)
            pages.append(data)
            total += self.page_size
        if total:
            self.device.read_seq(total)
            self.stats.backup_read_bytes += total
        return pages

    def write_sequential(self, pages: dict[int, bytes]) -> None:
        """Stream-write many pages (restore), priced as sequential I/O."""
        total = 0
        for page_id, data in pages.items():
            out = bytearray(data)
            stamp_checksum(out)
            self.datafile.write_page(page_id, bytes(out))
            total += self.page_size
        if total:
            self.device.write_seq(total)
            self.stats.backup_write_bytes += total

    def flush(self) -> None:
        self.datafile.flush()
