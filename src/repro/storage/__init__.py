"""Physical storage: slotted pages, files, buffer pool, allocation maps.

Everything the engine persists lives in fixed-size pages addressed by page
id. Pages carry a ``pageLSN`` (last log record that modified them) and a
``lastImageLSN`` (most recent full page image in the log), the two header
fields that page-oriented undo navigates by.
"""

from repro.storage.buffer import BufferPool, FrameGuard
from repro.storage.datafile import FileManager, MemoryDataFile, OnDiskDataFile
from repro.storage.page import (
    HEADER_SIZE,
    NULL_PAGE,
    Page,
    PageType,
    alloc_bitmap_geometry,
)
from repro.storage.rowcodec import RowCodec
from repro.storage.sparsefile import SparseFile

__all__ = [
    "Page",
    "PageType",
    "HEADER_SIZE",
    "NULL_PAGE",
    "alloc_bitmap_geometry",
    "RowCodec",
    "FileManager",
    "MemoryDataFile",
    "OnDiskDataFile",
    "SparseFile",
    "BufferPool",
    "FrameGuard",
]
