"""Page checksums (torn-write and bit-rot detection).

The checksum is computed over the whole page with the header's checksum
field zeroed, stored into that field on write-out, verified and re-zeroed
on read-in — so in-memory pages always carry a zero checksum field and
full page images logged from memory compare bytewise.
"""

from __future__ import annotations

import zlib

from repro.errors import PageCorruptionError

#: Byte offset of the u32 checksum field inside the page header.
CHECKSUM_OFFSET = 48
_FIELD = slice(CHECKSUM_OFFSET, CHECKSUM_OFFSET + 4)


def compute_checksum(data: bytes | bytearray) -> int:
    """CRC-32 of ``data`` with the checksum field treated as zero."""
    crc = zlib.crc32(data[: _FIELD.start])
    crc = zlib.crc32(b"\0\0\0\0", crc)
    crc = zlib.crc32(data[_FIELD.stop :], crc)
    return crc & 0xFFFFFFFF


def stamp_checksum(data: bytearray) -> None:
    """Store the page checksum into the header field (before a disk write)."""
    crc = compute_checksum(data)
    data[_FIELD] = crc.to_bytes(4, "little")


def verify_and_clear_checksum(data: bytearray, page_id: int) -> None:
    """Validate the stored checksum and zero the field (after a disk read).

    All-zero pages (never written) are accepted: they represent pages that
    exist in the file's address space but were never formatted.

    Raises :class:`~repro.errors.PageCorruptionError` on mismatch.
    """
    stored = int.from_bytes(data[_FIELD], "little")
    if stored == 0 and not any(data):
        return
    data[_FIELD] = b"\0\0\0\0"
    actual = zlib.crc32(data) & 0xFFFFFFFF
    if actual != stored:
        raise PageCorruptionError(
            f"page {page_id}: checksum mismatch "
            f"(stored {stored:#010x}, computed {actual:#010x})"
        )
