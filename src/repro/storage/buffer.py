"""Buffer pool: cached page frames with pinning, WAL discipline, LRU.

Pin counts protect frames from eviction while a caller works on them;
``pool.latch`` serializes the frame table and the pin counters across
sessions (pin/unpin run under it, so eviction never races a pin landing
on the victim). The WAL rule lives in eviction and flushing: a dirty
page never reaches the data file before the log is durable up to its
``pageLSN``.

Latch order: the pool latch is held across ``_write_back``'s
``log.flush`` (buffer → log), never the other way around — the log
manager calls nothing back into the buffer pool.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import BufferPoolError
from repro.latch import Latch
from repro.sim.iostats import IoStats
from repro.storage.datafile import FileManager
from repro.storage.page import Page
from repro.wal.log_manager import LogManager


class Frame:
    """One buffered page."""

    __slots__ = ("page", "page_id", "dirty", "pin_count")

    def __init__(self, page: Page, page_id: int) -> None:
        self.page = page
        self.page_id = page_id
        self.dirty = False
        self.pin_count = 0

    def mark_dirty(self) -> None:
        self.dirty = True

    def __repr__(self) -> str:
        return (
            f"Frame(page={self.page_id}, dirty={self.dirty}, "
            f"pins={self.pin_count})"
        )


class FrameGuard:
    """Context manager pinning a frame for the duration of a block."""

    __slots__ = ("_pool", "frame")

    def __init__(self, pool: "BufferPool", frame: Frame) -> None:
        self._pool = pool
        self.frame = frame
        with pool.latch:
            frame.pin_count += 1

    @property
    def page(self) -> Page:
        return self.frame.page

    @property
    def page_id(self) -> int:
        return self.frame.page_id

    def mark_dirty(self) -> None:
        self.frame.mark_dirty()

    def __enter__(self) -> "FrameGuard":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unpin()

    def unpin(self) -> None:
        with self._pool.latch:
            if self.frame.pin_count <= 0:
                raise BufferPoolError(
                    f"frame {self.frame.page_id} unpinned more times than pinned"
                )
            self.frame.pin_count -= 1


class BufferPool:
    """LRU page cache over one database's file manager."""

    def __init__(
        self,
        file_manager: FileManager,
        capacity: int,
        stats: IoStats,
        log: LogManager | None = None,
    ) -> None:
        if capacity < 1:
            raise BufferPoolError("buffer pool capacity must be >= 1")
        self.latch = Latch("buffer_pool")
        self.file_manager = file_manager
        self.capacity = capacity
        self.stats = stats
        self.log = log
        self._frames: OrderedDict[int, Frame] = OrderedDict()

    def __len__(self) -> int:
        with self.latch:
            return len(self._frames)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------

    def fetch(self, page_id: int, *, create: bool = False) -> FrameGuard:
        """Pin the page, reading it from the file on a miss.

        With ``create=True`` a miss materializes a zeroed frame without a
        disk read — the first-allocation path (a never-allocated page has
        no content worth reading; the paper's ever-allocated bit exists to
        tell these cases apart).
        """
        with self.latch:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                self.stats.buffer_hits += 1
                return FrameGuard(self, frame)
            self.stats.buffer_misses += 1
            self._make_room()
            if create:
                data = bytearray(self.file_manager.page_size)
            else:
                data = self.file_manager.read_page(page_id)
            frame = Frame(Page(data), page_id)
            self._frames[page_id] = frame
            return FrameGuard(self, frame)

    def peek(self, page_id: int) -> Frame | None:
        """The cached frame for ``page_id``, or None; no I/O, no pin."""
        with self.latch:
            return self._frames.get(page_id)

    # ------------------------------------------------------------------
    # Eviction and flushing
    # ------------------------------------------------------------------

    def _make_room(self) -> None:
        with self.latch:
            while len(self._frames) >= self.capacity:
                victim_id = None
                for page_id, frame in self._frames.items():
                    if frame.pin_count == 0:
                        victim_id = page_id
                        break
                if victim_id is None:
                    raise BufferPoolError(
                        f"all {len(self._frames)} frames pinned; cannot evict"
                    )
                frame = self._frames.pop(victim_id)
                if frame.dirty:
                    self._write_back(frame)
                self.stats.buffer_evictions += 1

    def _write_back(self, frame: Frame) -> None:
        with self.latch:
            if self.log is not None:
                self.log.flush(frame.page.page_lsn)
            self.file_manager.write_page(frame.page_id, bytes(frame.page.data))
            frame.dirty = False

    def flush_page(self, page_id: int) -> None:
        """Write one page back if dirty (stays cached)."""
        with self.latch:
            frame = self._frames.get(page_id)
            if frame is not None and frame.dirty:
                self._write_back(frame)

    def flush_all(self) -> int:
        """Write every dirty page back (checkpoint); returns pages written."""
        with self.latch:
            if self.log is not None:
                self.log.flush()
            written = 0
            for frame in self._frames.values():
                if frame.dirty:
                    self._write_back(frame)
                    written += 1
            return written

    def dirty_page_ids(self) -> list[int]:
        with self.latch:
            return [pid for pid, frame in self._frames.items() if frame.dirty]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def drop_clean(self, page_id: int) -> None:
        """Forget a cached page without writing it (snapshot caches)."""
        with self.latch:
            frame = self._frames.get(page_id)
            if frame is not None:
                if frame.pin_count:
                    raise BufferPoolError(f"page {page_id} is pinned")
                del self._frames[page_id]

    def crash(self) -> None:
        """Simulate power loss: all buffered state disappears."""
        with self.latch:
            self._frames.clear()

    def __repr__(self) -> str:
        with self.latch:
            dirty = sum(1 for f in self._frames.values() if f.dirty)
            return (
                f"BufferPool({len(self._frames)}/{self.capacity} frames, "
                f"{dirty} dirty)"
            )
