"""The archive store: cold tier for log segments and backup chains.

An :class:`ArchiveStore` owns everything the engine needs to materialize
a database state *older than the primary's retained log*: record-aligned
archived log segments (the shipper's frame format, CRC and all) and page
backups chained full → incremental → incremental. It is priced through
the sim device model like every other medium in the system — archive
media is typically the cheapest, slowest tier, so the store carries its
own :class:`~repro.sim.device.SimDevice` (defaulting to the log device's
profile) and every segment or backup read/write charges it.

Segments can optionally be persisted to a real directory (one ``.seg``
file per segment, containing the encoded frame) so operational tooling —
``python -m repro.tools.loginspect --archive <dir>`` — can inspect an
archive without an engine process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.config import SimEnv
from repro.errors import ArchiveError, BackupError, FaultInjectedError
from repro.replication.stream import LogFrame
from repro.sim import hostio
from repro.sim.device import DeviceProfile, SimDevice
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN, format_lsn


@dataclass(frozen=True)
class ArchivedSegment:
    """One archived log segment: the encoded frame plus its extent."""

    db_name: str
    start_lsn: int
    end_lsn: int
    ship_wall: float
    blob: bytes

    @property
    def payload_bytes(self) -> int:
        return self.end_lsn - self.start_lsn


class _ArchivedLogView:
    """Lazily materialized :class:`LogManager` over archived segments.

    Extended incrementally: each refresh ingests only segments archived
    since the last one, so repeated split searches and restores do not
    re-read the whole archive. The view doubles as the ``db``-shaped
    object SplitLSN search and checkpoint-chain walks expect (``env``,
    ``log``, ``last_checkpoint_lsn``).
    """

    def __init__(self, store: "ArchiveStore", db_name: str) -> None:
        self._store = store
        self.db_name = db_name
        self.env = store.env
        self.log: LogManager | None = None
        self.last_checkpoint_lsn = NULL_LSN
        self._next_segment = 0

    def refresh(self) -> "_ArchivedLogView":
        segments = self._store.segments(self.db_name)
        if not segments:
            raise ArchiveError(
                f"no archived log segments for {self.db_name!r}"
            )
        if self.log is None:
            # The scratch copy lives in memory: the only real media cost
            # of materializing the view is the archive read (charged per
            # segment below), so the LogManager runs on a free-device env
            # sharing the real clock — ingest/scan must not bill phantom
            # primary log-device traffic into the shared stats.
            self.log = LogManager(SimEnv(clock=self.env.clock))
            self.log.open_at(segments[0].start_lsn)
        for segment in segments[self._next_segment:]:
            self._store._charge_read(len(segment.blob))
            frame = LogFrame.decode(segment.blob)
            ckpt = self.log.ingest(frame.start_lsn, frame.payload)
            if ckpt != NULL_LSN and ckpt > self.last_checkpoint_lsn:
                self.last_checkpoint_lsn = ckpt
        self._next_segment = len(segments)
        return self


class ArchiveStore:
    """Segment + backup store for one or more databases' archive tiers."""

    def __init__(
        self,
        env,
        *,
        profile: DeviceProfile | None = None,
        directory: str | None = None,
    ) -> None:
        self.env = env
        self.device = SimDevice(
            profile if profile is not None else env.log_device.profile,
            env.clock,
            env.stats,
        )
        self.device.chaos = getattr(env, "chaos", None)
        self.directory = directory
        if directory is not None:
            hostio.ensure_directory(directory)
        self._segments: dict[str, list[ArchivedSegment]] = {}
        self._backups: dict[str, list] = {}
        self._log_views: dict[str, _ArchivedLogView] = {}

    # ------------------------------------------------------------------
    # Device accounting
    # ------------------------------------------------------------------

    def _charge_write(self, nbytes: int) -> None:
        self.device.write_seq(nbytes)
        self.env.stats.archive_write_bytes += nbytes

    def _charge_read(self, nbytes: int) -> None:
        self.device.read_seq(nbytes)
        self.env.stats.archive_read_bytes += nbytes

    # ------------------------------------------------------------------
    # Log segments
    # ------------------------------------------------------------------

    def put_segment(self, db_name: str, blob: bytes) -> ArchivedSegment:
        """Durably archive one encoded log frame.

        Frames must arrive in order with no gaps — the archiver's cursor
        only advances once the segment is durably stored, so a gap here
        means two archivers (or a cursor rewind) raced on one store.
        """
        frame = LogFrame.decode(blob)
        segments = self._segments.setdefault(db_name, [])
        if segments and frame.start_lsn != segments[-1].end_lsn:
            raise ArchiveError(
                f"segment for {db_name!r} starts at "
                f"{format_lsn(frame.start_lsn)} but the archive ends at "
                f"{format_lsn(segments[-1].end_lsn)}; refusing to leave a gap"
            )
        segment = ArchivedSegment(
            db_name=db_name,
            start_lsn=frame.start_lsn,
            end_lsn=frame.end_lsn,
            ship_wall=frame.ship_wall,
            blob=bytes(blob),
        )
        path = None
        if self.directory is not None:
            path = os.path.join(
                self.directory,
                f"{db_name}-{frame.start_lsn:016x}-{frame.end_lsn:016x}.seg",
            )
        chaos = getattr(self.env, "chaos", None)
        if chaos is not None:
            try:
                chaos.hit("archive.flush", target=db_name)
            except FaultInjectedError:
                # A crash mid-flush leaves at most a torn partial file on
                # the medium; the in-memory index never sees the segment
                # (the append below is the atomicity point), so the
                # archive stays gap-free and the retried flush simply
                # overwrites the torn artifact with the full frame.
                if path is not None:
                    self._charge_write(len(blob) // 2)
                    hostio.write_blob(path, blob[: max(1, len(blob) // 2)])
                raise
        self._charge_write(len(blob))
        if path is not None:
            hostio.write_blob(path, blob)
        segments.append(segment)
        self.env.stats.archive_segments_written += 1
        return segment

    def segments(self, db_name: str) -> list[ArchivedSegment]:
        return list(self._segments.get(db_name, ()))

    def database_names(self) -> list[str]:
        """Every database with archived segments or backups, sorted."""
        return sorted(set(self._segments) | set(self._backups))

    def coverage(self, db_name: str) -> tuple[int, int] | None:
        """Archived log LSN range ``[start, end)``, or ``None`` if empty."""
        segments = self._segments.get(db_name)
        if not segments:
            return None
        return segments[0].start_lsn, segments[-1].end_lsn

    def frames_from(self, db_name: str, from_lsn: int):
        """Yield encoded frames covering ``[from_lsn, coverage end)``.

        ``from_lsn`` must be a record boundary; a segment straddling it is
        sliced (and re-framed) so the first yielded frame starts exactly
        there — the shape a standby's ``receive`` path expects.
        """
        coverage = self.coverage(db_name)
        if coverage is None:
            return
        start, end = coverage
        if from_lsn < start or from_lsn > end:
            raise ArchiveError(
                f"{db_name!r}: LSN {format_lsn(from_lsn)} outside the "
                f"archived range [{format_lsn(start)}, {format_lsn(end)})"
            )
        for segment in self._segments[db_name]:
            if segment.end_lsn <= from_lsn:
                continue
            self._charge_read(len(segment.blob))
            if segment.start_lsn >= from_lsn:
                yield segment.blob
                continue
            frame = LogFrame.decode(segment.blob)
            offset = from_lsn - frame.start_lsn
            yield LogFrame(
                from_lsn, frame.payload[offset:], frame.ship_wall
            ).encode()

    def log_view(self, db_name: str) -> _ArchivedLogView:
        """The materialized archived log for ``db_name`` (cached and
        extended incrementally as new segments land)."""
        view = self._log_views.get(db_name)
        if view is None:
            view = _ArchivedLogView(self, db_name)
            self._log_views[db_name] = view
        return view.refresh()

    # ------------------------------------------------------------------
    # Backups
    # ------------------------------------------------------------------

    def put_backup(self, backup) -> None:
        """Archive a full or incremental backup.

        Incrementals must chain onto an already-archived backup (their
        ``base_lsn`` names the predecessor's ``backup_lsn``).
        """
        backups = self._backups.setdefault(backup.source_name, [])
        base_lsn = getattr(backup, "base_lsn", None)
        if base_lsn is not None and not any(
            b.backup_lsn == base_lsn for b in backups
        ):
            raise BackupError(
                f"incremental backup of {backup.source_name!r} chains onto "
                f"LSN {format_lsn(base_lsn)}, which is not in the archive"
            )
        if backups and backup.backup_lsn < backups[-1].backup_lsn:
            raise BackupError(
                f"backup of {backup.source_name!r} at "
                f"{format_lsn(backup.backup_lsn)} is older than the newest "
                f"archived backup ({format_lsn(backups[-1].backup_lsn)})"
            )
        self._charge_write(backup.size_bytes)
        backups.append(backup)

    def backups(self, db_name: str) -> list:
        return list(self._backups.get(db_name, ()))

    def chains(self, db_name: str, up_to_lsn: int | None = None) -> list[list]:
        """Every restorable backup chain, as ``[full, inc, inc, ...]``.

        A chain starts at a full backup and extends through incrementals
        whose ``base_lsn`` links match; with ``up_to_lsn`` the chain is
        cut at the last member whose ``backup_lsn`` does not exceed it
        (the restore target's SplitLSN).
        """
        backups = self._backups.get(db_name, ())
        chains: list[list] = []
        for backup in backups:
            if getattr(backup, "base_lsn", None) is None:
                if up_to_lsn is not None and backup.backup_lsn > up_to_lsn:
                    continue
                chains.append([backup])
        for chain in chains:
            extended = True
            while extended:
                extended = False
                for backup in backups:
                    if getattr(backup, "base_lsn", None) != chain[-1].backup_lsn:
                        continue
                    if up_to_lsn is not None and backup.backup_lsn > up_to_lsn:
                        continue
                    chain.append(backup)
                    extended = True
                    break
        return chains

    def newest_chain(self, db_name: str, up_to_lsn: int | None = None) -> list:
        """The chain ending at the newest eligible backup (``[]`` if none)."""
        chains = self.chains(db_name, up_to_lsn)
        if not chains:
            return []
        return max(chains, key=lambda chain: chain[-1].backup_lsn)

    def read_backup_pages(self, chain: list) -> dict[int, bytes]:
        """Merged page set of a chain, oldest layer first (reads charged)."""
        pages: dict[int, bytes] = {}
        for backup in chain:
            self._charge_read(backup.size_bytes)
            pages.update(backup.pages)
        return pages

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        seg_count = sum(len(s) for s in self._segments.values())
        bak_count = sum(len(b) for b in self._backups.values())
        return (
            f"ArchiveStore(databases={sorted(self._segments | self._backups)}, "
            f"segments={seg_count}, backups={bak_count})"
        )
