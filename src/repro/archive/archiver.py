"""Continuous log archiving: tail the primary, archive before truncation.

The :class:`LogArchiver` is a subscriber on the primary's existing
:class:`~repro.replication.shipper.LogShipper` — the archive tier rides
the same framed, CRC-checksummed, record-aligned stream standbys consume,
and inherits the shipper's cursor-based retention pin for free: the
shipper never lets :func:`repro.core.retention.enforce_retention`
truncate below the slowest subscriber's cursor, and the archiver's cursor
only advances once a segment is *durably archived*. Log the retention
window is about to drop is therefore always in the archive first; closing
the archiver (:meth:`close`) detaches the subscription and truncation
resumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.archive.store import ArchiveStore
from repro.errors import (
    ArchiveError,
    FaultInjectedError,
    ReplicationError,
    ReplicationFaultError,
)
from repro.replication.stream import LogFrame
from repro.wal.lsn import format_lsn


@dataclass
class ArchiverStats:
    """Observable archiver behavior."""

    segments_archived: int = 0
    bytes_archived: int = 0
    #: Transient receive/flush faults (each left the cursor put; the
    #: shipper's retry resends the segment).
    receive_errors: int = 0


class LogArchiver:
    """Archives one primary database's log into an :class:`ArchiveStore`."""

    def __init__(self, db, store: ArchiveStore, shipper) -> None:
        self.db = db
        self.store = store
        self.shipper = shipper
        self.name = f"~archive:{db.name}"
        self.stats = ArchiverStats()
        self.closed = False
        coverage = store.coverage(db.name)
        if coverage is None:
            self._cursor = db.log.start_lsn
        elif coverage[1] >= db.log.start_lsn:
            # Resuming against an existing archive: continue where it ends
            # (re-archiving already-covered log would duplicate segments).
            # Guard against a *different incarnation* first — a database
            # dropped and recreated under the same name starts a fresh LSN
            # space, and appending its log to the old history would
            # corrupt every restore spanning the boundary.
            self._verify_continuation(coverage)
            self._cursor = coverage[1]
        else:
            raise ArchiveError(
                f"archive for {db.name!r} ends at "
                f"{format_lsn(coverage[1])} but the retained log starts at "
                f"{format_lsn(db.log.start_lsn)}: the archived history has "
                f"a gap; start a fresh store"
            )
        shipper.attach(self)

    def _verify_continuation(self, coverage: tuple[int, int]) -> None:
        """Refuse to resume unless the database's log *is* the archived
        history's continuation.

        Cheap structural check (the archive extends past everything this
        log has ever written → different incarnation) plus a content
        check: whatever of the newest archived segment the database still
        retains must match byte for byte.
        """
        log = self.db.log
        if coverage[1] > log.end_lsn:
            raise ArchiveError(
                f"archive for {self.db.name!r} covers through "
                f"{format_lsn(coverage[1])} but the database's log ends at "
                f"{format_lsn(log.end_lsn)}: this is a different "
                f"incarnation of the database; start a fresh store"
            )
        last = self.store.segments(self.db.name)[-1]
        frame = LogFrame.decode(last.blob)
        lo = max(log.start_lsn, frame.start_lsn)
        hi = min(frame.end_lsn, log.end_lsn)
        if lo >= hi:
            return  # the retained log no longer overlaps the segment
        retained = log.read_bytes(lo, hi)
        archived = frame.payload[lo - frame.start_lsn : hi - frame.start_lsn]
        if retained != archived:
            raise ArchiveError(
                f"archive for {self.db.name!r} diverges from the retained "
                f"log in [{format_lsn(lo)}, {format_lsn(hi)}): this is a "
                f"different incarnation of the database; start a fresh store"
            )

    # ------------------------------------------------------------------
    # Shipper-subscriber protocol
    # ------------------------------------------------------------------

    @property
    def received_lsn(self) -> int:
        """End of the durably archived log (the shipper resume cursor)."""
        return self._cursor

    def receive(self, blob: bytes) -> int:
        """Durably archive one shipped frame; returns the new cursor.

        Transient faults — a torn/corrupt frame on the wire, an injected
        crash during the store flush — are re-raised typed with the
        archive cursor as the resume point: the cursor never advanced,
        so the shipper's retry resends exactly this segment and the
        archive stays gap-free (the store-then-advance ordering is the
        atomicity point).
        """
        if self.closed:
            raise ArchiveError(f"archiver {self.name!r} is closed")
        try:
            frame = LogFrame.decode(blob)
        except ReplicationFaultError:
            raise
        except ReplicationError as err:
            self.stats.receive_errors += 1
            raise ReplicationFaultError(
                f"archiver {self.name!r} rejected a frame at "
                f"{format_lsn(self._cursor)}: {err}",
                resume_lsn=self._cursor,
            ) from err
        if frame.start_lsn != self._cursor:
            raise ArchiveError(
                f"archiver {self.name!r} expected frame at "
                f"{format_lsn(self._cursor)}, got "
                f"{format_lsn(frame.start_lsn)}"
            )
        # Store first, then advance: the retention pin (the shipper-side
        # cursor) must keep covering the segment until it is durable.
        with self.db.env.tracer.span(
            "archive.receive", db=self.db.name, bytes=len(frame.payload)
        ):
            chaos = getattr(self.db.env, "chaos", None)
            if chaos is not None:
                chaos.hit("archive.receive", target=self.name)
            try:
                self.store.put_segment(self.db.name, blob)
            except FaultInjectedError:
                self.stats.receive_errors += 1
                raise
        self._cursor = frame.end_lsn
        self.stats.segments_archived += 1
        self.stats.bytes_archived += len(frame.payload)
        return self._cursor

    # ------------------------------------------------------------------

    def poll(self) -> int:
        """Archive all pending durable log now (drives the shared shipper,
        so other subscribers receive their backlog too)."""
        if self.closed:
            return 0
        return self.shipper.poll()

    def lag_bytes(self) -> int:
        """Durable primary log not yet archived."""
        return max(0, self.db.log.durable_lsn - self._cursor)

    def close(self) -> None:
        """Stop archiving and release the retention hold."""
        self.shipper.detach(self.name)
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"LogArchiver({self.db.name!r}, cursor={format_lsn(self._cursor)}, "
            f"segments={self.stats.segments_archived}, closed={self.closed})"
        )
