"""Archive restore: materialize any archived time, past retention.

The primary's retention window bounds what page-oriented undo can reach;
the archive tier has no such bound. A restore plans the cheapest path to
the target's SplitLSN — newest full backup, the incrementals chained onto
it, then roll the *archived* log forward — in the FineLine / instant-
restore spirit: redo from an archived log replaces ever touching the
(possibly long gone) primary media.

Cost is estimated through the device profiles before anything is copied:
laying down more chain members costs backup bytes but shortens log
replay, so the planner evaluates every chain prefix and picks the
cheapest (ties prefer the longer chain — less replay for the same
estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backup.restore import init_restored_shell, roll_forward, undo_in_flight
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.engine.database import Database
from repro.errors import ArchiveError
from repro.wal.lsn import NULL_LSN, format_lsn


@dataclass
class RestorePlan:
    """One candidate way to materialize ``db_name`` as of ``target_wall``."""

    db_name: str
    target_wall: float
    #: SplitLSN the restore rolls forward to.
    split_lsn: int
    #: Backups to lay down, oldest first (full, then incrementals).
    chain: list = field(default_factory=list)
    #: Roll-forward span over the archived log.
    roll_from_lsn: int = NULL_LSN
    #: Device-model estimate of the restore's media time (seconds).
    estimated_s: float = 0.0

    @property
    def backup_bytes(self) -> int:
        return sum(b.size_bytes for b in self.chain)

    @property
    def replay_bytes(self) -> int:
        return max(0, self.split_lsn - self.roll_from_lsn)

    def __repr__(self) -> str:
        return (
            f"RestorePlan({self.db_name!r} @ {format_lsn(self.split_lsn)}, "
            f"chain={len(self.chain)}, replay={self.replay_bytes}B, "
            f"est={self.estimated_s:.3f}s)"
        )


def plan_restore(store, db_name: str, target_wall: float) -> RestorePlan:
    """Pick the cheapest backup chain + log replay reaching ``target_wall``.

    Raises :class:`ArchiveError` when no archived chain and log range can
    cover the target (no backups, target before the first full backup, or
    the archived log does not reach the chain's start).
    """
    view = store.log_view(db_name)
    split = find_split_lsn(view, target_wall)
    coverage = store.coverage(db_name)
    candidates: list[RestorePlan] = []
    for chain in store.chains(db_name, up_to_lsn=split):
        # Every prefix of the chain is a valid plan; laying fewer
        # incrementals trades backup bytes for log replay.
        for cut in range(1, len(chain) + 1):
            prefix = chain[:cut]
            roll_from = prefix[-1].backup_lsn
            if roll_from < coverage[0]:
                continue  # archived log cannot roll this prefix forward
            plan = RestorePlan(
                db_name=db_name,
                target_wall=target_wall,
                split_lsn=split,
                chain=prefix,
                roll_from_lsn=roll_from,
            )
            plan.estimated_s = _estimate_seconds(store, plan)
            candidates.append(plan)
    if not candidates:
        raise ArchiveError(
            f"no archived backup chain of {db_name!r} can reach "
            f"{format_lsn(split)} (target {target_wall:.3f}s); take a "
            f"BACKUP DATABASE before the times you need to restore to"
        )
    return min(
        candidates,
        key=lambda p: (p.estimated_s, -len(p.chain), -p.roll_from_lsn),
    )


def _estimate_seconds(store, plan: RestorePlan) -> float:
    """Media-time estimate: read the chain from archive media, write the
    pages to data media, stream-read the replay span from the archive."""
    archive = store.device.profile
    data = store.env.data_device.profile
    seconds = 0.0
    for backup in plan.chain:
        seconds += archive.seq_read_time(backup.size_bytes)
        seconds += data.seq_write_time(backup.size_bytes)
    if plan.replay_bytes:
        seconds += archive.seq_read_time(plan.replay_bytes)
    return seconds


def restore_from_archive(
    engine,
    store,
    db_name: str,
    target_wall: float,
    new_name: str,
    *,
    register: bool = True,
    plan: RestorePlan | None = None,
) -> Database:
    """Materialize ``db_name`` as of ``target_wall`` from the archive.

    Runs the cheapest :func:`plan_restore` plan: lay the chain's pages
    down oldest-first, roll the archived log forward to the SplitLSN,
    undo transactions in flight there. The result is a read-only database
    (registered with the engine under ``new_name`` unless ``register`` is
    false — the engine's archive-backed ``query_as_of`` fallback keeps
    its copies private). A caller that already planned (for the split, or
    to inspect the chain) passes ``plan`` to skip re-planning.
    """
    if plan is None:
        plan = plan_restore(store, db_name, target_wall)
    view = store.log_view(db_name)
    log = view.log

    config = plan.chain[0].config
    if config is None:
        source = engine.databases.get(db_name)
        config = source.config if source is not None else engine.default_config
    restored = init_restored_shell(engine, new_name, config, plan.roll_from_lsn)
    restored.file_manager.write_sequential(store.read_backup_pages(plan.chain))
    restored.reload_boot()
    restored.last_checkpoint_lsn = plan.roll_from_lsn

    roll_forward(restored, log, plan.roll_from_lsn, plan.split_lsn)

    base = NULL_LSN
    for lsn, _wall, _prev in checkpoint_chain(view):
        if lsn <= plan.split_lsn:
            base = lsn
            break
    if base == NULL_LSN:
        base = max(plan.roll_from_lsn, log.start_lsn)
    undo_in_flight(restored, log, base, plan.split_lsn)

    restored.buffer.flush_all()
    restored.read_only = True
    if register:
        engine.databases[new_name] = restored
    return restored
