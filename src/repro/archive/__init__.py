"""The archive tier: unbounded point-in-time recovery.

The paper's time travel ends at the retention horizon — past it, the
introduction's "restore a full backup, roll the log forward" workflow is
all that's left, and its cost scales with the whole database. This
package makes that workflow cheap, continuous and engine-owned:

* :class:`~repro.archive.store.ArchiveStore` — cold-tier store for
  archived log segments and backup chains, priced through its own sim
  device.
* :class:`~repro.archive.archiver.LogArchiver` — tails the primary via
  the log shipper's framed stream and archives record-aligned segments
  *before* retention truncates them (the subscription cursor doubles as a
  retention pin until each segment is durable).
* :class:`~repro.archive.backup.IncrementalBackup` /
  :func:`~repro.archive.backup.take_incremental_backup` — page backups
  copying only pages modified since the chain's previous member.
* :mod:`~repro.archive.restore` — a planner that picks the cheapest
  chain (full + incrementals + archived log replay) to materialize any
  archived time, and the restore that runs it.

Reaching any archived time also lifts two other limits: ``query_as_of``
falls back to an archive-backed copy when the pool's split crosses the
horizon, and ``add_replica(seed_from_backup=True)`` seeds a standby from
the newest chain instead of requiring an untruncated primary log.
"""

from repro.archive.archiver import ArchiverStats, LogArchiver
from repro.archive.backup import IncrementalBackup, take_incremental_backup
from repro.archive.restore import RestorePlan, plan_restore, restore_from_archive
from repro.archive.store import ArchivedSegment, ArchiveStore

__all__ = [
    "ArchiveStore",
    "ArchivedSegment",
    "LogArchiver",
    "ArchiverStats",
    "IncrementalBackup",
    "take_incremental_backup",
    "RestorePlan",
    "plan_restore",
    "restore_from_archive",
]
