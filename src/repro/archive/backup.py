"""Incremental page backups: copy only what changed since the last one.

The paper's restore baseline pays for the whole database regardless of the
target; incrementals shrink both the media cost and the roll-forward span.
An :class:`IncrementalBackup` copies every allocated page whose
``page_lsn`` is above the previous backup's LSN — LSNs order all
modifications totally, so "changed since the chain's last member" is a
single header comparison per page. The chain full → inc → inc is what the
restore planner lays down before rolling the archived log forward.

Finding the changed pages still scans the whole allocated set (this
engine keeps no differential map), so an incremental's *read* cost tracks
database size while its *write* cost tracks churn — the asymmetry
``benchmarks/bench_archive.py`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backup.backup import FullBackup
from repro.storage.page import Page


@dataclass
class IncrementalBackup:
    """Pages modified since the chain's previous backup."""

    source_name: str
    page_size: int
    #: Checkpoint LSN this incremental is consistent with.
    backup_lsn: int
    #: ``backup_lsn`` of the chain member this one diffs against.
    base_lsn: int
    taken_wall: float
    pages: dict[int, bytes] = field(default_factory=dict, repr=False)
    config: object | None = field(default=None, repr=False)

    @property
    def size_bytes(self) -> int:
        return len(self.pages) * self.page_size

    def __repr__(self) -> str:
        return (
            f"IncrementalBackup(of={self.source_name!r}, "
            f"pages={len(self.pages)}, lsn={self.backup_lsn:#x}, "
            f"base={self.base_lsn:#x})"
        )


def take_incremental_backup(
    db, base: FullBackup | IncrementalBackup, *, charge_media: bool = True
) -> IncrementalBackup:
    """Back up every page of ``db`` modified since ``base`` was taken.

    Checkpoints first (so the on-disk state is consistent with the new
    ``backup_lsn``), scans all allocated pages sequentially, and keeps the
    ones whose ``page_lsn`` exceeds ``base.backup_lsn``. Writing the
    backup media is charged for the kept pages only —
    ``charge_media=False`` when the caller lands the backup on its own
    priced medium (the archive store).
    """
    backup_lsn = db.checkpoint()
    page_ids = db.alloc.allocated_page_ids()
    backup = IncrementalBackup(
        source_name=db.name,
        page_size=db.config.page_size,
        backup_lsn=backup_lsn,
        base_lsn=base.backup_lsn,
        taken_wall=db.env.clock.now(),
        config=db.config,
    )
    pages = db.file_manager.read_sequential(page_ids)
    for page_id, data in zip(page_ids, pages, strict=True):
        page = Page(data)
        if not page.is_formatted() or page.page_lsn > base.backup_lsn:
            backup.pages[page_id] = bytes(data)
    if charge_media:
        db.env.data_device.write_seq(backup.size_bytes)
        db.env.stats.backup_write_bytes += backup.size_bytes
    return backup
