"""TPC-C transaction implementations.

Write transactions take a database; the read-only procedures
(``stock_level``, ``order_status``) take anything implementing the reader
protocol (``get``/``scan``) — a live database, an as-of snapshot, or a
restored copy — which is exactly how the paper runs its stock-level
queries "as of" the past.
"""

from __future__ import annotations

import random

from repro.errors import TransactionError


class TpccAborted(TransactionError):
    """Raised internally to drive the mandated 1% new-order rollbacks."""


def new_order(db, rng: random.Random, scale, w_id: int | None = None) -> bool:
    """One new-order transaction; returns False when it rolled back."""
    w_id = w_id or rng.randint(1, scale.warehouses)
    d_id = rng.randint(1, scale.districts_per_warehouse)
    c_id = rng.randint(1, scale.customers_per_district)
    line_count = rng.randint(scale.min_order_lines, scale.max_order_lines)
    abort = rng.random() < scale.abort_rate
    try:
        with db.transaction() as txn:
            district = db.get("district", (w_id, d_id), txn)
            o_id = district[3]
            db.update(txn, "district", (w_id, d_id), {"d_next_o_id": o_id + 1})
            total = 0.0
            for line in range(1, line_count + 1):
                i_id = rng.randint(1, scale.items)
                item = db.get("item", (i_id,), txn)
                stock = db.get("stock", (w_id, i_id), txn)
                quantity = rng.randint(1, 10)
                new_qty = stock[2] - quantity
                if new_qty < 10:
                    new_qty += 91
                db.update(
                    txn,
                    "stock",
                    (w_id, i_id),
                    {
                        "s_quantity": new_qty,
                        "s_ytd": stock[3] + quantity,
                        "s_order_cnt": stock[4] + 1,
                    },
                )
                amount = quantity * item[2]
                total += amount
                db.insert(
                    txn,
                    "order_line",
                    (w_id, d_id, o_id, line, i_id, quantity, amount),
                )
            db.insert(
                txn,
                "orders",
                (w_id, d_id, o_id, c_id, db.env.clock.now(), line_count, False),
            )
            db.insert(txn, "new_order", (w_id, d_id, o_id))
            if abort:
                # TPC-C: 1% of new-orders abort at the last item.
                raise TpccAborted("simulated user abort")
    except TpccAborted:
        return False
    return True


def payment(db, rng: random.Random, scale, seq: int) -> None:
    """One payment transaction (updates + a heap history append)."""
    w_id = rng.randint(1, scale.warehouses)
    d_id = rng.randint(1, scale.districts_per_warehouse)
    c_id = rng.randint(1, scale.customers_per_district)
    amount = round(rng.uniform(1.0, 5000.0), 2)
    with db.transaction() as txn:
        warehouse = db.get("warehouse", (w_id,), txn)
        db.update(txn, "warehouse", (w_id,), {"w_ytd": warehouse[2] + amount})
        district = db.get("district", (w_id, d_id), txn)
        db.update(txn, "district", (w_id, d_id), {"d_ytd": district[4] + amount})
        customer = db.get("customer", (w_id, d_id, c_id), txn)
        db.update(
            txn,
            "customer",
            (w_id, d_id, c_id),
            {
                "c_balance": customer[4] - amount,
                "c_ytd_payment": customer[5] + amount,
                "c_payment_cnt": customer[6] + 1,
            },
        )
        db.insert(
            txn,
            "history",
            (seq, w_id, d_id, c_id, amount, db.env.clock.now()),
        )


def delivery(db, rng: random.Random, scale) -> int:
    """Deliver the oldest undelivered order per district; returns count."""
    w_id = rng.randint(1, scale.warehouses)
    delivered = 0
    with db.transaction() as txn:
        for d_id in range(1, scale.districts_per_warehouse + 1):
            pending = list(
                db.scan("new_order", (w_id, d_id, 0), (w_id, d_id, 2**31))
            )
            if not pending:
                continue
            o_id = pending[0][2]
            db.delete(txn, "new_order", (w_id, d_id, o_id))
            order = db.get("orders", (w_id, d_id, o_id), txn)
            db.update(txn, "orders", (w_id, d_id, o_id), {"o_delivered": True})
            total = sum(
                line[6]
                for line in db.scan(
                    "order_line", (w_id, d_id, o_id, 0), (w_id, d_id, o_id, 2**31)
                )
            )
            customer = db.get("customer", (w_id, d_id, order[3]), txn)
            db.update(
                txn,
                "customer",
                (w_id, d_id, order[3]),
                {"c_balance": customer[4] + total},
            )
            delivered += 1
    return delivered


def order_status(reader, rng: random.Random, scale) -> tuple | None:
    """Read-only: a customer's latest order and its lines."""
    w_id = rng.randint(1, scale.warehouses)
    d_id = rng.randint(1, scale.districts_per_warehouse)
    c_id = rng.randint(1, scale.customers_per_district)
    customer = reader.get("customer", (w_id, d_id, c_id))
    if customer is None:
        return None
    latest = None
    for order in reader.scan("orders", (w_id, d_id, 0), (w_id, d_id, 2**31)):
        if order[3] == c_id:
            latest = order
    if latest is None:
        return customer, None, []
    lines = list(
        reader.scan(
            "order_line",
            (w_id, d_id, latest[2], 0),
            (w_id, d_id, latest[2], 2**31),
        )
    )
    return customer, latest, lines


def stock_level(reader, w_id: int, d_id: int, threshold: int, *, recent_orders: int = 20) -> int:
    """The TPC-C stock-level procedure (the paper's as-of query).

    Counts distinct items from the district's last ``recent_orders``
    orders whose stock quantity is below ``threshold``. Runs against a
    live database or an as-of snapshot unchanged.
    """
    district = reader.get("district", (w_id, d_id))
    if district is None:
        return 0
    next_o_id = district[3]
    lo_order = max(1, next_o_id - recent_orders)
    item_ids = {
        line[4]
        for line in reader.scan(
            "order_line",
            (w_id, d_id, lo_order, 0),
            (w_id, d_id, next_o_id, 0),
        )
    }
    low = 0
    for i_id in sorted(item_ids):
        stock = reader.get("stock", (w_id, i_id))
        if stock is not None and stock[2] < threshold:
            low += 1
    return low
