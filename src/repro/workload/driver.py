"""The TPC-C workload driver: transaction mix, pacing, throughput.

Runs the standard mix against a database while the simulated clock
advances through per-transaction CPU costs, log-manager costs and device
I/O — so ``tpm`` (transactions per simulated minute) is an output of the
cost model, exactly like the paper's tpmC is an output of their hardware.
A periodic :class:`~repro.engine.checkpoint.Checkpointer` keeps the
30-second recovery interval of the paper's section 6 configuration.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.engine.checkpoint import Checkpointer
from repro.obs.timing import host_timing
from repro.workload.tpcc_schema import TpccScale
from repro.workload.tpcc_txns import (
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)

#: The classic TPC-C mix.
DEFAULT_MIX = (
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
)


@dataclass
class TpccResult:
    """Outcome of one driver run."""

    transactions: int = 0
    committed: int = 0
    rolled_back: int = 0
    sim_seconds: float = 0.0
    real_seconds: float = 0.0
    checkpoints: int = 0
    by_type: dict = field(default_factory=dict)

    @property
    def tpm(self) -> float:
        """Transactions per simulated minute (the paper's tpmC analogue)."""
        if self.sim_seconds <= 0:
            return 0.0
        return self.committed * 60.0 / self.sim_seconds

    @property
    def real_tps(self) -> float:
        """Engine throughput in real (host) transactions per second."""
        if self.real_seconds <= 0:
            return 0.0
        return self.committed / self.real_seconds


class TpccDriver:
    """Runs the TPC-C mix against one database."""

    def __init__(
        self,
        db,
        scale: TpccScale,
        seed: int = 1,
        mix=DEFAULT_MIX,
        checkpoint_interval_s: float | None = None,
        #: Simulated per-transaction think/parse overhead.
        think_time_s: float = 0.0,
        #: Read-offload target for the mix's read-only procedures
        #: (order-status, stock-level): anything speaking the reader
        #: protocol — a :class:`~repro.replication.replica.Replica`, its
        #: database, or a snapshot. ``None`` keeps reads on the primary.
        read_reader=None,
        #: Called once per transaction (e.g.
        #: ``engine.replication_tick``) — the simulated stand-in for the
        #: shipper/apply daemons running alongside the workload.
        pump=None,
    ) -> None:
        self.db = db
        self.scale = scale
        self.rng = random.Random(seed)
        self.mix = tuple(mix)
        self.checkpointer = Checkpointer(db, checkpoint_interval_s)
        self.think_time_s = think_time_s
        self.read_reader = read_reader
        self.pump = pump
        self._history_seq = 0
        self._weights = [weight for _name, weight in self.mix]
        self._names = [name for name, _weight in self.mix]

    def _run_one(self, result: TpccResult) -> None:
        kind = self.rng.choices(self._names, weights=self._weights)[0]
        result.by_type[kind] = result.by_type.get(kind, 0) + 1
        if self.think_time_s:
            self.db.env.clock.advance(self.think_time_s)
        committed = True
        if kind == "new_order":
            committed = new_order(self.db, self.rng, self.scale)
        elif kind == "payment":
            self._history_seq += 1
            payment(self.db, self.rng, self.scale, self._history_seq)
        elif kind == "order_status":
            with self._read_guard():
                order_status(self._read_target(), self.rng, self.scale)
        elif kind == "delivery":
            delivery(self.db, self.rng, self.scale)
        elif kind == "stock_level":
            w_id = self.rng.randint(1, self.scale.warehouses)
            d_id = self.rng.randint(1, self.scale.districts_per_warehouse)
            with self._read_guard():
                stock_level(self._read_target(), w_id, d_id, threshold=60)
        result.transactions += 1
        if committed:
            result.committed += 1
        else:
            result.rolled_back += 1
        if self.checkpointer.tick():
            result.checkpoints += 1
        if self.pump is not None:
            self.pump()

    def _read_target(self):
        """Where the mix's read-only procedures run (primary or standby)."""
        return self.read_reader if self.read_reader is not None else self.db

    def _read_guard(self):
        """Serialize a multi-page read against concurrent writers when
        the target is a live database (snapshots are covered by their
        own latch and need no guard)."""
        target = self._read_target()
        latch = getattr(target, "write_latch", None)
        if latch is None and getattr(target, "primary", None) is not None:
            # A Replica read runs against its standby database, whose
            # write latch the apply path holds.
            latch = getattr(getattr(target, "db", None), "write_latch", None)
        return latch if latch is not None else nullcontext()

    def run_transactions(self, count: int) -> TpccResult:
        """Run exactly ``count`` transactions of the mix."""
        result = TpccResult()
        sim_start = self.db.env.clock.now()
        with host_timing() as timer:
            for _ in range(count):
                self._run_one(result)
        result.sim_seconds = self.db.env.clock.now() - sim_start
        result.real_seconds = timer.elapsed
        return result

    def run_for(self, sim_seconds: float) -> TpccResult:
        """Run until the simulated clock has advanced by ``sim_seconds``.

        Requires a cost model or think time that actually advances the
        clock (a zero-cost environment would never terminate).
        """
        result = TpccResult()
        sim_start = self.db.env.clock.now()
        deadline = sim_start + sim_seconds
        with host_timing() as timer:
            while self.db.env.clock.now() < deadline:
                before = self.db.env.clock.now()
                self._run_one(result)
                if self.db.env.clock.now() <= before and not self.think_time_s:
                    raise RuntimeError(
                        "run_for needs a cost model that advances the clock"
                    )
        result.sim_seconds = self.db.env.clock.now() - sim_start
        result.real_seconds = timer.elapsed
        return result

    def stock_level_query(self, reader, w_id: int = 1, d_id: int = 1, threshold: int = 60) -> int:
        """The paper's as-of query against any reader (db or snapshot)."""
        return stock_level(reader, w_id, d_id, threshold)

    def stock_level_as_of(
        self,
        engine,
        as_of,
        w_id: int = 1,
        d_id: int = 1,
        threshold: int = 60,
    ) -> int:
        """The paper's as-of query through the inline pooled path: no
        snapshot DDL, the view is leased from ``engine.snapshot_pool`` and
        released when the query returns."""
        with engine.query_as_of(self.db.name, as_of) as snapshot:
            return stock_level(snapshot, w_id, d_id, threshold)
