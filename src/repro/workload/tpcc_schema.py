"""TPC-C table schemas and the scale configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Column, ColumnType, TableSchema


@dataclass(frozen=True)
class TpccScale:
    """Workload scale knobs (the paper used 800 warehouses / 40 GB; the
    defaults here are laptop-sized while preserving per-page update
    rates)."""

    warehouses: int = 2
    districts_per_warehouse: int = 4
    customers_per_district: int = 30
    items: int = 200
    #: New-order transactions pick this range of line counts.
    min_order_lines: int = 5
    max_order_lines: int = 15
    #: Fraction of new-order transactions that roll back (TPC-C mandates
    #: 1% — it keeps CLRs present in the log stream).
    abort_rate: float = 0.01


def _schema(name: str, cols, key) -> TableSchema:
    return TableSchema(name, cols, key)


WAREHOUSE = _schema(
    "warehouse",
    (
        Column("w_id", ColumnType.INT),
        Column("w_name", ColumnType.STR, max_len=12),
        Column("w_ytd", ColumnType.FLOAT),
    ),
    ("w_id",),
)

DISTRICT = _schema(
    "district",
    (
        Column("w_id", ColumnType.INT),
        Column("d_id", ColumnType.INT),
        Column("d_name", ColumnType.STR, max_len=12),
        Column("d_next_o_id", ColumnType.INT),
        Column("d_ytd", ColumnType.FLOAT),
    ),
    ("w_id", "d_id"),
)

CUSTOMER = _schema(
    "customer",
    (
        Column("w_id", ColumnType.INT),
        Column("d_id", ColumnType.INT),
        Column("c_id", ColumnType.INT),
        Column("c_name", ColumnType.STR, max_len=24),
        Column("c_balance", ColumnType.FLOAT),
        Column("c_ytd_payment", ColumnType.FLOAT),
        Column("c_payment_cnt", ColumnType.INT),
        Column("c_data", ColumnType.STR, max_len=120),
    ),
    ("w_id", "d_id", "c_id"),
)

ITEM = _schema(
    "item",
    (
        Column("i_id", ColumnType.INT),
        Column("i_name", ColumnType.STR, max_len=24),
        Column("i_price", ColumnType.FLOAT),
    ),
    ("i_id",),
)

STOCK = _schema(
    "stock",
    (
        Column("w_id", ColumnType.INT),
        Column("i_id", ColumnType.INT),
        Column("s_quantity", ColumnType.INT),
        Column("s_ytd", ColumnType.INT),
        Column("s_order_cnt", ColumnType.INT),
        Column("s_data", ColumnType.STR, max_len=30),
    ),
    ("w_id", "i_id"),
)

ORDERS = _schema(
    "orders",
    (
        Column("w_id", ColumnType.INT),
        Column("d_id", ColumnType.INT),
        Column("o_id", ColumnType.INT),
        Column("o_c_id", ColumnType.INT),
        Column("o_entry_d", ColumnType.FLOAT),
        Column("o_ol_cnt", ColumnType.INT),
        Column("o_delivered", ColumnType.BOOL),
    ),
    ("w_id", "d_id", "o_id"),
)

NEW_ORDER = _schema(
    "new_order",
    (
        Column("w_id", ColumnType.INT),
        Column("d_id", ColumnType.INT),
        Column("o_id", ColumnType.INT),
    ),
    ("w_id", "d_id", "o_id"),
)

ORDER_LINE = _schema(
    "order_line",
    (
        Column("w_id", ColumnType.INT),
        Column("d_id", ColumnType.INT),
        Column("o_id", ColumnType.INT),
        Column("ol_number", ColumnType.INT),
        Column("ol_i_id", ColumnType.INT),
        Column("ol_quantity", ColumnType.INT),
        Column("ol_amount", ColumnType.FLOAT),
    ),
    ("w_id", "d_id", "o_id", "ol_number"),
)

#: Payment audit trail — a heap, demonstrating the paper's claim that the
#: mechanism covers non-B-tree structures with no special code.
HISTORY = _schema(
    "history",
    (
        Column("h_seq", ColumnType.INT),
        Column("h_w_id", ColumnType.INT),
        Column("h_d_id", ColumnType.INT),
        Column("h_c_id", ColumnType.INT),
        Column("h_amount", ColumnType.FLOAT),
        Column("h_date", ColumnType.FLOAT),
    ),
    ("h_seq",),
)

#: (schema, is_heap) in load order.
TPCC_SCHEMAS: tuple[tuple[TableSchema, bool], ...] = (
    (ITEM, False),
    (WAREHOUSE, False),
    (DISTRICT, False),
    (CUSTOMER, False),
    (STOCK, False),
    (ORDERS, False),
    (NEW_ORDER, False),
    (ORDER_LINE, False),
    (HISTORY, True),
)
