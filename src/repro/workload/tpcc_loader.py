"""Initial TPC-C database population."""

from __future__ import annotations

import random

from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.workload.tpcc_schema import TPCC_SCHEMAS, TpccScale

#: Rows per loading transaction (keeps commits — and log forces — chunky).
_BATCH = 500


def _batched(db, rows_iter, table_name: str) -> int:
    count = 0
    batch = []
    for row in rows_iter:
        batch.append(row)
        if len(batch) >= _BATCH:
            with db.transaction() as txn:
                for item in batch:
                    db.insert(txn, table_name, item)
            count += len(batch)
            batch = []
    if batch:
        with db.transaction() as txn:
            for item in batch:
                db.insert(txn, table_name, item)
        count += len(batch)
    return count


def load_tpcc(db, scale: TpccScale, seed: int = 42) -> dict:
    """Create and populate the TPC-C tables; returns row counts."""
    rng = random.Random(seed)
    for schema, is_heap in TPCC_SCHEMAS:
        db.create_table(schema, heap=is_heap)

    counts = {}
    counts["item"] = _batched(
        db,
        (
            (i, f"item-{i}", round(rng.uniform(1.0, 100.0), 2))
            for i in range(1, scale.items + 1)
        ),
        "item",
    )
    counts["warehouse"] = _batched(
        db,
        ((w, f"wh-{w}", 0.0) for w in range(1, scale.warehouses + 1)),
        "warehouse",
    )
    counts["district"] = _batched(
        db,
        (
            (w, d, f"dist-{w}-{d}", 1, 0.0)
            for w in range(1, scale.warehouses + 1)
            for d in range(1, scale.districts_per_warehouse + 1)
        ),
        "district",
    )
    counts["customer"] = _batched(
        db,
        (
            (
                w,
                d,
                c,
                f"cust-{w}-{d}-{c}",
                0.0,
                0.0,
                0,
                "data" * rng.randint(1, 6),
            )
            for w in range(1, scale.warehouses + 1)
            for d in range(1, scale.districts_per_warehouse + 1)
            for c in range(1, scale.customers_per_district + 1)
        ),
        "customer",
    )
    counts["stock"] = _batched(
        db,
        (
            (w, i, rng.randint(10, 100), 0, 0, "s" * rng.randint(5, 25))
            for w in range(1, scale.warehouses + 1)
            for i in range(1, scale.items + 1)
        ),
        "stock",
    )
    db.checkpoint()
    return counts


def add_filler_table(db, pages: int, name: str = "filler") -> None:
    """Add roughly ``pages`` pages of cold data (two big rows per page).

    Inflates the database to a realistic size so the full-restore baseline
    pays a cost proportional to database size (the asymmetry Figures 7/8
    measure) without slowing the hot workload down.
    """
    row_bytes = db.config.page_size // 2 - 250  # two rows per page
    schema = TableSchema(
        name,
        (
            Column("f_id", ColumnType.INT),
            Column("f_payload", ColumnType.BYTES, max_len=row_bytes),
        ),
        ("f_id",),
    )
    db.create_table(schema)
    payload = b"\xc0" * row_bytes
    _batched(db, ((i, payload) for i in range(pages * 2)), name)
    db.checkpoint()
