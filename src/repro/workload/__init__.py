"""Scaled-down TPC-C workload (the paper's evaluation substrate).

The paper benchmarks with an internal scaled-down TPC-C (800 warehouses,
40 GB). This package implements the same schema and transaction mix at a
configurable (much smaller) scale: new-order and payment drive the update
stream whose log the as-of machinery rewinds, and the stock-level
procedure is the as-of query measured in Figures 7-11.
"""

from repro.workload.driver import TpccDriver, TpccResult
from repro.workload.tpcc_loader import add_filler_table, load_tpcc
from repro.workload.tpcc_schema import TPCC_SCHEMAS, TpccScale
from repro.workload.tpcc_txns import (
    delivery,
    new_order,
    order_status,
    payment,
    stock_level,
)

__all__ = [
    "TpccScale",
    "TPCC_SCHEMAS",
    "load_tpcc",
    "add_filler_table",
    "new_order",
    "payment",
    "order_status",
    "delivery",
    "stock_level",
    "TpccDriver",
    "TpccResult",
]
