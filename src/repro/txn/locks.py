"""Lock manager: shared/exclusive locks with wait-for-graph deadlock checks.

Lock keys are hashable tuples — ``(object_id,)`` for object locks,
``(object_id, key_bytes)`` for row locks. Conflicts never park a thread
inside the lock manager; instead:

* if a *resolver* is installed, it is invoked to make progress (as-of
  snapshots use this: a query hitting a lock held by an in-flight
  transaction drives that transaction's background undo to completion,
  modeling the paper's "redo pass reacquires the locks" behavior);
* otherwise the request raises — :class:`DeadlockError` when the wait-for
  graph (networkx) would acquire a cycle, :class:`LockConflictError`
  otherwise, and the caller (a test interleaving transactions, or the
  engine aborting a victim) decides what to do.

``self.latch`` serializes the lock table and wait map across sessions.
It is deliberately *released* around the resolver callback: the resolver
re-enters snapshot and log code whose latches sit above the lock manager
in the engine's lock order (see ``docs/concurrency.md``), so holding the
lock-manager latch across it would invert that order.
"""

from __future__ import annotations

import enum

import networkx as nx

from repro.errors import DeadlockError, LockError
from repro.latch import Latch


class LockConflictError(LockError):
    """The request conflicts with locks held by other transactions."""

    def __init__(self, key, holders) -> None:
        self.key = key
        self.holders = frozenset(holders)
        super().__init__(f"lock {key!r} held by transactions {sorted(holders)}")


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


class _Entry:
    __slots__ = ("holders",)

    def __init__(self) -> None:
        #: txn_id -> LockMode
        self.holders: dict[int, LockMode] = {}


class LockManager:
    """Lock table for one database (primary or snapshot)."""

    def __init__(self) -> None:
        self.latch = Latch("lock_manager")
        self._table: dict[tuple, _Entry] = {}
        #: Declared waits: txn_id -> (key, mode); persists across retries so
        #: genuine deadlocks between interleaved transactions are detected.
        self._waits: dict[int, tuple] = {}
        #: Optional callable ``resolver(key, holders) -> bool`` that makes
        #: progress on conflicts (returns True when worth re-checking).
        self.resolver = None

    # ------------------------------------------------------------------

    def _conflicts(self, entry: _Entry, txn_id: int, mode: LockMode):
        """Transaction ids whose holdings block this request."""
        blockers = set()
        for holder, held in entry.holders.items():
            if holder == txn_id:
                continue
            if mode is LockMode.EXCLUSIVE or held is LockMode.EXCLUSIVE:
                blockers.add(holder)
        return blockers

    def _would_deadlock(self, txn_id: int, blockers) -> bool:
        graph = nx.DiGraph()
        for waiter, (key, _mode) in self._waits.items():
            entry = self._table.get(key)
            if entry is None:
                continue
            for holder in entry.holders:
                if holder != waiter:
                    graph.add_edge(waiter, holder)
        for blocker in blockers:
            graph.add_edge(txn_id, blocker)
        try:
            nx.find_cycle(graph, source=txn_id)
        except nx.NetworkXNoCycle:
            return False
        return True

    # ------------------------------------------------------------------

    def acquire(self, txn, key: tuple, mode: LockMode, stats=None) -> None:
        """Grant ``mode`` on ``key`` to ``txn`` or raise.

        Re-acquiring an already-held lock is a no-op; holding SHARED and
        requesting EXCLUSIVE upgrades when no other holder exists.
        """
        attempts = 0
        while True:
            with self.latch:
                entry = self._table.setdefault(key, _Entry())
                blockers = self._conflicts(entry, txn.txn_id, mode)
                if not blockers:
                    self._waits.pop(txn.txn_id, None)
                    held = entry.holders.get(txn.txn_id)
                    if held is None or (
                        held is LockMode.SHARED and mode is LockMode.EXCLUSIVE
                    ):
                        entry.holders[txn.txn_id] = mode
                    txn.locks.add(key)
                    return
                if stats is not None:
                    stats.lock_waits += 1
                if self._would_deadlock(txn.txn_id, blockers):
                    if stats is not None:
                        stats.deadlocks += 1
                    raise DeadlockError(
                        f"transaction {txn.txn_id} would deadlock on {key!r} "
                        f"(holders {sorted(blockers)})"
                    )
                self._waits[txn.txn_id] = (key, mode)
            # Resolver runs *outside* the latch: it re-enters snapshot/log
            # code whose latches precede this one in the lock order. The
            # conflict is re-checked from scratch on the next loop pass —
            # the world may have changed while the latch was released.
            resolved = False
            if self.resolver is not None and attempts < 64:
                resolved = bool(self.resolver(key, blockers))
                attempts += 1
            if not resolved:
                raise LockConflictError(key, blockers)

    def release_all(self, txn) -> None:
        """Drop every lock ``txn`` holds (commit/abort)."""
        with self.latch:
            for key in txn.locks:
                entry = self._table.get(key)
                if entry is not None:
                    entry.holders.pop(txn.txn_id, None)
                    if not entry.holders:
                        del self._table[key]
            txn.locks.clear()
            self._waits.pop(txn.txn_id, None)

    # ------------------------------------------------------------------

    def holders_of(self, key: tuple) -> frozenset:
        with self.latch:
            entry = self._table.get(key)
            return frozenset(entry.holders) if entry else frozenset()

    def held_by(self, txn_id: int) -> list[tuple]:
        with self.latch:
            return [
                key
                for key, entry in self._table.items()
                if txn_id in entry.holders
            ]

    def lock_count(self) -> int:
        with self.latch:
            return sum(len(entry.holders) for entry in self._table.values())
