"""Transaction objects: identity, state, log chain head, lock set."""

from __future__ import annotations

import enum

from repro.errors import TransactionError
from repro.wal.lsn import NULL_LSN


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One transaction's volatile state.

    ``last_lsn`` heads the backward chain (via each record's
    ``prev_txn_lsn``) that rollback and recovery undo walk. System
    transactions (``is_system``) wrap B-tree structure modifications and
    engine housekeeping; they commit immediately and are undone
    *physically* if they lose at a crash.
    """

    __slots__ = (
        "txn_id",
        "state",
        "last_lsn",
        "first_lsn",
        "locks",
        "is_system",
        "began_wall",
        "savepoints",
    )

    def __init__(self, txn_id: int, *, is_system: bool = False, began_wall: float = 0.0) -> None:
        self.txn_id = txn_id
        self.state = TxnState.ACTIVE
        self.last_lsn = NULL_LSN
        #: LSN of the BEGIN record; retention never truncates past the
        #: oldest active transaction's first_lsn.
        self.first_lsn = NULL_LSN
        self.locks: set[tuple] = set()
        self.is_system = is_system
        self.began_wall = began_wall
        #: Savepoint name -> last_lsn at the time of the savepoint.
        self.savepoints: dict[str, int] = {}

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    def require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    def __repr__(self) -> str:
        kind = "system " if self.is_system else ""
        return (
            f"Transaction({kind}id={self.txn_id}, state={self.state.value}, "
            f"last_lsn={self.last_lsn:#x})"
        )


class RecoveredTransaction(Transaction):
    """A loser transaction reconstructed by recovery's analysis pass.

    Behaves like an active transaction for the undo machinery; its
    ``last_lsn`` comes from the log scan rather than live execution.
    """

    __slots__ = ()
