"""Logical undo: shared by rollback, crash recovery, and as-of snapshots.

Walks a transaction's log chain backwards and compensates each undoable
record. Three undo disciplines, chosen per record:

* **Logical (key-based)** for ordinary B-tree row operations: the row is
  re-located by key through the tree, because other transactions may have
  shifted slots and structure modifications may have moved rows across
  pages since the record was written.
* **Physical (slot-based)** for structure-modification records and
  system/boot page records: SMO system transactions are the last writers
  of their pages when they lose (mid-flight at a crash), so slots are
  valid by construction.
* **Tombstone** for heap inserts: heap slots are never shifted, the
  payload is simply replaced by an empty marker.

Every compensation is a :class:`ClrRecord` whose nested ``comp`` record
embeds undo information when the paper's ``clr_undo_info`` extension is
enabled (section 4.2), keeping the page chain physically undoable through
the rollback.

The same machinery runs against an as-of snapshot (with an unlogged
modifier and snapshot-backed trees) to implement section 5.2's background
logical undo of transactions in flight at the SplitLSN.
"""

from __future__ import annotations

from repro.errors import RecoveryError
from repro.txn.transaction import Transaction
from repro.wal.lsn import NULL_LSN
from repro.wal.records import (
    AllocPageRecord,
    BeginRecord,
    ClrRecord,
    DeallocPageRecord,
    DeformatPageRecord,
    DeleteRowRecord,
    FormatPageRecord,
    InsertRowRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
    SetLinksRecord,
    UpdateRowRecord,
)


class LogicalUndo:
    """Undo driver bound to an undo context (database or snapshot).

    The context supplies:

    * ``modifier`` — logged (primary) or unlogged (snapshot) page modifier;
    * ``log`` — the log manager (for chain walks and derivations);
    * ``fetch_page(page_id)`` — pinned page access;
    * ``tree_for_object(object_id)`` — key-addressable B-tree accessor.
    """

    def __init__(self, ctx) -> None:
        self.ctx = ctx

    # ------------------------------------------------------------------

    def rollback_chain(
        self,
        txn: Transaction,
        from_lsn: int,
        *,
        stop_before_lsn: int = NULL_LSN,
    ) -> None:
        """Undo the transaction's records from ``from_lsn`` back to BEGIN.

        ``stop_before_lsn`` lets recovery resume a partially-rolled-back
        transaction without redoing completed compensations.
        """
        log = self.ctx.log
        cur = from_lsn
        while cur != NULL_LSN and cur >= stop_before_lsn:
            rec = log.read(cur)
            if isinstance(rec, BeginRecord):
                return
            if isinstance(rec, ClrRecord):
                cur = rec.undo_next_lsn
                continue
            if not rec.UNDOABLE_IN_ROLLBACK:
                cur = rec.prev_txn_lsn
                continue
            self.undo_record(txn, rec)
            cur = rec.prev_txn_lsn

    # ------------------------------------------------------------------

    def undo_record(self, txn: Transaction, rec: LogRecord) -> None:
        """Compensate one log record."""
        self.ctx.env.charge_cpu(self.ctx.env.cost.undo_record_cpu_s)
        if isinstance(rec, (InsertRowRecord, DeleteRowRecord, UpdateRowRecord)):
            if rec.is_smo or rec.object_id == 0:
                self._undo_physical_row(txn, rec)
            elif rec.is_heap and isinstance(rec, InsertRowRecord):
                self._undo_heap_insert(txn, rec)
            else:
                self._undo_logical_row(txn, rec)
        elif isinstance(rec, SetLinksRecord):
            comp = SetLinksRecord(
                old_prev=rec.new_prev,
                old_next=rec.new_next,
                new_prev=rec.old_prev,
                new_next=rec.old_next,
                page_id=rec.page_id,
                object_id=rec.object_id,
                flags=rec.flags,
            )
            self._apply_clr(txn, rec, comp, rec.page_id)
        elif isinstance(rec, FormatPageRecord):
            comp = None
            if rec.prev_page_lsn != NULL_LSN:
                prior = self.ctx.log.read(rec.prev_page_lsn)
                if isinstance(prior, PreformatPageRecord):
                    # In-place reformat (root split) or re-allocation: the
                    # page held real content before the format — restore it.
                    comp = PageImageRecord(
                        image=prior.image,
                        page_id=rec.page_id,
                        object_id=rec.object_id,
                    )
            if comp is None:
                comp = DeformatPageRecord(
                    page_type=rec.page_type,
                    index_id=rec.index_id,
                    level=rec.level,
                    page_id=rec.page_id,
                    object_id=rec.object_id,
                )
            self._apply_clr(txn, rec, comp, rec.page_id)
        elif isinstance(rec, AllocPageRecord):
            comp = DeallocPageRecord(
                target_page=rec.target_page,
                clear_ever=not rec.was_ever_allocated,
                page_id=rec.page_id,
            )
            self._apply_clr(txn, rec, comp, rec.page_id)
        elif isinstance(rec, DeallocPageRecord):
            comp = AllocPageRecord(
                target_page=rec.target_page,
                was_ever_allocated=True,
                page_id=rec.page_id,
            )
            self._apply_clr(txn, rec, comp, rec.page_id)
        else:
            raise RecoveryError(
                f"no undo handler for {type(rec).__name__} at lsn {rec.lsn:#x}"
            )

    # ------------------------------------------------------------------
    # Undo flavors
    # ------------------------------------------------------------------

    def _apply_clr(self, txn, rec: LogRecord, comp: LogRecord, page_id: int) -> None:
        clr = ClrRecord(
            compensated_lsn=rec.lsn,
            undo_next_lsn=rec.prev_txn_lsn,
            comp=comp,
            page_id=page_id,
            object_id=comp.object_id,
            flags=rec.flags,
        )
        with self.ctx.fetch_page(page_id) as guard:
            self.ctx.modifier.apply(txn, guard, clr)

    def _undo_physical_row(self, txn, rec) -> None:
        """Slot-exact inverse on the original page (SMO / boot records)."""
        ext = self.ctx.modifier.extensions
        if isinstance(rec, InsertRowRecord):
            comp = DeleteRowRecord(
                slot=rec.slot,
                row=rec.row if ext.clr_undo_info else None,
                key_bytes=rec.key_bytes,
                pair_lsn=rec.lsn,
                page_id=rec.page_id,
                object_id=rec.object_id,
                flags=rec.flags,
            )
        elif isinstance(rec, DeleteRowRecord):
            row = rec.resolve_row(self.ctx.log.undo_fetch)
            comp = InsertRowRecord(
                slot=rec.slot,
                row=row,
                key_bytes=rec.key_bytes,
                page_id=rec.page_id,
                object_id=rec.object_id,
                flags=rec.flags,
            )
        else:  # UpdateRowRecord
            if rec.old is None:
                raise RecoveryError(
                    f"update at lsn {rec.lsn:#x} has no before-image"
                )
            comp = UpdateRowRecord(
                slot=rec.slot,
                new=rec.old,
                old=rec.new if ext.clr_undo_info else None,
                key_bytes=rec.key_bytes,
                page_id=rec.page_id,
                object_id=rec.object_id,
                flags=rec.flags,
            )
        self._apply_clr(txn, rec, comp, rec.page_id)

    def _undo_heap_insert(self, txn, rec: InsertRowRecord) -> None:
        """Tombstone the heap slot (heap slots are stable, never shifted)."""
        ext = self.ctx.modifier.extensions
        comp = UpdateRowRecord(
            slot=rec.slot,
            new=b"",
            old=rec.row if ext.clr_undo_info else None,
            key_bytes=rec.key_bytes,
            page_id=rec.page_id,
            object_id=rec.object_id,
            flags=rec.flags,
        )
        self._apply_clr(txn, rec, comp, rec.page_id)

    def _undo_logical_row(self, txn, rec) -> None:
        """Key-based undo through the object's B-tree."""
        tree = self.ctx.tree_for_object(rec.object_id)
        if tree is None:
            raise RecoveryError(
                f"cannot undo lsn {rec.lsn:#x}: unknown object {rec.object_id}"
            )
        if isinstance(rec, InsertRowRecord):
            tree.undo_insert(txn, rec)
        elif isinstance(rec, DeleteRowRecord):
            tree.undo_delete(txn, rec)
        else:
            tree.undo_update(txn, rec)
