"""Transaction manager: begin/commit/rollback and the active table."""

from __future__ import annotations

from repro.config import SimEnv
from repro.errors import TransactionError
from repro.txn.locks import LockManager
from repro.txn.transaction import Transaction, TxnState
from repro.wal.log_manager import LogManager
from repro.wal.records import AbortRecord, BeginRecord, CommitRecord


class TransactionManager:
    """Transaction lifecycle for one database.

    ``undo_context`` (set by the owning database once its access paths
    exist) supplies the logical-undo machinery rollback needs: page
    fetches, the logged page modifier, and key-addressable trees.
    """

    def __init__(self, env: SimEnv, log: LogManager, locks: LockManager) -> None:
        self.env = env
        self.log = log
        self.locks = locks
        self._next_txn_id = 1
        self._active: dict[int, Transaction] = {}
        #: Installed by Database; see :mod:`repro.txn.undo`.
        self.undo_context = None

    # ------------------------------------------------------------------

    def begin(self, *, system: bool = False) -> Transaction:
        """Start a transaction (system transactions wrap SMOs and
        housekeeping; they commit immediately after their work)."""
        txn = Transaction(
            self._next_txn_id,
            is_system=system,
            began_wall=self.env.clock.now(),
        )
        self._next_txn_id += 1
        rec = BeginRecord(txn_id=txn.txn_id)
        txn.last_lsn = self.log.append(rec)
        txn.first_lsn = txn.last_lsn
        self._active[txn.txn_id] = txn
        return txn

    def commit(self, txn: Transaction) -> None:
        """Commit: log the commit record (stamped with the simulated wall
        clock for SplitLSN search), force the log, release locks.

        System transactions skip the log force — their durability rides on
        the WAL rule like any other record, and an unforced system commit
        that loses a crash race is simply rolled back by recovery.
        """
        txn.require_active()
        rec = CommitRecord(
            wall_clock=self.env.clock.now(),
            txn_id=txn.txn_id,
            prev_txn_lsn=txn.last_lsn,
        )
        txn.last_lsn = self.log.append(rec)
        if not txn.is_system:
            self.log.flush()
            self.env.charge_cpu(self.env.cost.txn_overhead_cpu_s)
            self.env.stats.transactions_committed += 1
        txn.state = TxnState.COMMITTED
        self.locks.release_all(txn)
        self._active.pop(txn.txn_id, None)

    def rollback(self, txn: Transaction) -> None:
        """Logically undo everything the transaction did, then log ABORT."""
        txn.require_active()
        if self.undo_context is None:
            raise TransactionError("no undo context installed")
        from repro.txn.undo import LogicalUndo

        LogicalUndo(self.undo_context).rollback_chain(txn, txn.last_lsn)
        rec = AbortRecord(txn_id=txn.txn_id, prev_txn_lsn=txn.last_lsn)
        txn.last_lsn = self.log.append(rec)
        txn.state = TxnState.ABORTED
        self.locks.release_all(txn)
        self._active.pop(txn.txn_id, None)
        if not txn.is_system:
            self.env.stats.transactions_aborted += 1

    # ------------------------------------------------------------------
    # Savepoints (ARIES partial rollback)
    # ------------------------------------------------------------------

    def savepoint(self, txn: Transaction, name: str) -> None:
        """Mark a savepoint: a later partial rollback returns here."""
        txn.require_active()
        txn.savepoints[name] = txn.last_lsn

    def rollback_to_savepoint(self, txn: Transaction, name: str) -> None:
        """Logically undo everything the transaction did after ``name``.

        The transaction stays active and keeps its locks (standard ARIES
        savepoint semantics); compensations are CLRs, so a crash mid-way
        resumes correctly and as-of queries can rewind through it.
        """
        txn.require_active()
        target = txn.savepoints.get(name)
        if target is None:
            raise TransactionError(
                f"transaction {txn.txn_id} has no savepoint {name!r}"
            )
        if self.undo_context is None:
            raise TransactionError("no undo context installed")
        from repro.txn.undo import LogicalUndo

        LogicalUndo(self.undo_context).rollback_chain(
            txn, txn.last_lsn, stop_before_lsn=target + 1
        )
        # Later savepoints are invalidated by the rollback.
        txn.savepoints = {
            sp_name: lsn
            for sp_name, lsn in txn.savepoints.items()
            if lsn <= target
        }

    # ------------------------------------------------------------------

    def active_transactions(self) -> list[Transaction]:
        return list(self._active.values())

    def active_table(self) -> tuple:
        """(txn_id, last_lsn) pairs for the checkpoint record."""
        return tuple(
            (txn.txn_id, txn.last_lsn) for txn in self._active.values()
        )

    def adopt_txn_id_floor(self, floor: int) -> None:
        """Ensure future transaction ids exceed ``floor`` (after recovery)."""
        if floor >= self._next_txn_id:
            self._next_txn_id = floor + 1
