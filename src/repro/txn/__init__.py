"""Transactions: locking, lifecycle, rollback with CLR generation.

Rollback performs *logical* undo — rows are re-located by key because
other transactions or B-tree structure modifications may have moved them —
and writes compensation log records, which (with the paper's section 4.2
extension) remain physically undoable so as-of queries can rewind through
a rollback.
"""

from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction, TxnState

__all__ = [
    "LockManager",
    "LockMode",
    "Transaction",
    "TxnState",
    "TransactionManager",
]
