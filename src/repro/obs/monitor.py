"""The engine monitor: recorder + alert engine + health, one tick.

:class:`EngineMonitor` bundles a
:class:`~repro.obs.timeseries.MetricsRecorder` and an
:class:`~repro.obs.alerts.AlertEngine` behind the single ``tick()`` the
engine calls from its pump points (SQL dispatch, ``replication_tick``).
A tick samples only when the sim-clock cadence is due and evaluates the
rules only when a sample actually ran, so alert timelines are a pure
function of the simulated execution — the determinism contract the
``SHOW HISTORY`` / ``SHOW ALERTS`` byte-identity tests pin down.

``self.latch`` makes ``tick`` and ``remove_prefix`` mutually atomic:
a session's pump-point tick and a concurrent ``DROP DATABASE`` purge
serialize as whole units, so a drop never lands between a tick's
sample and its rule evaluation (which could otherwise briefly alert on
series the drop was in the middle of forgetting).
"""

from __future__ import annotations

from repro.latch import Latch
from repro.obs.alerts import AlertEngine, builtin_rules
from repro.obs.health import rollup
from repro.obs.timeseries import MetricsRecorder

#: Canonical monitor document schema identifier.
MONITOR_SCHEMA = "repro.obs.monitor/v1"


class EngineMonitor:
    """Continuous monitoring over one metrics registry."""

    def __init__(
        self,
        registry,
        clock,
        config,
        *,
        rules=None,
        like: str | None = None,
    ) -> None:
        self.latch = Latch("engine_monitor")
        self.config = config
        self.recorder = MetricsRecorder(
            registry,
            clock,
            interval_s=config.sample_interval_s,
            capacity=config.history_samples,
            like=like,
        )
        self.alerts = AlertEngine(
            self.recorder, events_capacity=config.events_capacity
        )
        for rule in builtin_rules(config) if rules is None else rules:
            self.alerts.add_rule(rule)

    def start(self) -> None:
        with self.latch:
            self.recorder.start()
            self.alerts.evaluate()

    def tick(self) -> bool:
        """One pump-point tick; returns whether a sample+evaluation ran."""
        with self.latch:
            if not self.recorder.maybe_sample():
                return False
            self.alerts.evaluate()
            return True

    # -- read side ------------------------------------------------------

    def history(self, like: str | None = None, window_s: float | None = None) -> dict:
        return self.recorder.history(like, window_s)

    def active_alerts(self) -> list[dict]:
        return self.alerts.active()

    def alert_rows(self) -> list[dict]:
        return self.alerts.rows()

    def events(self) -> list[dict]:
        return self.alerts.events()

    def health(self) -> dict:
        return rollup(self.alerts)

    def on_alert(self, pattern: str, callback) -> None:
        self.alerts.subscribe(pattern, callback)

    def as_dict(self, like: str | None = None) -> dict:
        return {
            "schema": MONITOR_SCHEMA,
            "history": self.recorder.as_dict(like),
            "alerts": self.alerts.as_dict(),
            "health": self.health(),
        }

    # -- lifecycle ------------------------------------------------------

    def remove_prefix(self, prefix: str) -> None:
        """Purge a dropped database/replica from history and alert state."""
        with self.latch:
            self.recorder.remove_prefix(prefix)
            self.alerts.remove_prefix(prefix)
