"""Rendering and flattening of canonical metrics snapshots.

Everything that leaves the engine — ``SHOW METRICS`` rows, ``python -m
repro.tools.obs`` text mode, benchmark payloads — goes through the one
document produced by :meth:`MetricsRegistry.snapshot`; these helpers
only reshape it.
"""

from __future__ import annotations


def flatten_snapshot(snap: dict) -> dict:
    """Flatten a canonical snapshot to ``{metric_name: number}``.

    Counters and gauges map directly; each histogram contributes its
    ``.count`` and ``.sum``. Keys come back sorted, which is what ``SHOW
    METRICS`` renders row-by-row.
    """
    flat: dict = {}
    flat.update(snap.get("counters", {}))
    flat.update(snap.get("gauges", {}))
    for name, hist in snap.get("histograms", {}).items():
        flat[f"{name}.count"] = hist["count"]
        flat[f"{name}.sum"] = hist["sum"]
    return dict(sorted(flat.items()))


def histogram_quantile(hist: dict, q: float) -> float | None:
    """The ``q``-quantile of one snapshot histogram, linearly
    interpolated inside its fixed buckets.

    The rank is located in the cumulative bucket counts, then mapped to
    a value between the bucket's lower and upper bound proportionally to
    its position inside the bucket (the classic Prometheus
    ``histogram_quantile`` estimate). Observations in the overflow
    bucket clamp to the top bound — the histogram has no upper edge to
    interpolate toward. ``None`` when the histogram is empty.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} must be in [0, 1]")
    total = hist["count"]
    if total == 0:
        return None
    rank = q * total
    seen = 0
    lo = 0.0
    for bound, count in hist["buckets"]:
        if count and seen + count >= rank:
            fraction = (rank - seen) / count
            return lo + (bound - lo) * fraction
        seen += count
        lo = bound
    return lo  # rank landed in the overflow bucket: clamp to top bound


def histogram_percentiles(hist: dict, qs=(0.5, 0.95, 0.99)) -> dict:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for one histogram."""
    return {f"p{round(q * 100)}": histogram_quantile(hist, q) for q in qs}


def format_metric_value(value) -> str:
    """One metric value as text (floats shortened, ints exact)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def metrics_to_text(snap: dict) -> list[str]:
    """Human-readable lines for one canonical snapshot."""
    return [
        f"{name} = {format_metric_value(value)}"
        for name, value in flatten_snapshot(snap).items()
    ]
