"""Rendering and flattening of canonical metrics snapshots.

Everything that leaves the engine — ``SHOW METRICS`` rows, ``python -m
repro.tools.obs`` text mode, benchmark payloads — goes through the one
document produced by :meth:`MetricsRegistry.snapshot`; these helpers
only reshape it.
"""

from __future__ import annotations


def flatten_snapshot(snap: dict) -> dict:
    """Flatten a canonical snapshot to ``{metric_name: number}``.

    Counters and gauges map directly; each histogram contributes its
    ``.count`` and ``.sum``. Keys come back sorted, which is what ``SHOW
    METRICS`` renders row-by-row.
    """
    flat: dict = {}
    flat.update(snap.get("counters", {}))
    flat.update(snap.get("gauges", {}))
    for name, hist in snap.get("histograms", {}).items():
        flat[f"{name}.count"] = hist["count"]
        flat[f"{name}.sum"] = hist["sum"]
    return dict(sorted(flat.items()))


def format_metric_value(value) -> str:
    """One metric value as text (floats shortened, ints exact)."""
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def metrics_to_text(snap: dict) -> list[str]:
    """Human-readable lines for one canonical snapshot."""
    return [
        f"{name} = {format_metric_value(value)}"
        for name, value in flatten_snapshot(snap).items()
    ]
