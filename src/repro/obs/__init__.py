"""Engine-wide observability: metrics registry, tracer, timing boundary.

Three layers, one schema:

* :mod:`repro.obs.registry` — typed instruments (counters, gauges,
  histograms with deterministic sim-time buckets) in one
  :class:`~repro.obs.registry.MetricsRegistry` per
  :class:`~repro.config.SimEnv`. ``registry.snapshot()`` is the canonical
  JSON document consumed by ``SHOW METRICS``, ``python -m
  repro.tools.obs``, the benchmarks and the CI perf gate.
* :mod:`repro.obs.tracer` — span-based tracing of a single request.
  Spans are timed on the *simulated* clock and carry per-span I/O-counter
  deltas, so a trace of a seeded run is replay-deterministic
  byte-for-byte.
* :mod:`repro.obs.timing` — the host-clock boundary for real-time
  measurements (benchmark wall clocks, CLI elapsed). reprolint rule
  RL006 bans bare ``host_perf_counter()`` deltas outside ``obs/`` and
  ``sim/``; :func:`host_timing` is the sanctioned spelling.

On top of the point-in-time layer sits continuous monitoring:

* :mod:`repro.obs.timeseries` — a :class:`MetricsRecorder` sampling the
  canonical snapshot into bounded ring-buffer series on a sim-clock
  cadence, with windowed last/min/max/mean/rate queries.
* :mod:`repro.obs.alerts` — a deterministic :class:`AlertEngine` with
  declarative threshold/derivative/absence rules, for-duration
  debouncing, firing→cleared transitions, and subscriber callbacks.
* :mod:`repro.obs.health` — :func:`rollup` folding active alerts into
  per-subsystem OK/DEGRADED/CRITICAL verdicts.
* :mod:`repro.obs.monitor` — :class:`EngineMonitor` bundling the three
  behind the single ``tick()`` the engine pumps.
* :mod:`repro.obs.slowlog` — :class:`SlowQueryLog`, a bounded ring of
  rendered span trees for statements over the slow threshold.
"""

from repro.obs.alerts import ALERTS_SCHEMA, AlertEngine, AlertRule, builtin_rules
from repro.obs.export import (
    flatten_snapshot,
    format_metric_value,
    histogram_percentiles,
    histogram_quantile,
    metrics_to_text,
)
from repro.obs.health import CRITICAL, DEGRADED, HEALTH_SCHEMA, OK, rollup
from repro.obs.monitor import MONITOR_SCHEMA, EngineMonitor
from repro.obs.slowlog import SlowQueryLog
from repro.obs.timeseries import HISTORY_SCHEMA, MetricsRecorder, Series, summarize
from repro.obs.registry import (
    DEFAULT_SIM_TIME_BUCKETS_S,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timing import HostTimer, host_timing
from repro.obs.tracer import Span, Trace, Tracer

__all__ = [
    "ALERTS_SCHEMA",
    "CRITICAL",
    "DEFAULT_SIM_TIME_BUCKETS_S",
    "DEGRADED",
    "HEALTH_SCHEMA",
    "HISTORY_SCHEMA",
    "METRICS_SCHEMA",
    "MONITOR_SCHEMA",
    "OK",
    "AlertEngine",
    "AlertRule",
    "Counter",
    "EngineMonitor",
    "Gauge",
    "Histogram",
    "HostTimer",
    "MetricsRecorder",
    "MetricsRegistry",
    "Series",
    "SlowQueryLog",
    "Span",
    "Trace",
    "Tracer",
    "builtin_rules",
    "flatten_snapshot",
    "format_metric_value",
    "histogram_percentiles",
    "histogram_quantile",
    "host_timing",
    "metrics_to_text",
    "rollup",
    "summarize",
]
