"""Engine-wide observability: metrics registry, tracer, timing boundary.

Three layers, one schema:

* :mod:`repro.obs.registry` — typed instruments (counters, gauges,
  histograms with deterministic sim-time buckets) in one
  :class:`~repro.obs.registry.MetricsRegistry` per
  :class:`~repro.config.SimEnv`. ``registry.snapshot()`` is the canonical
  JSON document consumed by ``SHOW METRICS``, ``python -m
  repro.tools.obs``, the benchmarks and the CI perf gate.
* :mod:`repro.obs.tracer` — span-based tracing of a single request.
  Spans are timed on the *simulated* clock and carry per-span I/O-counter
  deltas, so a trace of a seeded run is replay-deterministic
  byte-for-byte.
* :mod:`repro.obs.timing` — the host-clock boundary for real-time
  measurements (benchmark wall clocks, CLI elapsed). reprolint rule
  RL006 bans bare ``host_perf_counter()`` deltas outside ``obs/`` and
  ``sim/``; :func:`host_timing` is the sanctioned spelling.
"""

from repro.obs.export import flatten_snapshot, format_metric_value, metrics_to_text
from repro.obs.registry import (
    DEFAULT_SIM_TIME_BUCKETS_S,
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.timing import HostTimer, host_timing
from repro.obs.tracer import Span, Trace, Tracer

__all__ = [
    "DEFAULT_SIM_TIME_BUCKETS_S",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "HostTimer",
    "MetricsRegistry",
    "Span",
    "Trace",
    "Tracer",
    "flatten_snapshot",
    "format_metric_value",
    "host_timing",
    "metrics_to_text",
]
