"""Health rollup: fold active alerts into per-subsystem verdicts.

Health is pure derivation — no state of its own. Every rule declares a
``subsystem``; a subsystem with no firing alerts is OK, one with a
firing ``warning`` is DEGRADED, one with a firing ``critical`` is
CRITICAL, and the overall verdict is the worst across subsystems. The
rollup lists every subsystem the installed rules cover (not just the
unhappy ones) so ``SHOW HEALTH`` reads as a complete status board.
"""

from __future__ import annotations

#: Canonical health document schema identifier.
HEALTH_SCHEMA = "repro.obs.health/v1"

OK = "OK"
DEGRADED = "DEGRADED"
CRITICAL = "CRITICAL"

_SEVERITY_VERDICT = {"warning": DEGRADED, "critical": CRITICAL}
_RANK = {OK: 0, DEGRADED: 1, CRITICAL: 2}


def worst(a: str, b: str) -> str:
    return a if _RANK[a] >= _RANK[b] else b


def rollup(alert_engine) -> dict:
    """The health document for the current alert state."""
    subsystems: dict[str, dict] = {}
    for rule in alert_engine.rules():
        subsystems.setdefault(rule.subsystem, {"verdict": OK, "alerts": []})
    for row in alert_engine.active():
        entry = subsystems.setdefault(row["subsystem"], {"verdict": OK, "alerts": []})
        entry["verdict"] = worst(entry["verdict"], _SEVERITY_VERDICT[row["severity"]])
        entry["alerts"].append(
            {"rule": row["rule"], "metric": row["metric"], "severity": row["severity"]}
        )
    overall = OK
    for entry in subsystems.values():
        overall = worst(overall, entry["verdict"])
    return {
        "schema": HEALTH_SCHEMA,
        "overall": overall,
        "subsystems": {name: subsystems[name] for name in sorted(subsystems)},
    }
