"""Deterministic alert engine over recorded metrics history.

Rules are declarative (:class:`AlertRule`): a metric glob, a condition
kind (``threshold`` on the latest value, ``derivative`` on the windowed
rate-of-change, ``absence`` when a metric is missing or stale), an
optional ``for_s`` debounce, and a severity that the health rollup maps
to DEGRADED/CRITICAL. Evaluation reads only the recorder's series and
the sim clock, so the full firing→cleared timeline of a seeded run is
byte-identical across runs — which is what lets CI diff alert histories
and lets tests assert exact transition timestamps.

Each (rule, matched metric) pair owns a tiny state machine:

    ok --breach--> pending --held for_s--> firing --recover--> cleared

``pending`` exists only when ``for_s > 0`` (debounce: the breach must
hold for that many sim-seconds before the alert fires). Transitions into
and out of ``firing`` append an event to a bounded timeline and notify
any subscribed callbacks — the hook ROADMAP item 4's failover logic will
use to react to ``repl.apply_lag`` firings.

Mutable tables here (``_conditions``, ``_events``) are owned by this
module (RL005); readers go through :meth:`active`/:meth:`rows`/
:meth:`events` and drop paths through :meth:`remove_prefix`. All of
them sit under ``self.latch``, so a concurrent ``monitor_tick`` and
``drop_database`` interleave as whole evaluations against whole purges
— never a dict mutated mid-iteration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.latch import Latch

#: Canonical alert-event schema identifier.
ALERTS_SCHEMA = "repro.obs.alerts/v1"

#: Default bounded capacity of the firing/cleared event timeline.
DEFAULT_EVENTS_CAPACITY = 256

SEVERITIES = ("warning", "critical")
KINDS = ("threshold", "derivative", "absence")
OPS = (">", "<")


@dataclass(frozen=True)
class AlertRule:
    """One declarative alert rule.

    ``metric`` is a glob over flattened metric names; every match gets
    its own independent condition state. ``guard_metric``/``guard_min``
    suppress evaluation until a companion metric reaches a floor (e.g.
    don't judge ``version_store.hit_rate`` before any lookups happened).
    """

    name: str
    metric: str
    kind: str = "threshold"
    op: str = ">"
    threshold: float = 0.0
    #: Debounce: breach must hold this many sim-seconds before firing.
    for_s: float = 0.0
    #: Window for derivative rules / staleness horizon for absence rules.
    window_s: float = 0.0
    severity: str = "warning"
    subsystem: str = "engine"
    guard_metric: str | None = None
    guard_min: float = 0.0
    doc: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown alert kind {self.kind!r}")
        if self.op not in OPS:
            raise ValueError(f"unknown alert op {self.op!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown alert severity {self.severity!r}")
        if self.kind == "absence" and self.window_s <= 0:
            raise ValueError("absence rules need a positive window_s")

    def breaches(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" else value < self.threshold


@dataclass
class ConditionState:
    """Mutable per-(rule, metric) alert state."""

    rule: AlertRule
    metric: str
    state: str = "ok"  # ok | pending | firing | cleared
    value: float | None = None
    pending_since: float | None = None
    fired_at: float | None = None
    cleared_at: float | None = None
    fired_count: int = 0

    def row(self) -> dict:
        return {
            "rule": self.rule.name,
            "metric": self.metric,
            "state": self.state,
            "severity": self.rule.severity,
            "subsystem": self.rule.subsystem,
            "value": self.value,
            "threshold": self.rule.threshold,
            "fired_at": self.fired_at,
            "cleared_at": self.cleared_at,
            "fired_count": self.fired_count,
        }


class AlertEngine:
    """Evaluates rules against a :class:`~repro.obs.timeseries.MetricsRecorder`."""

    def __init__(self, recorder, *, events_capacity: int = DEFAULT_EVENTS_CAPACITY) -> None:
        self.latch = Latch("alert_engine")
        self.recorder = recorder
        self._rules: dict[str, AlertRule] = {}
        self._conditions: dict[tuple, ConditionState] = {}
        self._events: deque = deque(maxlen=events_capacity)
        self._subscribers: list[tuple] = []
        self.evaluations = 0

    # -- rule management ------------------------------------------------

    def add_rule(self, rule: AlertRule) -> AlertRule:
        with self.latch:
            if rule.name in self._rules:
                raise ValueError(f"duplicate alert rule {rule.name!r}")
            self._rules[rule.name] = rule
            return rule

    def remove_rule(self, name: str) -> None:
        with self.latch:
            self._rules.pop(name, None)
            for key in [k for k in self._conditions if k[0] == name]:
                del self._conditions[key]

    def rules(self) -> list[AlertRule]:
        with self.latch:
            return [self._rules[name] for name in sorted(self._rules)]

    def subscribe(self, pattern: str, callback) -> None:
        """Call ``callback(event)`` on every firing/cleared transition of
        rules whose name matches ``pattern`` (a glob)."""
        with self.latch:
            self._subscribers.append((pattern, callback))

    # -- evaluation -----------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[dict]:
        """Run every rule once; returns the events this pass emitted."""
        if now is None:
            now = self.recorder.clock.now()
        with self.latch:
            return self._evaluate_locked(now)

    def _evaluate_locked(self, now: float) -> list[dict]:
        self.evaluations += 1
        emitted: list[dict] = []
        for name in sorted(self._rules):
            rule = self._rules[name]
            if rule.kind == "absence":
                emitted.extend(self._evaluate_absence(rule, now))
            else:
                emitted.extend(self._evaluate_series(rule, now))
        return emitted

    def _guard_open(self, rule: AlertRule) -> bool:
        if rule.guard_metric is None:
            return True
        guard = self.recorder.window(rule.guard_metric)["last"]
        return guard is not None and guard >= rule.guard_min

    def _evaluate_series(self, rule: AlertRule, now: float) -> list[dict]:
        emitted: list[dict] = []
        guard_open = self._guard_open(rule)
        for metric in self.recorder.names(rule.metric):
            window = self.recorder.window(
                metric, rule.window_s if rule.window_s > 0 else None
            )
            value = (
                window["rate_per_s"] if rule.kind == "derivative" else window["last"]
            )
            breach = (
                guard_open and value is not None and rule.breaches(value)
            )
            emitted.extend(self._advance(rule, metric, breach, value, now))
        return emitted

    def _evaluate_absence(self, rule: AlertRule, now: float) -> list[dict]:
        """Fire when no metric matches the glob, or every match has gone
        stale (no sample within ``window_s`` sim-seconds)."""
        matches = self.recorder.names(rule.metric)
        if not matches:
            # The glob names nothing at all: one synthetic instance
            # carries the alert (a dead metric has no series to anchor to).
            return self._advance(rule, rule.metric, self._guard_open(rule), None, now)
        emitted = list(self._advance(rule, rule.metric, False, None, now))
        guard_open = self._guard_open(rule)
        for metric in matches:
            series = self.recorder.series(metric)
            last_t = series.last_t if series is not None else None
            stale = last_t is None or (now - last_t) > rule.window_s
            value = (now - last_t) if last_t is not None else None
            emitted.extend(self._advance(rule, metric, guard_open and stale, value, now))
        return emitted

    def _advance(
        self, rule: AlertRule, metric: str, breach: bool, value, now: float
    ) -> list[dict]:
        key = (rule.name, metric)
        with self.latch:
            cond = self._conditions.get(key)
            if cond is None:
                if not breach:
                    return []
                cond = self._conditions[key] = ConditionState(
                    rule=rule, metric=metric
                )
        cond.value = value
        if breach:
            if cond.state == "firing":
                return []
            if cond.state in ("ok", "cleared"):
                cond.state = "pending"
                cond.pending_since = now
            if now - cond.pending_since >= rule.for_s:
                cond.state = "firing"
                cond.fired_at = now
                cond.cleared_at = None
                cond.fired_count += 1
                return [self._emit("firing", cond, now)]
            return []
        if cond.state == "firing":
            cond.state = "cleared"
            cond.cleared_at = now
            cond.pending_since = None
            return [self._emit("cleared", cond, now)]
        if cond.state == "pending":
            cond.state = "cleared" if cond.fired_count else "ok"
            cond.pending_since = None
        return []

    def _emit(self, kind: str, cond: ConditionState, now: float) -> dict:
        event = {
            "t": now,
            "event": kind,
            "rule": cond.rule.name,
            "metric": cond.metric,
            "value": cond.value,
            "severity": cond.rule.severity,
            "subsystem": cond.rule.subsystem,
        }
        with self.latch:
            self._events.append(event)
            subscribers = list(self._subscribers)
        for pattern, callback in subscribers:
            if fnmatchcase(cond.rule.name, pattern):
                callback(event)
        return event

    # -- read side ------------------------------------------------------

    def active(self) -> list[dict]:
        """Currently-firing conditions, ordered by (rule, metric)."""
        with self.latch:
            return [
                cond.row()
                for key in sorted(self._conditions)
                if (cond := self._conditions[key]).state == "firing"
            ]

    def rows(self) -> list[dict]:
        """Every tracked condition (firing, pending, and cleared) — the
        ``SHOW ALERTS`` surface, where a cleared row is the proof the
        incident ended."""
        with self.latch:
            return [
                self._conditions[key].row() for key in sorted(self._conditions)
            ]

    def events(self) -> list[dict]:
        """The bounded firing/cleared timeline, oldest first."""
        with self.latch:
            return list(self._events)

    def as_dict(self) -> dict:
        return {
            "schema": ALERTS_SCHEMA,
            "rules": [rule.name for rule in self.rules()],
            "conditions": self.rows(),
            "events": self.events(),
        }

    # -- lifecycle ------------------------------------------------------

    def remove_prefix(self, prefix: str) -> None:
        """Forget conditions anchored to metrics under ``prefix`` (a
        dropped database must not keep ghost alerts alive)."""
        with self.latch:
            for key in [k for k in self._conditions if k[1].startswith(prefix)]:
                del self._conditions[key]


def builtin_rules(cfg) -> list[AlertRule]:
    """The stock rule set over the PR 6 gauges, thresholds from
    :class:`~repro.config.MonitorConfig`."""
    return [
        AlertRule(
            name="repl.apply_lag",
            metric="replica.*.apply_lag_bytes",
            threshold=float(cfg.apply_lag_bytes),
            for_s=cfg.apply_lag_for_s,
            severity="warning",
            subsystem="replication",
            doc="replica apply cursor trails the primary by too many bytes",
        ),
        AlertRule(
            name="repl.apply_lag_s",
            metric="replica.*.apply_lag_s",
            threshold=cfg.apply_lag_s,
            for_s=cfg.apply_lag_for_s,
            severity="critical",
            subsystem="replication",
            doc="replica apply cursor trails the primary by too many seconds",
        ),
        AlertRule(
            name="repl.ship_errors",
            metric="repl.ship.*.consecutive_errors",
            op=">",
            threshold=float(cfg.ship_error_streak) - 1.0,
            severity="warning",
            subsystem="replication",
            doc="a ship-stream subscription keeps failing (retrying under "
            "backoff); the failure detector treats this as suspicion",
        ),
        AlertRule(
            name="repl.ship_stall",
            metric="repl.ship.*.progress_t",
            kind="absence",
            window_s=cfg.ship_stall_s,
            severity="critical",
            subsystem="replication",
            guard_metric="repl.subscriptions",
            guard_min=1.0,
            doc="a ship-stream subscription has made no progress for the "
            "stall window — its progress gauge went silent (crashed "
            "primary, partition, or a stuck subscriber)",
        ),
        AlertRule(
            name="archive.cursor_lag",
            metric="archive.*.cursor_lag_bytes",
            threshold=float(cfg.archive_lag_bytes),
            severity="warning",
            subsystem="archive",
            doc="archiver has unshipped log beyond its backlog budget",
        ),
        AlertRule(
            name="retention.pin_pressure",
            metric="retention.*.pin_lag_bytes",
            threshold=float(cfg.pin_lag_bytes),
            severity="warning",
            subsystem="retention",
            doc="oldest snapshot pin is holding back log truncation",
        ),
        AlertRule(
            name="version_store.hit_rate_floor",
            metric="version_store.hit_rate",
            op="<",
            threshold=cfg.version_store_hit_rate_floor,
            severity="warning",
            subsystem="version_store",
            guard_metric="version_store.lookups",
            guard_min=float(cfg.version_store_min_lookups),
            doc="page-version cache is missing more than the configured floor",
        ),
        AlertRule(
            name="pool.occupancy",
            metric="pool.*.occupancy",
            threshold=cfg.pool_occupancy,
            severity="warning",
            subsystem="buffer_pool",
            doc="buffer pool is nearly full",
        ),
    ]
