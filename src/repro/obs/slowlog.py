"""Slow-statement capture: bounded ring of rendered span trees.

Statements whose ``sql.execute`` span exceeds the configured simulated
threshold keep their rendered trace (span tree + I/O deltas) in a ring
of the last N offenders — the simulated analogue of a slow-query log,
on the sim clock so the same seeded workload always captures the same
statements. ``SHOW SLOW QUERIES`` and ``repro.tools.obs`` read it.

``_slow_entries`` is owned by this module (RL005); readers use
:meth:`rows`/:meth:`entries`.
"""

from __future__ import annotations

from collections import deque

from repro.latch import Latch


class SlowQueryLog:
    """Bounded capture of statements slower than ``threshold_s``."""

    def __init__(self, threshold_s: float, capacity: int) -> None:
        self.latch = Latch("slow_query_log")
        self.threshold_s = threshold_s
        self.capacity = capacity
        self._slow_entries: deque = deque(maxlen=capacity)
        self.captured = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s > 0

    def __len__(self) -> int:
        return len(self._slow_entries)

    def record(self, *, t_s: float, statement: str, sim_s: float, spans) -> None:
        """Keep one offender; ``spans`` is the rendered trace's lines."""
        with self.latch:
            self._slow_entries.append(
                {
                    "t_s": t_s,
                    "statement": statement,
                    "sim_s": sim_s,
                    "spans": list(spans),
                }
            )
            self.captured += 1

    def entries(self) -> list[dict]:
        """Retained entries, oldest first."""
        with self.latch:
            return list(self._slow_entries)

    def rows(self) -> list[dict]:
        """The ``SHOW SLOW QUERIES`` surface: one summary row per entry."""
        with self.latch:
            return [
                {
                    "t_s": entry["t_s"],
                    "statement": entry["statement"],
                    "sim_s": entry["sim_s"],
                    "spans": len(entry["spans"]),
                }
                for entry in self._slow_entries
            ]
