"""The typed metrics registry.

One :class:`MetricsRegistry` lives on each :class:`~repro.config.SimEnv`
(``env.metrics``) and is shared by every database, snapshot, replica and
tool attached to that environment — mirroring how ``env.stats`` already
threads one :class:`~repro.sim.iostats.IoStats` sheet through the stack.

Instruments come in three types:

* :class:`Counter` — monotone int. Counters may *own* their value or be
  *backed* by read/write closures over an existing stats object (the
  ``IoStats`` fields and the per-subsystem stats dataclasses register
  this way), so legacy attribute APIs keep working as thin shims while
  the registry becomes the single reset/snapshot/export surface.
* :class:`Gauge` — derived, read-only. Evaluated at snapshot time from a
  closure (replica apply lag, archiver cursor lag, retention-pin horizon
  distance, pool occupancy, hit rates). Never sampled, never reset.
* :class:`Histogram` — fixed, deterministic bucket bounds (sim-seconds
  or bytes). Same seeded run ⇒ same observations ⇒ byte-identical
  snapshot JSON.

Naming scheme (see ``docs/observability.md``): dot-separated
``<subsystem>[.<instance>].<metric>``, e.g. ``io.undo_log_reads``,
``pool.engine.hits``, ``replica.r1.apply_lag_bytes``. Glob filters
(``SHOW METRICS LIKE 'pool.*'``) match with :func:`fnmatch.fnmatchcase`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from fnmatch import fnmatchcase

from repro.latch import Latch

#: Canonical snapshot schema identifier (bump on incompatible change).
METRICS_SCHEMA = "repro.obs.metrics/v1"

#: Default histogram bounds for simulated-seconds latencies: decades from
#: 100 µs to 100 s. Fixed at import time — deterministic by construction.
DEFAULT_SIM_TIME_BUCKETS_S = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)

#: Default histogram bounds for byte sizes (log records, frames).
DEFAULT_BYTES_BUCKETS = (64, 256, 1024, 4096, 16384, 65536, 262144)


class Counter:
    """A monotone counter, optionally backed by external storage."""

    __slots__ = ("name", "doc", "_read", "_write", "_value")

    def __init__(self, name: str, doc: str = "", *, read=None, write=None) -> None:
        if (read is None) != (write is None):
            raise ValueError(f"counter {name}: read and write go together")
        self.name = name
        self.doc = doc
        self._read = read
        self._write = write
        self._value = 0

    @property
    def backed(self) -> bool:
        return self._read is not None

    @property
    def value(self) -> int:
        if self._read is not None:
            return self._read()
        return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        if self._write is not None:
            self._write(self._read() + amount)
        else:
            self._value += amount

    def reset(self) -> None:
        if self._write is not None:
            self._write(0)
        else:
            self._value = 0


class Gauge:
    """A derived, read-only instrument evaluated at snapshot time."""

    __slots__ = ("name", "doc", "_read")

    def __init__(self, name: str, read, doc: str = "") -> None:
        self.name = name
        self.doc = doc
        self._read = read

    @property
    def value(self):
        return self._read()

    def reset(self) -> None:
        """Gauges are derived from live state; nothing to clear."""


class Histogram:
    """Fixed-bucket histogram (counts per ``value <= bound`` bucket)."""

    __slots__ = ("name", "doc", "bounds", "counts", "total", "count", "_lock")

    def __init__(self, name: str, doc: str = "", bounds=DEFAULT_SIM_TIME_BUCKETS_S) -> None:
        self.name = name
        self.doc = doc
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(f"histogram {name}: bounds must be sorted and non-empty")
        # One count per bound plus the +inf overflow bucket.
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        # A leaf lock of its own (not the registry latch): observations
        # arrive from hot paths already holding subsystem latches.
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.total += value
            self.count += 1

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * (len(self.bounds) + 1)
            self.total = 0.0
            self.count = 0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "buckets": [
                    [bound, self.counts[i]] for i, bound in enumerate(self.bounds)
                ],
                "overflow": self.counts[-1],
                "count": self.count,
                "sum": self.total,
            }


class MetricsRegistry:
    """All instruments of one :class:`~repro.config.SimEnv`, by name.

    The instrument tables (``_instruments``) are owned by this module —
    other modules hold instrument *handles* returned by
    :meth:`counter`/:meth:`gauge`/:meth:`histogram` and mutate only
    through them (the RL005 shared-state contract).
    """

    def __init__(self) -> None:
        self.latch = Latch("metrics_registry")
        self._instruments: dict[str, object] = {}
        # Dynamic providers contribute extra counter values at snapshot
        # time (the IoStats ``_extra`` ad-hoc counters register one).
        self._providers: list = []
        self._reset_hooks: list = []

    # -- registration ---------------------------------------------------

    def _check_kind(self, name: str, existing, kind) -> None:
        if type(existing) is not kind:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(existing).__name__}"
            )

    def counter(self, name: str, doc: str = "") -> Counter:
        """Create (or fetch the existing) self-owned counter ``name``."""
        with self.latch:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_kind(name, existing, Counter)
                return existing
            instrument = Counter(name, doc)
            self._instruments[name] = instrument
            return instrument

    def backed_counter(self, name: str, read, write, doc: str = "") -> Counter:
        """A counter whose storage lives elsewhere (a legacy stats field).

        Re-registration *replaces* the closures — a subsystem restart
        (new pool, new replica under a reused name) rebinds the metric to
        its live object.
        """
        with self.latch:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_kind(name, existing, Counter)
            instrument = Counter(name, doc, read=read, write=write)
            self._instruments[name] = instrument
            return instrument

    def gauge(self, name: str, read, doc: str = "") -> Gauge:
        """Register derived gauge ``name``; re-registration replaces the
        closure (a subsystem restart rebinds its live object)."""
        with self.latch:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_kind(name, existing, Gauge)
            instrument = Gauge(name, read, doc)
            self._instruments[name] = instrument
            return instrument

    def histogram(self, name: str, doc: str = "", bounds=DEFAULT_SIM_TIME_BUCKETS_S) -> Histogram:
        with self.latch:
            existing = self._instruments.get(name)
            if existing is not None:
                self._check_kind(name, existing, Histogram)
                return existing
            instrument = Histogram(name, doc, bounds)
            self._instruments[name] = instrument
            return instrument

    def add_provider(self, provider) -> None:
        """``provider()`` returns ``{name: int}`` merged into the counter
        section at snapshot time (ad-hoc counters)."""
        with self.latch:
            self._providers.append(provider)

    def add_reset_hook(self, hook) -> None:
        """``hook()`` runs on :meth:`reset` (clears provider storage)."""
        with self.latch:
            self._reset_hooks.append(hook)

    def remove(self, name: str) -> None:
        with self.latch:
            self._instruments.pop(name, None)

    def remove_prefix(self, prefix: str) -> None:
        """Unregister every instrument under ``prefix`` (dropped replica,
        detached archiver, dropped database)."""
        with self.latch:
            for name in [n for n in self._instruments if n.startswith(prefix)]:
                del self._instruments[name]

    # -- read side ------------------------------------------------------

    def get(self, name: str):
        with self.latch:
            return self._instruments.get(name)

    def names(self, like: str | None = None) -> list[str]:
        with self.latch:
            names = sorted(self._instruments)
        if like is None:
            return names
        return [n for n in names if fnmatchcase(n, like)]

    def snapshot(self, like: str | None = None) -> dict:
        """The canonical metrics document (see ``docs/observability.md``).

        Deterministic: keys sorted, values read in one pass, no host
        clocks. ``like`` applies the same glob ``SHOW METRICS LIKE``
        uses.
        """
        with self.latch:
            return self._snapshot_locked(like)

    def _snapshot_locked(self, like: str | None) -> dict:
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(self._instruments):
            if like is not None and not fnmatchcase(name, like):
                continue
            instrument = self._instruments[name]
            if type(instrument) is Counter:
                counters[name] = instrument.value
            elif type(instrument) is Gauge:
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.as_dict()
        for provider in self._providers:
            for name, value in sorted(provider().items()):
                if like is None or fnmatchcase(name, like):
                    counters[name] = counters.get(name, 0) + value
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    # -- reset ----------------------------------------------------------

    def reset(self) -> None:
        """Zero every counter and histogram — including backed ones, so
        one call clears the IoStats sheet *and* every subsystem stats
        object registered over it (pool, version store, shipper, replica,
        archiver). Gauges are derived and untouched."""
        with self.latch:
            for instrument in self._instruments.values():
                instrument.reset()
            for hook in self._reset_hooks:
                hook()
