"""Span-based tracing of a single request, on the simulated clock.

A trace is started through :meth:`Engine.trace` (or SQL ``TRACE
<select>``), which activates the env-wide :class:`Tracer`. While a trace
is active, the instrumentation points threaded through the engine
(``sql.execute``, ``asof.*``, ``pool.acquire``, ``version_store.*``,
``log.read_many``, ``repl.*``, ``archive.*``) open nested spans; when no
trace is active the same calls return a shared no-op span, so the hot
paths pay one ``is None`` check.

Every span records:

* ``start_s``/``end_s`` — simulated seconds (``env.clock.now()``), so a
  seeded replay produces byte-identical trees (reprolint RL003 holds:
  no host clock is consulted);
* ``io`` — the non-zero :class:`~repro.sim.iostats.IoStats` counter
  deltas over the span (inclusive of child spans);
* ``attrs`` — instrumentation-point annotations (``hit=True``,
  ``page_id=7``, …), settable mid-span via :meth:`Span.set`.
"""

from __future__ import annotations

import threading

from repro.latch import Latch


class Span:
    """One node of a finished (or in-flight) span tree."""

    __slots__ = ("name", "attrs", "start_s", "end_s", "children", "io", "_io_before")

    def __init__(self, name: str, attrs: dict, start_s: float, io_before) -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.start_s = start_s
        self.end_s = start_s
        self.children: list[Span] = []
        self.io: dict[str, int] = {}
        self._io_before = io_before

    # Instrumentation points annotate the current span mid-flight:
    # ``with tracer.span("pool.acquire") as span: ... span.set(hit=True)``.
    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        spans = [self] if self.name == name else []
        for child in self.children:
            spans.extend(child.find_all(name))
        return spans

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_s": self.start_s,
            "elapsed_s": self.elapsed_s,
            "io": dict(self.io),
            "children": [child.as_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> list[str]:
        """One text line per span: name, attrs, sim-elapsed, I/O deltas."""
        parts = [self.name]
        parts.extend(f"{key}={value}" for key, value in self.attrs.items())
        parts.append(f"sim={self.elapsed_s * 1000.0:.3f}ms")
        if self.io:
            deltas = " ".join(f"{k}=+{v}" for k, v in sorted(self.io.items()))
            parts.append(f"io[{deltas}]")
        lines = ["  " * indent + " ".join(parts)]
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


class _NullSpan:
    """The shared do-nothing span handed out when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager opening one child span on the active trace."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attrs)
        return self._span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self._span)


class Trace:
    """Handle yielded by ``engine.trace(...)``; ``root`` is the finished
    span tree once the ``with`` block exits."""

    __slots__ = ("name", "root")

    def __init__(self, name: str) -> None:
        self.name = name
        self.root: Span | None = None

    def as_dict(self) -> dict:
        if self.root is None:
            raise ValueError("trace has not finished")
        return self.root.as_dict()

    def render(self) -> list[str]:
        if self.root is None:
            raise ValueError("trace has not finished")
        return self.root.render()

    def find(self, name: str) -> Span | None:
        return self.root.find(name) if self.root is not None else None

    def find_all(self, name: str) -> list[Span]:
        return self.root.find_all(name) if self.root is not None else []


class Tracer:
    """The env-wide tracer; inactive (cheap no-ops) between traces.

    The span stacks (``_span_stack``, keyed by thread ident) are owned by
    this module; engine code interacts only through
    :meth:`span`/:meth:`begin`/:meth:`finish`. Traces are **per thread**:
    each session thread may run its own trace concurrently — its spans
    attach to its own stack, and instrumentation points on threads with
    no active trace stay no-ops. A stack's list is only ever touched by
    its own thread; the latch guards the stack *table*.
    """

    def __init__(self, clock, stats) -> None:
        self.latch = Latch("tracer")
        self._clock = clock
        self._stats = stats
        #: thread ident -> open-span stack of that thread's active trace.
        self._span_stack: dict[int, list[Span]] = {}

    def _stack(self) -> list[Span] | None:
        return self._span_stack.get(threading.get_ident())

    @property
    def active(self) -> bool:
        """Whether the *calling thread* has an active trace."""
        return self._stack() is not None

    def span(self, name: str, **attrs):
        """Open a span under the active trace; no-op when inactive."""
        if self._stack() is None:
            return NULL_SPAN
        return _SpanContext(self, name, attrs)

    def begin(self, name: str) -> Trace:
        """Activate tracing on this thread with a root span ``name``."""
        ident = threading.get_ident()
        with self.latch:
            if ident in self._span_stack:
                raise ValueError("a trace is already active on this thread")
            root = Span(name, {}, self._clock.now(), self._stats.snapshot())
            self._span_stack[ident] = [root]
        return Trace(name)

    def finish(self, trace: Trace) -> Trace:
        """Deactivate this thread's trace; closes the root and any spans
        left open by an exception unwinding through the traced region."""
        with self.latch:
            stack = self._span_stack.pop(threading.get_ident(), None)
        if not stack:
            return trace
        for span in reversed(stack):
            self._seal(span)
        trace.root = stack[0]
        return trace

    # -- internals (called via _SpanContext) ----------------------------

    def _open(self, name: str, attrs: dict) -> Span:
        stack = self._stack()
        span = Span(name, attrs, self._clock.now(), self._stats.snapshot())
        stack[-1].children.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        self._seal(span)

    def _seal(self, span: Span) -> None:
        span.end_s = self._clock.now()
        if span._io_before is not None:
            spent = self._stats.delta(span._io_before)
            span.io = {k: v for k, v in spent.as_dict().items() if v}
            span._io_before = None
