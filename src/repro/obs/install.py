"""Wiring subsystem stats objects and derived gauges into the registry.

Each ``install_*`` function binds one subsystem's counters (backed over
its existing stats dataclass, so the legacy attribute APIs keep working)
and registers its derived gauges. The engine calls these as subsystems
come and go; ``registry.remove_prefix`` unwinds them on drop.

All gauges are *derived* — closures over live engine state, evaluated at
snapshot time — never sampled copies that could go stale.
"""

from __future__ import annotations

from functools import partial


def _bind_stats(registry, prefix: str, stats, names) -> None:
    """Register each ``stats`` field as backed counter ``prefix.name``."""
    for name in names:
        registry.backed_counter(
            f"{prefix}.{name}",
            read=partial(getattr, stats, name),
            write=partial(setattr, stats, name),
        )


def install_pool_metrics(registry, prefix: str, pool) -> None:
    """A :class:`~repro.core.snapshot_pool.SnapshotPool` under ``prefix``
    (``pool.engine`` for the engine pool, ``pool.<replica>`` per standby)."""
    _bind_stats(
        registry,
        prefix,
        pool.stats,
        ("hits", "misses", "evictions", "releases", "peak_bytes"),
    )
    registry.gauge(f"{prefix}.bytes", pool.total_bytes, "pooled side-file bytes")
    registry.gauge(f"{prefix}.budget_bytes", lambda: pool.budget_bytes)
    registry.gauge(f"{prefix}.entries", lambda: len(pool))
    registry.gauge(f"{prefix}.leases", pool.active_leases)
    registry.gauge(
        f"{prefix}.hit_rate",
        lambda: (
            pool.stats.hits / (pool.stats.hits + pool.stats.misses)
            if (pool.stats.hits + pool.stats.misses)
            else 0.0
        ),
        "pooled-acquire hit rate",
    )
    registry.gauge(
        f"{prefix}.occupancy",
        lambda: (
            pool.total_bytes() / pool.budget_bytes if pool.budget_bytes else 0.0
        ),
        "pooled bytes as a fraction of the budget",
    )


def install_version_store_metrics(registry, store) -> None:
    """The engine-wide :class:`~repro.core.version_store.PageVersionStore`.

    The ``io.version_store_*`` counters mirror these (the store double-
    bumps the IoStats sheet); ``version_store.*`` is the canonical view
    with occupancy and hit rate attached.
    """
    _bind_stats(
        registry,
        "version_store",
        store.stats,
        (
            "hits",
            "misses",
            "publishes",
            "evictions",
            "invalidations",
            "peak_bytes",
        ),
    )
    registry.gauge("version_store.bytes", lambda: store.as_dict()["bytes"])
    registry.gauge("version_store.versions", lambda: store.as_dict()["versions"])
    registry.gauge("version_store.budget_bytes", lambda: store.budget_bytes)
    registry.gauge(
        "version_store.hit_rate",
        lambda: store.stats.hit_rate,
        "store-probe hit rate (chain walks skipped)",
    )
    registry.gauge(
        "version_store.lookups",
        lambda: store.stats.hits + store.stats.misses,
        "total store probes (alert guard for the hit-rate floor)",
    )


def install_engine_metrics(engine) -> None:
    """Engine-owned shared structures: the snapshot pool and the store."""
    registry = engine.env.metrics
    install_pool_metrics(registry, "pool.engine", engine.snapshot_pool)
    install_version_store_metrics(registry, engine.version_store)
    registry.gauge(
        "repl.subscriptions",
        lambda: sum(
            len(shipper.subscribers())
            for shipper in engine._shippers.values()
        ),
        "ship-stream subscriptions engine-wide (guards the stall alert)",
    )


def install_database_metrics(engine, db) -> None:
    """Per-database log and retention gauges (``log.<db>.*``,
    ``retention.<db>.*``)."""
    registry = engine.env.metrics
    prefix = f"log.{db.name}"
    registry.gauge(f"{prefix}.end_lsn", lambda: db.log.end_lsn)
    registry.gauge(f"{prefix}.durable_lsn", lambda: db.log.durable_lsn)
    registry.gauge(f"{prefix}.start_lsn", lambda: db.log.start_lsn)
    registry.gauge(
        f"{prefix}.retained_bytes",
        lambda: db.log.end_lsn - db.log.start_lsn,
        "log bytes between the retention floor and the tail",
    )

    def pin_lag_bytes() -> int:
        # Distance from the log tail back to the oldest live retention
        # pin (pooled splits, shipper/archiver cursors): how much log the
        # pins hold beyond what the time window alone would keep.
        from repro.wal.lsn import NULL_LSN

        pins = []
        for pin in db.retention_pins:
            lsn = pin()
            if lsn is not None and lsn > NULL_LSN:
                pins.append(lsn)
        if not pins:
            return 0
        return max(0, db.log.end_lsn - min(pins))

    registry.gauge(
        f"retention.{db.name}.pin_lag_bytes",
        pin_lag_bytes,
        "retention-pin horizon distance from the log tail",
    )


def remove_database_metrics(engine, name: str) -> None:
    registry = engine.env.metrics
    registry.remove_prefix(f"log.{name}.")
    registry.remove_prefix(f"retention.{name}.")


def install_replica_metrics(engine, replica) -> None:
    """Per-standby apply/lag instruments (``replica.<name>.*``) and its
    own snapshot pool (``pool.<name>.*``)."""
    registry = engine.env.metrics
    prefix = f"replica.{replica.name}"
    _bind_stats(
        registry,
        prefix,
        replica.stats,
        (
            "frames_received",
            "bytes_received",
            "records_applied",
            "apply_batches",
            "peak_apply_backlog_bytes",
        ),
    )
    registry.gauge(f"{prefix}.applied_lsn", lambda: replica.applied_lsn)
    registry.gauge(f"{prefix}.received_lsn", lambda: replica.received_lsn)
    registry.gauge(
        f"{prefix}.apply_lag_bytes",
        replica.lag_bytes,
        "durable primary log not yet applied (LSN distance)",
    )
    registry.gauge(
        f"{prefix}.received_lag_bytes",
        replica.received_lag_bytes,
        "durable primary log not yet shipped here",
    )

    def apply_lag_s() -> float:
        # Seconds of history the applied state trails the primary: zero
        # when fully applied, otherwise the age of the last applied
        # commit. Derived — no sampling loop keeps this fresh.
        if replica.lag_bytes() == 0:
            return 0.0
        return max(0.0, engine.env.clock.now() - replica.applied_wall)

    registry.gauge(f"{prefix}.apply_lag_s", apply_lag_s, "apply lag in seconds")
    registry.gauge(
        f"{prefix}.consecutive_apply_errors",
        lambda: replica.consecutive_apply_errors,
        "consecutive faulted apply attempts (routing skips a faulted standby)",
    )
    install_pool_metrics(registry, f"pool.{replica.name}", replica.snapshot_pool)


def remove_replica_metrics(engine, name: str) -> None:
    registry = engine.env.metrics
    registry.remove_prefix(f"replica.{name}.")
    registry.remove_prefix(f"pool.{name}.")


def install_shipper_metrics(engine, shipper) -> None:
    """Outbound shipping instruments (``shipper.<db>.*``)."""
    registry = engine.env.metrics
    prefix = f"shipper.{shipper.db.name}"
    _bind_stats(
        registry,
        prefix,
        shipper.stats,
        ("polls", "frames_shipped", "bytes_shipped", "resyncs", "send_errors", "retries"),
    )
    registry.gauge(
        f"{prefix}.max_lag_bytes",
        shipper.max_lag_bytes,
        "largest unshipped byte count across subscribers",
    )
    registry.gauge(f"{prefix}.subscribers", lambda: len(shipper.subscribers()))
    # Per-subscriber health gauges (repl.ship.<subscriber>.*) are owned
    # by the shipper itself: it registers/unregisters the progress gauge
    # as subscriptions fail and recover.
    shipper.bind_registry(registry)


def install_archiver_metrics(engine, archiver) -> None:
    """Archive-tier instruments (``archive.<db>.*``): the durable-cursor
    lag gauge is the archiver's health signal — log past it is only as
    safe as the primary's retention window."""
    registry = engine.env.metrics
    prefix = f"archive.{archiver.db.name}"
    _bind_stats(
        registry,
        prefix,
        archiver.stats,
        ("segments_archived", "bytes_archived"),
    )
    registry.gauge(
        f"{prefix}.cursor_lag_bytes",
        archiver.lag_bytes,
        "durable primary log not yet durably archived",
    )
    registry.gauge(f"{prefix}.archived_lsn", lambda: archiver.received_lsn)
    registry.gauge(f"{prefix}.closed", lambda: int(archiver.closed))
