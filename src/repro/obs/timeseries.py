"""Sim-clock metrics history: bounded ring-buffer series over snapshots.

A :class:`MetricsRecorder` turns the point-in-time canonical snapshot
(:meth:`~repro.obs.registry.MetricsRegistry.snapshot`) into *history*:
on every due tick it flattens the document and appends one ``(t, value)``
point per metric into a bounded ring buffer. Nothing here runs on a real
thread — the engine drives :meth:`maybe_sample` from its existing pump
points (SQL statement dispatch, ``replication_tick``, AS OF pins), so a
seeded workload produces the exact same sample timeline on every run:
the recorder's whole state is a pure function of the simulated execution.

Windowed queries (:meth:`window`/:meth:`history`) reduce a series to
``last``/``min``/``max``/``mean``/``rate_per_s`` over the trailing
``window_s`` simulated seconds; the alert engine's threshold and
derivative conditions read these. ``SHOW HISTORY '<glob>'`` and
``python -m repro.tools.obs --history`` render the same summaries.

The series table (``_series``) is owned by this module (RL005): other
code reads through :meth:`points`/:meth:`window`/:meth:`as_dict` and
unregisters through :meth:`remove_prefix` (dropped databases and
replicas must not leave ghost history behind).
"""

from __future__ import annotations

from collections import deque
from fnmatch import fnmatchcase

from repro.latch import Latch
from repro.obs.export import flatten_snapshot

#: Canonical history document schema identifier.
HISTORY_SCHEMA = "repro.obs.history/v1"

#: Default per-series ring capacity (samples retained).
DEFAULT_HISTORY_SAMPLES = 512

#: Default sim-clock sampling cadence, seconds.
DEFAULT_SAMPLE_INTERVAL_S = 1.0


class Series:
    """One metric's bounded ``(t, value)`` history ring."""

    __slots__ = ("name", "_points")

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self._points: deque = deque(maxlen=capacity)

    def __len__(self) -> int:
        return len(self._points)

    def append(self, t: float, value) -> None:
        self._points.append((t, value))

    def points(self, window_s: float | None = None, now: float | None = None) -> list:
        """The retained ``(t, value)`` points, oldest first; ``window_s``
        keeps only points within that many sim-seconds of ``now`` (the
        newest point's time when not given)."""
        pts = list(self._points)
        if window_s is None or not pts:
            return pts
        horizon = (now if now is not None else pts[-1][0]) - window_s
        return [p for p in pts if p[0] >= horizon]

    @property
    def last(self):
        return self._points[-1][1] if self._points else None

    @property
    def last_t(self) -> float | None:
        return self._points[-1][0] if self._points else None


def summarize(points: list) -> dict:
    """``last``/``min``/``max``/``mean``/``rate_per_s`` over points.

    ``rate_per_s`` is the endpoint slope ``(last - first) / (t_last -
    t_first)`` — the derivative the alert engine's rate conditions use;
    0.0 when fewer than two points (or zero elapsed) make a slope
    meaningless.
    """
    if not points:
        return {
            "points": 0,
            "first_s": None,
            "last_s": None,
            "last": None,
            "min": None,
            "max": None,
            "mean": None,
            "rate_per_s": 0.0,
        }
    values = [v for _t, v in points]
    t_first, v_first = points[0]
    t_last, v_last = points[-1]
    elapsed = t_last - t_first
    return {
        "points": len(points),
        "first_s": t_first,
        "last_s": t_last,
        "last": v_last,
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "rate_per_s": (v_last - v_first) / elapsed if elapsed > 0 else 0.0,
    }


class MetricsRecorder:
    """Samples a registry's flattened snapshot on a sim-clock cadence.

    A sample is taken whenever :meth:`maybe_sample` runs at or past the
    next due time; the next due time is then ``now + interval_s``. The
    cadence therefore rides the engine's pump points rather than a wall
    timer — which is exactly what makes two identical seeded runs
    byte-identical: same pump sequence, same clock, same samples.
    """

    def __init__(
        self,
        registry,
        clock,
        *,
        interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        capacity: int = DEFAULT_HISTORY_SAMPLES,
        like: str | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be at least 2 (rates need a slope)")
        self.latch = Latch("metrics_recorder")
        self.registry = registry
        self.clock = clock
        self.interval_s = interval_s
        self.capacity = capacity
        self.like = like
        self.samples_taken = 0
        self.last_sample_s: float | None = None
        self._next_due: float | None = None
        self._series: dict[str, Series] = {}

    # -- sampling -------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._next_due is not None

    def start(self) -> None:
        """Arm the recorder and take the first sample immediately."""
        with self.latch:
            if self.started:
                return
            self._next_due = self.clock.now()
            self.maybe_sample()

    def maybe_sample(self) -> bool:
        """Sample if the cadence is due; returns whether a sample ran."""
        with self.latch:
            if self._next_due is None:
                return False
            now = self.clock.now()
            if now < self._next_due:
                return False
            self.sample()
            return True

    def sample(self) -> float:
        """Take one sample unconditionally; returns its sim timestamp."""
        with self.latch:
            now = self.clock.now()
            flat = flatten_snapshot(self.registry.snapshot(self.like))
            for name, value in flat.items():
                series = self._series.get(name)
                if series is None:
                    series = self._series[name] = Series(name, self.capacity)
                series.append(now, value)
            self.samples_taken += 1
            self.last_sample_s = now
            if self._next_due is not None:
                self._next_due = now + self.interval_s
            return now

    # -- read side ------------------------------------------------------

    def names(self, like: str | None = None) -> list[str]:
        with self.latch:
            names = sorted(self._series)
        if like is None:
            return names
        return [n for n in names if fnmatchcase(n, like)]

    def series(self, name: str) -> Series | None:
        with self.latch:
            return self._series.get(name)

    def points(self, name: str, window_s: float | None = None) -> list:
        with self.latch:
            series = self._series.get(name)
            if series is None:
                return []
            return series.points(window_s, now=self.clock.now())

    def window(self, name: str, window_s: float | None = None) -> dict:
        """The windowed summary of one series (see :func:`summarize`)."""
        return summarize(self.points(name, window_s))

    def history(self, like: str | None = None, window_s: float | None = None) -> dict:
        """``{name: summary}`` for every (glob-matched) series."""
        return {
            name: self.window(name, window_s) for name in self.names(like)
        }

    def as_dict(self, like: str | None = None) -> dict:
        """The canonical history document: full retained points per
        series, schema-tagged, keys sorted — the ``--history --json``
        export CI diffs for byte-identity."""
        with self.latch:
            return {
                "schema": HISTORY_SCHEMA,
                "interval_s": self.interval_s,
                "samples": self.samples_taken,
                "series": {
                    name: [[t, v] for t, v in self._series[name].points()]
                    for name in self.names(like)
                },
            }

    # -- lifecycle ------------------------------------------------------

    def remove_prefix(self, prefix: str) -> None:
        """Drop every series under ``prefix`` (a dropped database or
        replica must not leave ghost history behind)."""
        with self.latch:
            for name in [n for n in self._series if n.startswith(prefix)]:
                del self._series[name]
