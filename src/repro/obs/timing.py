"""The host-clock boundary for real-time measurements.

Simulated timing belongs on ``env.clock`` / the tracer. The *host* clock
is only legitimate for meta-measurements — how fast the simulator itself
runs (benchmark ``real_seconds``, CLI elapsed). Those go through
:func:`host_timing`; reprolint rule RL006 flags bare
``host_perf_counter()`` deltas anywhere outside ``repro/obs`` and
``repro/sim`` so the two clock domains cannot silently mix.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.sim.clock import host_perf_counter


class HostTimer:
    """Elapsed host seconds over a ``with host_timing()`` region."""

    __slots__ = ("_start", "elapsed")

    def __init__(self) -> None:
        self._start = host_perf_counter()
        self.elapsed = 0.0

    def stop(self) -> float:
        self.elapsed = host_perf_counter() - self._start
        return self.elapsed


@contextmanager
def host_timing():
    """``with host_timing() as timer: ...`` — ``timer.elapsed`` holds the
    real seconds spent in the block (also updated live via
    :meth:`HostTimer.stop`)."""
    timer = HostTimer()
    try:
        yield timer
    finally:
        timer.stop()
