"""Chaos demo CLI: ``python -m repro.tools.chaos``.

Runs a seeded kill-the-primary drill: a small TPC-C workload with two
standbys and the replication pump active, a couple of injected transient
send faults (retried and healed), then a scheduled whole-primary crash.
The failure detector suspects the primary on the built-in ship-health
alerts, confirms it down, and the coordinator promotes the most-caught-up
survivor — the CLI prints ``SHOW HEALTH`` / ``SHOW ALERTS`` before and
after, the deterministic ``SHOW FAULTS`` schedule, and the HA timeline.

Because the injector, the workload, and every clock are seeded and
simulated, two invocations print byte-identical output — which is
exactly what CI's ``chaos`` job checks with ``--json``.

Usage::

    python -m repro.tools.chaos               # text drill report
    python -m repro.tools.chaos --json        # canonical JSON document
    python -m repro.tools.chaos --seed 7      # a different schedule
"""

from __future__ import annotations

import argparse
import json

from repro.chaos import FaultRule
from repro.config import SimEnv
from repro.engine.engine import Engine
from repro.workload import TpccDriver, TpccScale, load_tpcc

DEMO_SCALE = TpccScale(
    warehouses=1,
    districts_per_warehouse=2,
    customers_per_district=6,
    items=30,
)

#: Tables audited across the crash: committed ⇒ durable ⇒ survives.
AUDIT_TABLES = ("orders", "order_line", "history")


def _rows(db) -> dict[str, int]:
    return {t: sum(1 for _ in db.scan(t)) for t in AUDIT_TABLES}


def run_failover_drill(seed: int = 0) -> tuple[Engine, dict]:
    """The drill, returning the engine and its canonical document."""
    env = SimEnv.for_tests()
    engine = Engine(env)
    db = engine.create_database("shop")
    load_tpcc(db, DEMO_SCALE, seed=seed)
    driver = TpccDriver(db, DEMO_SCALE, seed=seed)
    engine.add_replica("shop", "sa")
    engine.add_replica("shop", "sb")
    engine.enable_read_offload()
    engine.enable_auto_failover(confirm_s=2.0)
    chaos = engine.enable_chaos(
        seed=seed,
        rules=[
            # A little pre-crash weather: two send faults, retried away.
            FaultRule(
                point="repl.ship.send", kind="transient",
                target="sa", max_hits=2,
            ),
        ],
    )
    driver.pump = engine.replication_tick

    # The zero-cost clock only moves explicitly: advance it between
    # rounds so retry backoff, monitor samples and the detector's
    # confirmation window all get wall-time to work with.
    for _ in range(3):
        driver.run_transactions(10)
        env.clock.advance(0.5)
        engine.replication_tick()

    health_before = engine.health()
    alerts_before = [list(r) for r in engine.sql("SHOW ALERTS").rows]
    rows_pre = _rows(db)

    chaos.schedule_crash("shop", env.clock.now() + 0.5)
    for _ in range(12):
        env.clock.advance(0.5)
        engine.replication_tick()

    promoted_name = engine.ha.completed.get("shop", "")
    promoted = engine.database(promoted_name) if promoted_name else None
    rows_post = _rows(promoted) if promoted is not None else {}
    document = {
        "seed": seed,
        "promoted": promoted_name,
        "databases": sorted(engine.databases),
        "replicas": sorted(engine.replicas),
        "health_before": health_before,
        "health_after": engine.health(),
        "alerts_before": alerts_before,
        "alerts_after": [list(r) for r in engine.sql("SHOW ALERTS").rows],
        "faults": engine.fault_events(),
        "ha": engine.ha_events,
        "alert_events": engine.alert_events(),
        "rows_pre_crash": rows_pre,
        "rows_post_failover": rows_post,
        "rows_lost": sum(
            rows_pre[t] - rows_post.get(t, 0) for t in AUDIT_TABLES
        ),
        "offload_routed": getattr(
            engine.routing_replica(promoted_name) if promoted_name else None,
            "name",
            None,
        ),
    }
    return engine, document


def _health_lines(doc: dict) -> list[str]:
    lines = [f"overall: {doc['overall']}"]
    for subsystem, entry in sorted(doc.get("subsystems", {}).items()):
        lines.append(f"  {subsystem}: {entry['verdict']}")
    return lines


def drill_text(document: dict) -> list[str]:
    lines = ["== before crash =="]
    lines += _health_lines(document["health_before"])
    if document["alerts_before"]:
        lines += [f"  alert: {row}" for row in document["alerts_before"]]
    else:
        lines.append("  (no alert conditions)")
    lines.append("== fault schedule (SHOW FAULTS) ==")
    for e in document["faults"]:
        lines.append(
            f"[t={e['t']:.6f}] {e['point']} {e['kind']} "
            f"target={e['target']}: {e['detail']}"
        )
    lines.append("== HA timeline ==")
    for e in document["ha"]:
        lines.append(f"[t={e['t']:.6f}] {e['event']} {e['db']}: {e['detail']}")
    lines.append("== after failover ==")
    lines.append(f"promoted: {document['promoted'] or '(none)'}")
    lines.append(f"databases: {', '.join(document['databases'])}")
    lines.append(
        f"read offload routed to: {document['offload_routed'] or '(primary)'}"
    )
    lines += _health_lines(document["health_after"])
    for row in document["alerts_after"]:
        lines.append(f"  alert: {row}")
    lines.append(
        f"committed rows across the crash: pre={document['rows_pre_crash']} "
        f"post={document['rows_post_failover']} "
        f"lost={document['rows_lost']}"
    )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Run a seeded kill-the-primary failover drill.",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical JSON document instead of text "
        "(byte-identical for one seed; CI diffs two runs)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    _engine, document = run_failover_drill(seed=args.seed)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for line in drill_text(document):
        print(line)
    if document["rows_lost"] or not document["promoted"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
