"""Operational tooling: log inspection and database consistency checking.

The kind of DBA-facing tools a system like the paper's ships with:
human-readable log dumps, per-page modification-chain traces (the paper's
Figures 1/2, live), per-transaction traces, and a structural consistency
checker in the spirit of ``DBCC CHECKDB``.
"""

from repro.tools.checkdb import CheckReport, check_database
from repro.tools.loginspect import (
    describe_record,
    dump_archive,
    dump_archived_segment,
    dump_log,
    log_statistics,
    page_history,
    transaction_history,
)

__all__ = [
    "describe_record",
    "dump_log",
    "dump_archive",
    "dump_archived_segment",
    "page_history",
    "transaction_history",
    "log_statistics",
    "check_database",
    "CheckReport",
]
