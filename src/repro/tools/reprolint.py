"""reprolint CLI: run the engine-invariant rules over source trees.

Usage::

    python -m repro.tools.reprolint src/ tests/
    python -m repro.tools.reprolint --list-rules
    python -m repro.tools.reprolint src/ --format json
    python -m repro.tools.reprolint src/ tests/ --gate   # CI: exit 1 on
                                                         # unbaselined findings

Exit status is 1 whenever unbaselined findings exist (``--gate`` is the
explicit spelling CI uses; it additionally fails on stale baseline
entries so the committed baseline can only shrink). Findings already in
the committed baseline (``reprolint-baseline.json``) are reported but do
not gate; this repo's baseline is empty — every pre-existing violation
was fixed, not grandfathered.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.findings import Baseline
from repro.analysis.framework import Analyzer, all_rules, iter_python_files
from repro.analysis.reporters import render_json, render_text, summary
from repro.obs.timing import host_timing

DEFAULT_BASELINE = "reprolint-baseline.json"


def _parse_rule_set(spec: str | None) -> set[str] | None:
    if spec is None:
        return None
    return {rule.strip().upper() for rule in spec.split(",") if rule.strip()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="Engine-invariant static analysis (LSN, priced I/O, "
        "determinism, error surface, shared state).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--select", metavar="RULES", help="comma-separated rule ids to run"
    )
    parser.add_argument(
        "--ignore", metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="CI mode: also fail on stale baseline entries",
    )
    parser.add_argument(
        "--no-snippets", action="store_true", help="omit source snippets"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="describe every rule"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id} {rule_cls.name}")
            print(f"    {rule_cls.invariant}")
        return 0

    with host_timing() as timer:
        try:
            analyzer = Analyzer(
                select=_parse_rule_set(args.select),
                ignore=_parse_rule_set(args.ignore),
            )
        except ValueError as err:
            parser.error(str(err))
        findings = analyzer.check_paths(args.paths)
        files = sum(1 for _ in iter_python_files(args.paths))
    elapsed = timer.elapsed

    if args.write_baseline:
        content = Baseline().dump(findings)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(content)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    baseline = Baseline()
    if os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)
    new, baselined = baseline.split(findings)
    stale = baseline.stale_entries(findings)

    if args.fmt == "json":
        print(render_json(new, baselined=baselined))
    else:
        for line in render_text(
            new, baselined=baselined, show_snippets=not args.no_snippets
        ):
            print(line)
        print(summary(new, baselined, files, elapsed))
        for rule, path, message in sorted(stale):
            print(f"stale baseline entry: {rule} {path}: {message}")

    if new:
        return 1
    if args.gate and stale:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    sys.exit(main())
