"""Structural consistency checker (in the spirit of ``DBCC CHECKDB``).

Walks the whole database verifying the invariants the engine relies on:

* allocation maps vs reality — every catalog-reachable page is allocated,
  no page belongs to two objects;
* B-tree structure — keys sorted within pages, separator keys bound their
  subtrees, leaf sibling links symmetric, levels consistent;
* page headers — object ids match the catalog, page ids match positions;
* rows decode under their table's schema.

Returns a :class:`CheckReport`; an empty ``problems`` list means healthy.
Also runs against snapshots — checking that an *as-of view* is itself a
structurally sound database is a strong end-to-end validation of the
undo machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.access.btree import decode_entry
from repro.storage.page import NULL_PAGE, PageType


@dataclass
class CheckReport:
    """Outcome of a consistency check."""

    pages_checked: int = 0
    rows_checked: int = 0
    objects_checked: int = 0
    problems: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def complain(self, message: str) -> None:
        self.problems.append(message)

    def __repr__(self) -> str:
        status = "OK" if self.ok else f"{len(self.problems)} problems"
        return (
            f"CheckReport({status}, pages={self.pages_checked}, "
            f"rows={self.rows_checked}, objects={self.objects_checked})"
        )


def check_database(target) -> CheckReport:
    """Check a database or snapshot; see module docstring."""
    report = CheckReport()
    catalog = target.catalog
    claimed: dict[int, int] = {}
    objects = catalog.list_objects(include_system=True)
    for info in objects:
        report.objects_checked += 1
        try:
            schema = catalog.load_schema(info)
        except Exception as exc:  # noqa: BLE001 - surface as a finding
            report.complain(f"{info.name}: schema unreadable: {exc}")
            continue
        if info.is_heap:
            _check_heap(target, info, schema, claimed, report)
        else:
            _check_btree(target, info, schema, claimed, report)
    _check_allocation(target, claimed, report)
    return report


def _claim(claimed, report, page_id: int, object_id: int, name: str) -> None:
    owner = claimed.get(page_id)
    if owner is not None and owner != object_id:
        report.complain(
            f"page {page_id} claimed by objects {owner} and {object_id} ({name})"
        )
    claimed[page_id] = object_id


def _check_btree(target, info, schema, claimed, report) -> None:
    from repro.storage.rowcodec import KeyCodec, RowCodec

    codec = RowCodec(schema)
    key_codec = KeyCodec.for_schema(schema)
    leaves_via_entries: list[int] = []

    def walk(page_id: int, level_expect: int | None, lo, hi) -> None:
        report.pages_checked += 1
        _claim(claimed, report, page_id, info.object_id, info.name)
        with target.fetch_page(page_id) as guard:
            page = guard.page
            if not page.is_formatted():
                report.complain(f"{info.name}: page {page_id} unformatted")
                return
            if page.page_type is not PageType.BTREE:
                report.complain(
                    f"{info.name}: page {page_id} has type {page.page_type.name}"
                )
                return
            if page.page_id != page_id:
                report.complain(
                    f"{info.name}: page {page_id} header claims id {page.page_id}"
                )
            if page.object_id != info.object_id:
                report.complain(
                    f"{info.name}: page {page_id} belongs to object {page.object_id}"
                )
            if level_expect is not None and page.level != level_expect:
                report.complain(
                    f"{info.name}: page {page_id} level {page.level}, "
                    f"expected {level_expect}"
                )
            if page.level == 0:
                leaves_via_entries.append(page_id)
                previous = None
                for payload in page.records():
                    try:
                        row = codec.decode(payload)
                    except Exception as exc:  # noqa: BLE001
                        report.complain(
                            f"{info.name}: page {page_id} row undecodable: {exc}"
                        )
                        continue
                    report.rows_checked += 1
                    key = schema.key_of(row)
                    if previous is not None and key <= previous:
                        report.complain(
                            f"{info.name}: page {page_id} keys out of order "
                            f"({previous!r} !< {key!r})"
                        )
                    if lo is not None and key < lo:
                        report.complain(
                            f"{info.name}: page {page_id} key {key!r} below "
                            f"separator {lo!r}"
                        )
                    if hi is not None and key >= hi:
                        report.complain(
                            f"{info.name}: page {page_id} key {key!r} at or "
                            f"above separator {hi!r}"
                        )
                    previous = key
                return
            # Interior node: recurse through entries.
            entries = []
            for payload in page.records():
                child, key_bytes = decode_entry(payload)
                key = key_codec.decode(key_bytes) if key_bytes is not None else None
                entries.append((child, key))
            if not entries:
                report.complain(f"{info.name}: interior page {page_id} empty")
                return
            separators = [key for _child, key in entries[1:]]
            if any(key is None for key in separators):
                report.complain(
                    f"{info.name}: page {page_id} has -inf beyond slot 0"
                )
            if separators != sorted(separators):
                report.complain(
                    f"{info.name}: page {page_id} separators out of order"
                )
            child_level = page.level - 1
            for index, (child, _key) in enumerate(entries):
                child_lo = separators[index - 1] if index >= 1 else lo
                child_hi = separators[index] if index < len(separators) else hi
                walk(child, child_level, child_lo, child_hi)

    walk(info.root_page, None, None, None)

    # Leaf sibling chain must visit exactly the leaves found via entries.
    via_chain = []
    pid = leaves_via_entries[0] if leaves_via_entries else NULL_PAGE
    seen = set()
    while pid != NULL_PAGE and pid not in seen:
        seen.add(pid)
        via_chain.append(pid)
        with target.fetch_page(pid) as guard:
            next_pid = guard.page.next_page
            if next_pid != NULL_PAGE:
                with target.fetch_page(next_pid) as right:
                    if right.page.prev_page != pid:
                        report.complain(
                            f"{info.name}: leaf chain asymmetry "
                            f"{pid} -> {next_pid} -> back {right.page.prev_page}"
                        )
        pid = next_pid
    if set(via_chain) != set(leaves_via_entries):
        report.complain(
            f"{info.name}: leaf chain covers {len(via_chain)} leaves, "
            f"entries reach {len(leaves_via_entries)}"
        )


def _check_heap(target, info, schema, claimed, report) -> None:
    from repro.storage.rowcodec import RowCodec

    codec = RowCodec(schema)
    pid = info.root_page
    seen = set()
    while pid != NULL_PAGE and pid not in seen:
        seen.add(pid)
        report.pages_checked += 1
        _claim(claimed, report, pid, info.object_id, info.name)
        with target.fetch_page(pid) as guard:
            page = guard.page
            if not page.is_formatted() or page.page_type is not PageType.HEAP:
                report.complain(f"{info.name}: heap page {pid} malformed")
                return
            for payload in page.records():
                if not payload:
                    continue  # tombstone
                try:
                    codec.decode(payload)
                    report.rows_checked += 1
                except Exception as exc:  # noqa: BLE001
                    report.complain(
                        f"{info.name}: heap page {pid} row undecodable: {exc}"
                    )
            pid = page.next_page


def _check_allocation(target, claimed, report) -> None:
    """Catalog-reachable pages must be allocated (primary databases only;
    snapshots have no live allocator view worth checking)."""
    alloc = getattr(target, "alloc", None)
    if alloc is None or not hasattr(alloc, "is_allocated"):
        return
    if type(alloc).__name__ == "SnapshotAllocator":
        return
    for page_id, object_id in claimed.items():
        if not alloc.is_allocated(page_id):
            report.complain(
                f"page {page_id} (object {object_id}) reachable but not allocated"
            )
