"""Observability export CLI: ``python -m repro.tools.obs``.

Runs a small seeded demo workload (priced devices, a handful of
transactions, one ``AS OF`` read) and exports the engine's metrics —
text (the same rendering ``SHOW METRICS`` rows use) or the canonical
JSON document benchmarks and the CI perf gate consume. ``--trace``
appends a span trace of a cold-vs-warm ``AS OF`` query pair, showing
the version-store hit eliminating the chain walk on the second run.

Because the workload is seeded and all timing is simulated, two
invocations print byte-identical output — which is exactly what CI's
``obs`` job checks.

The monitoring modes (``--watch``, ``--history``, ``--alerts``) run a
second seeded demo with a replica and an induced lag burst, so the
``repl.apply_lag`` alert deterministically fires and clears while the
recorder samples — the same scenario ``examples/monitoring_tour.py``
walks through.

Usage::

    python -m repro.tools.obs                 # text metrics
    python -m repro.tools.obs --json          # canonical JSON snapshot
    python -m repro.tools.obs --like 'pool.*' # filtered
    python -m repro.tools.obs --trace         # plus cold/warm span trees
    python -m repro.tools.obs --watch         # health during a lag burst
    python -m repro.tools.obs --history       # recorded series summaries
    python -m repro.tools.obs --alerts        # alert states + timeline
"""

from __future__ import annotations

import argparse
import json

from repro.config import CostModel, MonitorConfig, SimEnv
from repro.engine.engine import Engine
from repro.obs.export import format_metric_value, metrics_to_text
from repro.sim.device import SAS_10K


def build_demo_engine() -> Engine:
    """A tiny seeded engine with enough history for an AS OF read."""
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    engine.sql("CREATE DATABASE shop")
    with engine.session("shop") as session:
        session.execute(
            "CREATE TABLE items ("
            "id INT NOT NULL, qty INT, PRIMARY KEY (id))"
        )
        session.execute(
            "INSERT INTO items VALUES (1, 10), (2, 20), (3, 30)"
        )
        session.execute("UPDATE items SET qty = 11 WHERE id = 1")
        session.execute("CHECKPOINT")
        session.execute("UPDATE items SET qty = 22 WHERE id = 2")
    return engine


def demo_trace_lines(engine: Engine) -> list[str]:
    """Cold and warm span trees for one AS OF time.

    The pool is cleared between the runs, so the warm run re-creates the
    pooled snapshot — and its page preparation then *hits* the version
    store the cold run populated, skipping the chain walk.
    """
    as_of = engine.env.clock.now()
    with engine.session("shop") as session:
        lines = ["-- cold AS OF trace (chain walk) --"]
        result = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        lines.extend(line for (line,) in result.rows)
        engine.snapshot_pool.clear()
        lines.append("-- warm AS OF trace (version-store hits) --")
        result = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        lines.extend(line for (line,) in result.rows)
    return lines


def build_monitored_demo(watch_lines: list[str] | None = None) -> Engine:
    """A seeded engine running the monitored lag scenario to completion.

    A replica attaches, the monitor arms, a write burst runs *without*
    replication ticks (apply lag builds until ``repl.apply_lag`` fires),
    then replication catches up and the alert clears. ``watch_lines``
    collects health transitions as they happen — the ``--watch`` view.
    """
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(
        env,
        monitor_config=MonitorConfig(
            sample_interval_s=0.01,
            apply_lag_bytes=8 * 1024,
            slow_query_sim_s=0.005,
        ),
    )
    engine.sql("CREATE DATABASE shop")

    def note(stage: str) -> None:
        if watch_lines is not None:
            doc = engine.health()
            watch_lines.append(
                f"[t={env.clock.now():.6f}] {stage}: overall={doc['overall']} "
                f"firing={len(engine.active_alerts())}"
            )

    with engine.session("shop") as session:
        session.execute(
            "CREATE TABLE items (id INT NOT NULL, qty INT, PRIMARY KEY (id))"
        )
        engine.add_replica("shop", "standby")
        engine.replication_tick()
        engine.start_monitor()
        note("monitor armed")
        # Lag burst: writes without replication ticks; the SQL pump
        # point keeps sampling, so the recorder watches lag build.
        for i in range(120):
            session.execute(f"INSERT INTO items VALUES ({i}, {i * 10})")
        note("write burst done")
        engine.replication_tick()
        env.clock.advance(engine.monitor_config.sample_interval_s)
        session.execute("SELECT COUNT(*) FROM items")
        note("replication caught up")
    return engine


def history_text(engine: Engine, like: str | None = None) -> list[str]:
    """Per-series summary lines (the ``SHOW HISTORY`` view)."""
    lines = []
    for name, summary in engine.monitor_history(like).items():
        lines.append(
            f"{name}: points={summary['points']} "
            f"last={format_metric_value(summary['last'])} "
            f"min={format_metric_value(summary['min'])} "
            f"max={format_metric_value(summary['max'])} "
            f"mean={format_metric_value(summary['mean'])} "
            f"rate={format_metric_value(summary['rate_per_s'])}/s"
        )
    return lines


def alerts_text(engine: Engine) -> list[str]:
    """Alert condition rows plus the firing/cleared timeline."""
    monitor = engine.monitor
    lines = ["-- alert conditions --"]
    for row in monitor.alert_rows() if monitor is not None else []:
        lines.append(
            f"{row['rule']} on {row['metric']}: {row['state']} "
            f"({row['severity']}, fired {row['fired_count']}x)"
        )
    lines.append("-- event timeline --")
    for event in engine.alert_events():
        lines.append(
            f"[t={event['t']:.6f}] {event['event']}: {event['rule']} "
            f"on {event['metric']} value={format_metric_value(event['value'])}"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Run a seeded demo workload and export engine metrics.",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical metrics JSON document instead of text",
    )
    parser.add_argument(
        "--like",
        metavar="GLOB",
        default=None,
        help="filter metric names (fnmatch glob, as in SHOW METRICS LIKE)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also print cold/warm AS OF span traces (text mode only)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="run the monitored lag demo and print health transitions",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="run the monitored lag demo and print recorded series",
    )
    parser.add_argument(
        "--alerts",
        action="store_true",
        help="run the monitored lag demo and print alert states + events",
    )
    args = parser.parse_args(argv)

    if args.watch or args.history or args.alerts:
        watch_lines: list[str] = []
        engine = build_monitored_demo(watch_lines if args.watch else None)
        if args.json:
            monitor = engine.monitor
            document = {
                "history": monitor.recorder.as_dict(args.like),
                "alerts": monitor.alerts.as_dict(),
                "health": engine.health(),
                "slow_queries": engine.slow_queries.rows(),
            }
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        if args.watch:
            for line in watch_lines:
                print(line)
        if args.history:
            for line in history_text(engine, args.like):
                print(line)
        if args.alerts:
            for line in alerts_text(engine):
                print(line)
        if engine.slow_queries.rows():
            print(f"-- slow queries ({len(engine.slow_queries.rows())}) --")
            for row in engine.slow_queries.rows():
                print(
                    f"[t={row['t_s']:.6f}] {row['statement']} "
                    f"sim_s={format_metric_value(row['sim_s'])}"
                )
        return 0

    engine = build_demo_engine()
    trace_lines = demo_trace_lines(engine) if args.trace else []
    snap = engine.metrics_snapshot(args.like)
    if args.json:
        document = dict(snap)
        if trace_lines:
            document["trace"] = trace_lines
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for line in metrics_to_text(snap):
        print(line)
    for line in trace_lines:
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
