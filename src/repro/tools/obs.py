"""Observability export CLI: ``python -m repro.tools.obs``.

Runs a small seeded demo workload (priced devices, a handful of
transactions, one ``AS OF`` read) and exports the engine's metrics —
text (the same rendering ``SHOW METRICS`` rows use) or the canonical
JSON document benchmarks and the CI perf gate consume. ``--trace``
appends a span trace of a cold-vs-warm ``AS OF`` query pair, showing
the version-store hit eliminating the chain walk on the second run.

Because the workload is seeded and all timing is simulated, two
invocations print byte-identical output — which is exactly what CI's
``obs`` job checks.

Usage::

    python -m repro.tools.obs                 # text metrics
    python -m repro.tools.obs --json          # canonical JSON snapshot
    python -m repro.tools.obs --like 'pool.*' # filtered
    python -m repro.tools.obs --trace         # plus cold/warm span trees
"""

from __future__ import annotations

import argparse
import json

from repro.config import CostModel, SimEnv
from repro.engine.engine import Engine
from repro.obs.export import metrics_to_text
from repro.sim.device import SAS_10K


def build_demo_engine() -> Engine:
    """A tiny seeded engine with enough history for an AS OF read."""
    env = SimEnv(SAS_10K, SAS_10K, CostModel())
    engine = Engine(env)
    engine.sql("CREATE DATABASE shop")
    with engine.session("shop") as session:
        session.execute(
            "CREATE TABLE items ("
            "id INT NOT NULL, qty INT, PRIMARY KEY (id))"
        )
        session.execute(
            "INSERT INTO items VALUES (1, 10), (2, 20), (3, 30)"
        )
        session.execute("UPDATE items SET qty = 11 WHERE id = 1")
        session.execute("CHECKPOINT")
        session.execute("UPDATE items SET qty = 22 WHERE id = 2")
    return engine


def demo_trace_lines(engine: Engine) -> list[str]:
    """Cold and warm span trees for one AS OF time.

    The pool is cleared between the runs, so the warm run re-creates the
    pooled snapshot — and its page preparation then *hits* the version
    store the cold run populated, skipping the chain walk.
    """
    as_of = engine.env.clock.now()
    with engine.session("shop") as session:
        lines = ["-- cold AS OF trace (chain walk) --"]
        result = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        lines.extend(line for (line,) in result.rows)
        engine.snapshot_pool.clear()
        lines.append("-- warm AS OF trace (version-store hits) --")
        result = session.execute(f"TRACE SELECT * FROM items AS OF {as_of}")
        lines.extend(line for (line,) in result.rows)
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Run a seeded demo workload and export engine metrics.",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical metrics JSON document instead of text",
    )
    parser.add_argument(
        "--like",
        metavar="GLOB",
        default=None,
        help="filter metric names (fnmatch glob, as in SHOW METRICS LIKE)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also print cold/warm AS OF span traces (text mode only)",
    )
    args = parser.parse_args(argv)

    engine = build_demo_engine()
    trace_lines = demo_trace_lines(engine) if args.trace else []
    snap = engine.metrics_snapshot(args.like)
    if args.json:
        document = dict(snap)
        if trace_lines:
            document["trace"] = trace_lines
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    for line in metrics_to_text(snap):
        print(line)
    for line in trace_lines:
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
