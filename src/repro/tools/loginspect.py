"""Transaction log inspection.

``page_history`` walks a page's ``prevPageLSN`` back-chain — the exact
structure of the paper's Figures 1 and 2, including the preformat splice
across re-allocations. ``transaction_history`` walks a transaction's
chain; ``dump_log`` and ``log_statistics`` summarize the stream.

Archived log segments (the shipper's frame format, persisted by the
archive tier) are inspectable too: :func:`dump_archived_segment` decodes
one encoded frame, :func:`dump_archive` walks a store or a directory of
``.seg`` files, and the module doubles as a CLI::

    python -m repro.tools.loginspect --archive <file-or-dir> [--limit N]
    python -m repro.tools.loginspect --archive <file-or-dir> --chains

``--chains`` (and the :func:`chain_stats` API on a live database) answers
the capacity question behind Figure 11: how long are the per-page
back-chains, and what would preparing each page cost? The live-database
walk uses the same header-only discovery pass as the batched
``PreparePageAsOf`` path, so the estimate prices both the naive
one-random-read-per-record walk and the coalesced
:meth:`~repro.wal.log_manager.LogManager.read_many` plan.
"""

from __future__ import annotations

import os
from collections import Counter

from repro.errors import LogTruncatedError
from repro.wal.lsn import NULL_LSN, format_lsn
from repro.wal.records import (
    BeginRecord,
    CheckpointBeginRecord,
    ClrRecord,
    CommitRecord,
    DeleteRowRecord,
    InsertRowRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
    UpdateRowRecord,
    decode_record,
)


def describe_record(rec: LogRecord) -> str:
    """One-line human-readable rendering of a log record."""
    name = type(rec).__name__.replace("Record", "")
    parts = [f"{format_lsn(rec.lsn)} {name}"]
    if rec.txn_id:
        parts.append(f"txn={rec.txn_id}")
    if rec.IS_PAGE_MOD:
        parts.append(f"page={rec.page_id}")
        parts.append(f"prev_page={format_lsn(rec.prev_page_lsn)}")
    if rec.object_id:
        parts.append(f"obj={rec.object_id}")
    if isinstance(rec, CommitRecord):
        parts.append(f"wall={rec.wall_clock:.3f}")
    elif isinstance(rec, CheckpointBeginRecord):
        parts.append(f"wall={rec.wall_clock:.3f}")
        parts.append(f"active={len(rec.active_txns)}")
    elif isinstance(rec, InsertRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append(f"bytes={len(rec.row)}")
    elif isinstance(rec, DeleteRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append("row=inline" if rec.row is not None else f"pair={format_lsn(rec.pair_lsn)}")
    elif isinstance(rec, UpdateRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append(f"new={len(rec.new)}B")
    elif isinstance(rec, ClrRecord):
        parts.append(f"compensates={format_lsn(rec.compensated_lsn)}")
        parts.append(f"undo_next={format_lsn(rec.undo_next_lsn)}")
        parts.append(f"comp={type(rec.comp).__name__.replace('Record', '')}")
    elif isinstance(rec, (PageImageRecord, PreformatPageRecord)):
        parts.append(f"image={len(rec.image)}B")
    if rec.is_smo:
        parts.append("SMO")
    if rec.is_heap:
        parts.append("HEAP")
    return " ".join(parts)


def dump_log(db, from_lsn: int | None = None, limit: int = 100) -> list[str]:
    """Describe up to ``limit`` records starting at ``from_lsn``."""
    start = from_lsn if from_lsn is not None else db.log.start_lsn
    lines = []
    for rec in db.log.scan(start, stop_on_torn_tail=True):
        lines.append(describe_record(rec))
        if len(lines) >= limit:
            break
    return lines


def page_history(db, page_id: int, *, max_records: int = 1000) -> list[LogRecord]:
    """The page's modification chain, newest first (paper Figures 1/2).

    Starts at the page's current ``pageLSN`` and follows ``prevPageLSN``
    through preformat splices until the chain starts (or leaves the
    retained log, in which case the walk stops silently).
    """
    with db.fetch_page(page_id) as guard:
        current = guard.page.page_lsn if guard.page.is_formatted() else NULL_LSN
    chain = []
    while current != NULL_LSN and len(chain) < max_records:
        try:
            rec = db.log.read(current)
        except LogTruncatedError:
            break
        chain.append(rec)
        current = rec.prev_page_lsn
    return chain


def transaction_history(db, txn_id: int, *, max_records: int = 1000) -> list[LogRecord]:
    """A transaction's records, newest first (rollbacks included)."""
    last = NULL_LSN
    for rec in db.log.scan(db.log.start_lsn, stop_on_torn_tail=True):
        if rec.txn_id == txn_id:
            last = rec.lsn
    chain = []
    current = last
    while current != NULL_LSN and len(chain) < max_records:
        rec = db.log.read(current)
        chain.append(rec)
        if isinstance(rec, BeginRecord):
            break
        current = rec.prev_txn_lsn
    return chain


_CHAIN_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)


def _bucket_label(length: int) -> str:
    lo = 0
    for edge in _CHAIN_BUCKETS:
        if length < edge:
            return str(lo) if lo == edge - 1 else f"{lo}-{edge - 1}"
        lo = edge
    return f"{_CHAIN_BUCKETS[-1]}+"


def _coalesced_spans(blocks: set[int], gap: int) -> list[tuple[int, int]]:
    """The ``(first, last)`` block spans ``read_many`` would issue."""
    spans: list[list[int]] = []
    for block in sorted(blocks):
        if spans and block - spans[-1][1] - 1 <= gap:
            spans[-1][1] = block
        else:
            spans.append([block, block])
    return [(start, end) for start, end in spans]


def chain_stats(db, *, split_lsn: int | None = None, max_pages: int | None = None) -> dict:
    """Per-page back-chain lengths and estimated prepare cost.

    Walks every allocated page's ``prevPageLSN`` chain with the same
    header-only reads the batched ``PreparePageAsOf`` path uses for
    discovery — down to ``split_lsn`` when given (the records an as-of
    read at that split would undo), otherwise to the start of the
    retained log. Returns a histogram of chain lengths plus, per the
    log-device profile, the estimated cost of preparing *every* page
    naively (one random block read per record, the paper's Figure 11
    cost) versus batched (coalesced spans via ``read_many``).
    """
    from repro.wal.log_manager import HEADER_READ_BYTES

    log = db.log
    profile = db.env.log_device.profile
    target = db.log.start_lsn - 1 if split_lsn is None else split_lsn
    histogram: Counter = Counter()
    lengths: list[int] = []
    total_records = 0
    naive_reads = 0
    batched_spans = 0
    batched_s = 0.0
    truncated_chains = 0
    pages_scanned = 0
    # Dirty pages not yet checkpointed exist only in the buffer pool, so
    # the scan covers the file extent *and* every buffered page id.
    page_extent = db.file_manager.page_count
    buffered = getattr(db.buffer, "_frames", None)
    if buffered:
        page_extent = max(page_extent, max(buffered) + 1)
    for page_id in range(page_extent):
        if max_pages is not None and pages_scanned >= max_pages:
            break
        with db.fetch_page(page_id) as guard:
            if not guard.page.is_formatted():
                continue
            current = guard.page.page_lsn
        pages_scanned += 1
        length = 0
        blocks: set[int] = set()
        while current != NULL_LSN and current > target:
            try:
                header = log.read_header(current)
            except LogTruncatedError:
                truncated_chains += 1
                break
            length += 1
            blocks.add(current // log.block_size)
            current = header.prev_page_lsn
        histogram[_bucket_label(length)] += 1
        lengths.append(length)
        total_records += length
        naive_reads += len(blocks)
        spans = _coalesced_spans(blocks, log.coalesce_gap_blocks)
        batched_spans += len(spans)
        # Price the batched plan the way read_many charges it: one random
        # read of the whole span (gap blocks included) per span, plus one
        # sector-priced header read per chain record for discovery.
        for start, end in spans:
            batched_s += profile.rand_read_time((end - start + 1) * log.block_size)
        batched_s += length * profile.rand_read_time(HEADER_READ_BYTES)
    lengths.sort()
    naive_s = naive_reads * profile.rand_read_time(log.block_size)
    return {
        "pages_scanned": pages_scanned,
        "split_lsn": split_lsn,
        "histogram": dict(histogram),
        "total_chain_records": total_records,
        "max_chain": lengths[-1] if lengths else 0,
        "median_chain": lengths[len(lengths) // 2] if lengths else 0,
        "truncated_chains": truncated_chains,
        "naive_undo_reads": naive_reads,
        "batched_undo_reads": batched_spans,
        "est_naive_prepare_s": naive_s,
        "est_batched_prepare_s": batched_s,
    }


def _render_histogram(histogram: dict[str, int]) -> list[str]:
    lines = []
    width = max((len(label) for label in histogram), default=1)
    for label in sorted(histogram, key=lambda item: int(item.split("-")[0].rstrip("+"))):
        count = histogram[label]
        bar = "#" * min(count, 60)
        lines.append(f"  {label.rjust(width)} | {str(count).rjust(6)} {bar}")
    return lines


def chain_report(db, *, split_lsn: int | None = None, max_pages: int | None = None) -> list[str]:
    """Human-readable rendering of :func:`chain_stats`."""
    stats = chain_stats(db, split_lsn=split_lsn, max_pages=max_pages)
    lines = [
        "per-page back-chain lengths"
        + ("" if split_lsn is None else f" above split {format_lsn(split_lsn)}")
    ]
    lines.extend(_render_histogram(stats["histogram"]))
    lines.append(
        f"  pages={stats['pages_scanned']} "
        f"chain-records={stats['total_chain_records']} "
        f"median={stats['median_chain']} max={stats['max_chain']}"
    )
    lines.append(
        f"  est prepare cost: naive {stats['naive_undo_reads']} reads "
        f"({stats['est_naive_prepare_s'] * 1000:.1f} ms), batched "
        f"{stats['batched_undo_reads']} spans "
        f"({stats['est_batched_prepare_s'] * 1000:.1f} ms)"
    )
    return lines


def _collect_segments(source, db_name: str | None) -> list[tuple[str, bytes]]:
    """``(label, blob)`` for every segment of ``source``, in LSN order.

    ``source`` may be an ArchiveStore, a ``.seg`` file path, or a
    directory of them; the label is the file name (path mode) or the
    database name (store mode), for use in diagnostics.
    """
    out: list[tuple[str, bytes]] = []
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        paths = (
            sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if _segment_file_matches(name, db_name)
            )
            if os.path.isdir(path)
            else [path]
        )
        for seg_path in paths:
            with open(seg_path, "rb") as fh:
                out.append((os.path.basename(seg_path), fh.read()))
    else:
        names = [db_name] if db_name is not None else source.database_names()
        for name in names:
            out.extend((name, seg.blob) for seg in source.segments(name))
    return out


def archive_chain_report(source, db_name: str | None = None) -> list[str]:
    """Per-page chain-length histogram over *archived* segments.

    An archive has no page state to walk back from, but every page
    modification record it holds is one link of some page's chain — so
    grouping the archived records by page id reproduces the chain-length
    distribution over the archived window (what an as-of read landing at
    the window's start would have to undo per page).
    """
    from repro.replication.stream import LogFrame

    blobs = [blob for _label, blob in _collect_segments(source, db_name)]
    lengths: dict[int, int] = {}
    for blob in blobs:
        frame = LogFrame.decode(blob)
        offset = 0
        while offset < len(frame.payload):
            record, offset = decode_record(
                frame.payload, offset, frame.start_lsn + offset
            )
            if record.IS_PAGE_MOD:
                lengths[record.page_id] = lengths.get(record.page_id, 0) + 1
    histogram: Counter = Counter()
    for length in lengths.values():
        histogram[_bucket_label(length)] += 1
    lines = ["per-page modification-chain lengths over archived segments"]
    lines.extend(_render_histogram(histogram))
    lines.append(
        f"  pages={len(lengths)} chain-records={sum(lengths.values())}"
    )
    return lines


def dump_archived_segment(blob: bytes, *, limit: int | None = None) -> list[str]:
    """Describe one encoded archived log segment (a shipped frame).

    The first line summarizes the frame (LSN extent, ship time); the rest
    describe its records with the same rendering ``dump_log`` uses.
    """
    from repro.replication.stream import LogFrame

    frame = LogFrame.decode(blob)
    lines = [
        f"segment [{format_lsn(frame.start_lsn)}, {format_lsn(frame.end_lsn)}) "
        f"{len(frame.payload)}B shipped at {frame.ship_wall:.3f}s"
    ]
    offset = 0
    while offset < len(frame.payload):
        record, offset = decode_record(
            frame.payload, offset, frame.start_lsn + offset
        )
        lines.append("  " + describe_record(record))
        if limit is not None and len(lines) > limit:
            lines.append("  ...")
            break
    return lines


def _segment_file_matches(name: str, db_name: str | None) -> bool:
    """Does ``name`` look like ``<db>-<16 hex>-<16 hex>.seg`` (for the
    requested database)? A bare prefix test would let ``shop`` swallow
    ``shop-eu``'s segments."""
    if not name.endswith(".seg"):
        return False
    parts = name[: -len(".seg")].rsplit("-", 2)
    if len(parts) != 3 or not all(len(p) == 16 for p in parts[1:]):
        return False
    try:
        int(parts[1], 16)
        int(parts[2], 16)
    except ValueError:
        return False
    return db_name is None or parts[0] == db_name


def dump_archive(source, db_name: str | None = None, *, limit: int = 100) -> list[str]:
    """Describe archived segments from an ArchiveStore, a ``.seg`` file,
    or a directory of them; at most ``limit`` record lines overall."""
    lines: list[str] = []
    for _label, blob in _collect_segments(source, db_name):
        remaining = limit - len(lines)
        if remaining <= 0:
            lines.append("...")
            break
        lines.extend(dump_archived_segment(blob, limit=remaining))
    return lines


def metrics_report(engine, db_name: str | None = None) -> list[str]:
    """Cursor-lag and health gauges for a live engine, as text lines.

    Reads the shipping/apply/archive/retention sections of the engine's
    metrics registry (``shipper.*``, ``archive.*``, ``replica.*``,
    ``log.*``, ``retention.*``). ``db_name`` keeps only instruments whose
    instance segment matches (replica instruments are named after the
    *replica*, so they pass the filter only unfiltered). Histograms are
    reported as interpolated p50/p95/p99 summaries rather than raw
    bucket dumps.
    """
    from repro.obs.export import (
        flatten_snapshot,
        format_metric_value,
        histogram_percentiles,
    )

    sections = ("shipper", "archive", "replica", "log", "retention")
    snap = engine.metrics_snapshot()
    lines = []
    for name, value in flatten_snapshot(snap).items():
        head, _, rest = name.partition(".")
        if head not in sections:
            continue
        if db_name is not None and not rest.startswith(f"{db_name}."):
            continue
        lines.append(f"{name} = {format_metric_value(value)}")
    for name in sorted(snap.get("histograms", {})):
        hist = snap["histograms"][name]
        if hist["count"] == 0:
            continue
        quantiles = " ".join(
            f"{label}={format_metric_value(value)}"
            for label, value in histogram_percentiles(hist).items()
        )
        lines.append(f"{name}: count={hist['count']} {quantiles}")
    return lines


def archive_metrics_report(source, db_name: str | None = None) -> list[str]:
    """Offline cursor gauges recovered from archived segments alone.

    With only an archive directory (no live engine) the observable facts
    are each database's archived extent and volume: where the durable
    archive cursor stands (``archived_lsn``), where coverage starts, and
    how many segments/bytes the store holds. The names mirror the live
    ``archive.<db>.*`` instruments so dashboards can read either source.
    """
    from repro.replication.stream import LogFrame

    per_db: dict[str, dict] = {}
    for label, blob in _collect_segments(source, db_name):
        frame = LogFrame.decode(blob)
        db_key = label.rsplit("-", 2)[0]
        entry = per_db.setdefault(
            db_key, {"segments": 0, "bytes": 0, "start": None, "end": None}
        )
        entry["segments"] += 1
        entry["bytes"] += len(frame.payload)
        if entry["start"] is None or frame.start_lsn < entry["start"]:
            entry["start"] = frame.start_lsn
        if entry["end"] is None or frame.end_lsn > entry["end"]:
            entry["end"] = frame.end_lsn
    lines = []
    for db_key in sorted(per_db):
        entry = per_db[db_key]
        lines.append(f"archive.{db_key}.archived_lsn = {entry['end']}")
        lines.append(f"archive.{db_key}.coverage_start_lsn = {entry['start']}")
        lines.append(f"archive.{db_key}.segments_archived = {entry['segments']}")
        lines.append(f"archive.{db_key}.bytes_archived = {entry['bytes']}")
    return lines


def lint_log_segments(source, db_name: str | None = None):
    """Integrity micro-check over archived log segments.

    Verifies what the analyzer's source rules cannot: the *artifacts*.
    Every segment must decode (magic, length, CRC — ``LOG001``), its
    records must exactly tile the payload (``LOG002``), and segment
    extents must be LSN-monotonic with no overlap or gap (``LOG003``).
    Returns :class:`repro.analysis.findings.Finding` objects so the
    reprolint reporters render them.
    """
    from repro.analysis.findings import Finding
    from repro.errors import ReproError
    from repro.replication.stream import LogFrame

    findings = []
    prev_end: dict[str, tuple[str, int]] = {}
    for index, (label, blob) in enumerate(_collect_segments(source, db_name)):
        try:
            frame = LogFrame.decode(blob)
        except ReproError as err:
            findings.append(
                Finding(label, index, 0, "LOG001", f"undecodable segment: {err}")
            )
            continue
        db_key = label.rsplit("-", 2)[0]
        offset = 0
        while offset < len(frame.payload):
            try:
                _record, offset = decode_record(
                    frame.payload, offset, frame.start_lsn + offset
                )
            except (ReproError, ValueError) as err:
                findings.append(
                    Finding(
                        label,
                        index,
                        offset,
                        "LOG002",
                        f"record stream broken at "
                        f"{format_lsn(frame.start_lsn + offset)}: {err}",
                    )
                )
                break
        previous = prev_end.get(db_key)
        if previous is not None:
            prev_label, end_lsn = previous
            if frame.start_lsn != end_lsn:
                kind = "overlaps" if frame.start_lsn < end_lsn else "leaves a gap after"
                findings.append(
                    Finding(
                        label,
                        index,
                        0,
                        "LOG003",
                        f"segment starts at {format_lsn(frame.start_lsn)} but "
                        f"{kind} {prev_label} ending at {format_lsn(end_lsn)}",
                    )
                )
        prev_end[db_key] = (label, frame.end_lsn)
    return findings


def main(argv=None) -> int:
    """CLI entry point (``python -m repro.tools.loginspect``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="loginspect",
        description="Inspect archived transaction-log segments.",
    )
    parser.add_argument(
        "--archive",
        metavar="PATH",
        required=True,
        help="an archived .seg file, or a directory of them",
    )
    parser.add_argument(
        "--db",
        metavar="NAME",
        default=None,
        help="only segments of this database (directory mode)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=100,
        help="maximum record lines to print (default 100)",
    )
    parser.add_argument(
        "--chains",
        action="store_true",
        help="histogram of per-page modification-chain lengths instead "
        "of a record dump (estimates as-of prepare cost)",
    )
    parser.add_argument(
        "--lint-log",
        action="store_true",
        help="integrity check instead of a dump: segments must decode "
        "CRC-clean, tile into records, and be LSN-monotonic; exits 1 "
        "on findings",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="per-database archive cursor gauges (archived_lsn, coverage "
        "start, segment/byte volume) instead of a record dump",
    )
    args = parser.parse_args(argv)
    if args.metrics:
        for line in archive_metrics_report(args.archive, args.db):
            print(line)
        return 0
    if args.lint_log:
        from repro.analysis.reporters import render_text

        findings = lint_log_segments(args.archive, args.db)
        for line in render_text(findings, baselined=()):
            print(line)
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"loginspect --lint-log: {len(findings)} {noun}")
        return 1 if findings else 0
    if args.chains:
        lines = archive_chain_report(args.archive, args.db)
    else:
        lines = dump_archive(args.archive, args.db, limit=args.limit)
    for line in lines:
        print(line)
    return 0


def log_statistics(db) -> dict:
    """Counts and byte totals per record type over the retained log."""
    counts: Counter = Counter()
    sizes: Counter = Counter()
    total = 0
    for rec in db.log.scan(db.log.start_lsn, stop_on_torn_tail=True):
        name = type(rec).__name__.replace("Record", "")
        size = len(rec.serialize())
        counts[name] += 1
        sizes[name] += size
        total += size
    return {
        "records": dict(counts),
        "bytes": dict(sizes),
        "total_records": sum(counts.values()),
        "total_bytes": total,
        "retained_from": db.log.start_lsn,
        "end_lsn": db.log.end_lsn,
    }


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
