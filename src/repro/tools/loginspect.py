"""Transaction log inspection.

``page_history`` walks a page's ``prevPageLSN`` back-chain — the exact
structure of the paper's Figures 1 and 2, including the preformat splice
across re-allocations. ``transaction_history`` walks a transaction's
chain; ``dump_log`` and ``log_statistics`` summarize the stream.

Archived log segments (the shipper's frame format, persisted by the
archive tier) are inspectable too: :func:`dump_archived_segment` decodes
one encoded frame, :func:`dump_archive` walks a store or a directory of
``.seg`` files, and the module doubles as a CLI::

    python -m repro.tools.loginspect --archive <file-or-dir> [--limit N]
"""

from __future__ import annotations

import os
from collections import Counter

from repro.errors import LogTruncatedError
from repro.wal.lsn import NULL_LSN, format_lsn
from repro.wal.records import (
    BeginRecord,
    CheckpointBeginRecord,
    ClrRecord,
    CommitRecord,
    DeleteRowRecord,
    InsertRowRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
    UpdateRowRecord,
    decode_record,
)


def describe_record(rec: LogRecord) -> str:
    """One-line human-readable rendering of a log record."""
    name = type(rec).__name__.replace("Record", "")
    parts = [f"{format_lsn(rec.lsn)} {name}"]
    if rec.txn_id:
        parts.append(f"txn={rec.txn_id}")
    if rec.IS_PAGE_MOD:
        parts.append(f"page={rec.page_id}")
        parts.append(f"prev_page={format_lsn(rec.prev_page_lsn)}")
    if rec.object_id:
        parts.append(f"obj={rec.object_id}")
    if isinstance(rec, CommitRecord):
        parts.append(f"wall={rec.wall_clock:.3f}")
    elif isinstance(rec, CheckpointBeginRecord):
        parts.append(f"wall={rec.wall_clock:.3f}")
        parts.append(f"active={len(rec.active_txns)}")
    elif isinstance(rec, InsertRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append(f"bytes={len(rec.row)}")
    elif isinstance(rec, DeleteRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append("row=inline" if rec.row is not None else f"pair={format_lsn(rec.pair_lsn)}")
    elif isinstance(rec, UpdateRowRecord):
        parts.append(f"slot={rec.slot}")
        parts.append(f"new={len(rec.new)}B")
    elif isinstance(rec, ClrRecord):
        parts.append(f"compensates={format_lsn(rec.compensated_lsn)}")
        parts.append(f"undo_next={format_lsn(rec.undo_next_lsn)}")
        parts.append(f"comp={type(rec.comp).__name__.replace('Record', '')}")
    elif isinstance(rec, (PageImageRecord, PreformatPageRecord)):
        parts.append(f"image={len(rec.image)}B")
    if rec.is_smo:
        parts.append("SMO")
    if rec.is_heap:
        parts.append("HEAP")
    return " ".join(parts)


def dump_log(db, from_lsn: int | None = None, limit: int = 100) -> list[str]:
    """Describe up to ``limit`` records starting at ``from_lsn``."""
    start = from_lsn if from_lsn is not None else db.log.start_lsn
    lines = []
    for rec in db.log.scan(start, stop_on_torn_tail=True):
        lines.append(describe_record(rec))
        if len(lines) >= limit:
            break
    return lines


def page_history(db, page_id: int, *, max_records: int = 1000) -> list[LogRecord]:
    """The page's modification chain, newest first (paper Figures 1/2).

    Starts at the page's current ``pageLSN`` and follows ``prevPageLSN``
    through preformat splices until the chain starts (or leaves the
    retained log, in which case the walk stops silently).
    """
    with db.fetch_page(page_id) as guard:
        current = guard.page.page_lsn if guard.page.is_formatted() else NULL_LSN
    chain = []
    while current != NULL_LSN and len(chain) < max_records:
        try:
            rec = db.log.read(current)
        except LogTruncatedError:
            break
        chain.append(rec)
        current = rec.prev_page_lsn
    return chain


def transaction_history(db, txn_id: int, *, max_records: int = 1000) -> list[LogRecord]:
    """A transaction's records, newest first (rollbacks included)."""
    last = NULL_LSN
    for rec in db.log.scan(db.log.start_lsn, stop_on_torn_tail=True):
        if rec.txn_id == txn_id:
            last = rec.lsn
    chain = []
    current = last
    while current != NULL_LSN and len(chain) < max_records:
        rec = db.log.read(current)
        chain.append(rec)
        if isinstance(rec, BeginRecord):
            break
        current = rec.prev_txn_lsn
    return chain


def dump_archived_segment(blob: bytes, *, limit: int | None = None) -> list[str]:
    """Describe one encoded archived log segment (a shipped frame).

    The first line summarizes the frame (LSN extent, ship time); the rest
    describe its records with the same rendering ``dump_log`` uses.
    """
    from repro.replication.stream import LogFrame

    frame = LogFrame.decode(blob)
    lines = [
        f"segment [{format_lsn(frame.start_lsn)}, {format_lsn(frame.end_lsn)}) "
        f"{len(frame.payload)}B shipped at {frame.ship_wall:.3f}s"
    ]
    offset = 0
    while offset < len(frame.payload):
        record, offset = decode_record(
            frame.payload, offset, frame.start_lsn + offset
        )
        lines.append("  " + describe_record(record))
        if limit is not None and len(lines) > limit:
            lines.append("  ...")
            break
    return lines


def _segment_file_matches(name: str, db_name: str | None) -> bool:
    """Does ``name`` look like ``<db>-<16 hex>-<16 hex>.seg`` (for the
    requested database)? A bare prefix test would let ``shop`` swallow
    ``shop-eu``'s segments."""
    if not name.endswith(".seg"):
        return False
    parts = name[: -len(".seg")].rsplit("-", 2)
    if len(parts) != 3 or not all(len(p) == 16 for p in parts[1:]):
        return False
    try:
        int(parts[1], 16), int(parts[2], 16)
    except ValueError:
        return False
    return db_name is None or parts[0] == db_name


def dump_archive(source, db_name: str | None = None, *, limit: int = 100) -> list[str]:
    """Describe archived segments from an ArchiveStore, a ``.seg`` file,
    or a directory of them; at most ``limit`` record lines overall."""
    blobs: list[bytes] = []
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        paths = (
            sorted(
                os.path.join(path, name)
                for name in os.listdir(path)
                if _segment_file_matches(name, db_name)
            )
            if os.path.isdir(path)
            else [path]
        )
        for seg_path in paths:
            with open(seg_path, "rb") as fh:
                blobs.append(fh.read())
    else:
        names = [db_name] if db_name is not None else source.database_names()
        for name in names:
            blobs.extend(seg.blob for seg in source.segments(name))
    lines: list[str] = []
    for blob in blobs:
        remaining = limit - len(lines)
        if remaining <= 0:
            lines.append("...")
            break
        lines.extend(dump_archived_segment(blob, limit=remaining))
    return lines


def main(argv=None) -> int:
    """CLI entry point (``python -m repro.tools.loginspect``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="loginspect",
        description="Inspect archived transaction-log segments.",
    )
    parser.add_argument(
        "--archive",
        metavar="PATH",
        required=True,
        help="an archived .seg file, or a directory of them",
    )
    parser.add_argument(
        "--db",
        metavar="NAME",
        default=None,
        help="only segments of this database (directory mode)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        default=100,
        help="maximum record lines to print (default 100)",
    )
    args = parser.parse_args(argv)
    for line in dump_archive(args.archive, args.db, limit=args.limit):
        print(line)
    return 0


def log_statistics(db) -> dict:
    """Counts and byte totals per record type over the retained log."""
    counts: Counter = Counter()
    sizes: Counter = Counter()
    total = 0
    for rec in db.log.scan(db.log.start_lsn, stop_on_torn_tail=True):
        name = type(rec).__name__.replace("Record", "")
        size = len(rec.serialize())
        counts[name] += 1
        sizes[name] += size
        total += size
    return {
        "records": dict(counts),
        "bytes": dict(sizes),
        "total_records": sum(counts.values()),
        "total_bytes": total,
        "retained_from": db.log.start_lsn,
        "end_lsn": db.log.end_lsn,
    }


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    import sys

    sys.exit(main())
