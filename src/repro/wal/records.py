"""Log record types, their serialization, and their redo/undo semantics.

Every record that modifies a page carries ``prev_page_lsn`` — the page's
LSN before this modification — forming the per-page back-chain that
``PreparePageAsOf`` (paper section 4) walks. Records expose two operations:

* ``redo(page)`` — replay the modification (ARIES redo pass, restore
  roll-forward). Physiological: a logical operation on an identified page.
* ``physical_undo(page, fetch)`` — exactly invert the modification on the
  page, used by page-oriented undo while walking the chain in reverse.
  ``fetch`` is a callable ``lsn -> LogRecord`` used to *derive* undo
  information that the paper's section 4.2 extensions would have embedded:
  a structure-modification delete without a row image derives it from its
  paired insert; a CLR without undo info derives it from the record it
  compensates. Derivation costs extra log reads — the trade-off the paper
  calls out when it "chooses simplicity over optimizing the size".

Transaction rollback does **not** use ``physical_undo`` for ordinary row
operations; it performs *logical* undo (re-locating the row by key) because
other transactions may have shifted slots or structure modifications may
have moved rows to other pages. Rollback lives in
:mod:`repro.txn.manager`; the per-record payloads here (``key_bytes``,
``row``) are what it consumes.
"""

from __future__ import annotations

import enum
import struct
import zlib

from repro.errors import (
    LogRecordDecodeError,
    MissingUndoInfoError,
    WalError,
)
from repro.storage.page import (
    NULL_PAGE,
    Page,
    PageType,
    alloc_bitmap_geometry,
    ever_bit_offset,
)
from repro.wal.lsn import NULL_LSN, format_lsn

#: Magic bytes opening the log stream (LSN space starts after them).
LOG_HEADER_MAGIC = b"REPROLOG"

#: Record flag: part of a B-tree structure modification (system transaction).
FLAG_SMO = 0x01
#: Record flag: heap row (rollback tombstones instead of key lookup).
FLAG_HEAP = 0x02

_HEADER = struct.Struct("<IBBQQIQII")
HEADER_SIZE = _HEADER.size  # 42 bytes


class RecordHeader:
    """A decoded record header, without the body.

    The per-page back-chain (``prev_page_lsn``) and the per-transaction
    chain (``prev_txn_lsn``) both live in the fixed-size header, so chain
    *discovery* never needs record bodies: the batched undo path walks
    headers first, then fetches the full records in one coalesced pass
    (:meth:`repro.wal.log_manager.LogManager.read_many`).
    """

    __slots__ = (
        "lsn",
        "total",
        "record_type",
        "flags",
        "txn_id",
        "prev_txn_lsn",
        "page_id",
        "prev_page_lsn",
        "object_id",
    )

    def __init__(
        self,
        lsn: int,
        total: int,
        record_type: int,
        flags: int,
        txn_id: int,
        prev_txn_lsn: int,
        page_id: int,
        prev_page_lsn: int,
        object_id: int,
    ) -> None:
        self.lsn = lsn
        self.total = total
        self.record_type = record_type
        self.flags = flags
        self.txn_id = txn_id
        self.prev_txn_lsn = prev_txn_lsn
        self.page_id = page_id
        self.prev_page_lsn = prev_page_lsn
        self.object_id = object_id

    def __repr__(self) -> str:
        return (
            f"RecordHeader(lsn={format_lsn(self.lsn)}, "
            f"type={self.record_type}, page={self.page_id}, "
            f"prev_page={format_lsn(self.prev_page_lsn)})"
        )


def unpack_header(data, offset: int, lsn: int = NULL_LSN) -> RecordHeader:
    """Decode only the fixed-size header of the record at ``offset``."""
    if offset + HEADER_SIZE > len(data):
        raise LogRecordDecodeError(f"truncated header at offset {offset}")
    (
        total,
        rtype,
        flags,
        txn_id,
        prev_txn_lsn,
        page_id,
        prev_page_lsn,
        object_id,
        _crc,
    ) = _HEADER.unpack_from(data, offset)
    if total < HEADER_SIZE or offset + total > len(data):
        raise LogRecordDecodeError(
            f"truncated record at offset {offset} (claims {total} bytes)"
        )
    return RecordHeader(
        lsn=lsn,
        total=total,
        record_type=rtype,
        flags=flags,
        txn_id=txn_id,
        prev_txn_lsn=prev_txn_lsn,
        page_id=page_id,
        prev_page_lsn=prev_page_lsn,
        object_id=object_id,
    )


class RecordType(enum.IntEnum):
    """Wire discriminator for log records."""

    BEGIN = 1
    COMMIT = 2
    ABORT = 3
    CHECKPOINT_BEGIN = 4
    CHECKPOINT_END = 5
    FORMAT_PAGE = 6
    PREFORMAT_PAGE = 7
    PAGE_IMAGE = 8
    INSERT_ROW = 9
    DELETE_ROW = 10
    UPDATE_ROW = 11
    SET_LINKS = 12
    ALLOC_PAGE = 13
    DEALLOC_PAGE = 14
    DEFORMAT_PAGE = 15
    CLR = 16


class _Writer:
    """Little-endian body serializer."""

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf += v.to_bytes(1, "little")

    def u16(self, v: int) -> None:
        self.buf += v.to_bytes(2, "little")

    def u32(self, v: int) -> None:
        self.buf += v.to_bytes(4, "little")

    def u64(self, v: int) -> None:
        self.buf += v.to_bytes(8, "little")

    def f64(self, v: float) -> None:
        self.buf += struct.pack("<d", v)

    def blob(self, b: bytes) -> None:
        self.u32(len(b))
        self.buf += b

    def opt_blob(self, b: bytes | None) -> None:
        if b is None:
            self.u8(0)
        else:
            self.u8(1)
            self.blob(b)


class _Reader:
    """Little-endian body deserializer."""

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def u8(self) -> int:
        v = self.data[self.pos]
        self.pos += 1
        return v

    def u16(self) -> int:
        v = int.from_bytes(self.data[self.pos : self.pos + 2], "little")
        self.pos += 2
        return v

    def u32(self) -> int:
        v = int.from_bytes(self.data[self.pos : self.pos + 4], "little")
        self.pos += 4
        return v

    def u64(self) -> int:
        v = int.from_bytes(self.data[self.pos : self.pos + 8], "little")
        self.pos += 8
        return v

    def f64(self) -> float:
        (v,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return v

    def blob(self) -> bytes:
        n = self.u32()
        b = bytes(self.data[self.pos : self.pos + n])
        self.pos += n
        return b

    def opt_blob(self) -> bytes | None:
        if self.u8() == 0:
            return None
        return self.blob()


_REGISTRY: dict[int, type] = {}


class LogRecord:
    """Base class: common header fields plus redo/undo protocol."""

    TYPE: RecordType
    #: Participates in a page's modification chain (has a meaningful
    #: page_id / prev_page_lsn). Note page 0 (boot) is a real page, so this
    #: cannot be inferred from ``page_id != 0``.
    IS_PAGE_MOD = False
    #: Transaction rollback generates a CLR for this record.
    UNDOABLE_IN_ROLLBACK = False

    __slots__ = (
        "lsn",
        "flags",
        "txn_id",
        "prev_txn_lsn",
        "page_id",
        "prev_page_lsn",
        "object_id",
    )

    def __init__(
        self,
        txn_id: int = 0,
        prev_txn_lsn: int = NULL_LSN,
        page_id: int = 0,
        prev_page_lsn: int = NULL_LSN,
        object_id: int = 0,
        flags: int = 0,
    ) -> None:
        self.lsn = NULL_LSN
        self.txn_id = txn_id
        self.prev_txn_lsn = prev_txn_lsn
        self.page_id = page_id
        self.prev_page_lsn = prev_page_lsn
        self.object_id = object_id
        self.flags = flags

    def __init_subclass__(cls, **kw) -> None:
        super().__init_subclass__(**kw)
        if hasattr(cls, "TYPE"):
            _REGISTRY[int(cls.TYPE)] = cls

    @property
    def is_smo(self) -> bool:
        return bool(self.flags & FLAG_SMO)

    @property
    def is_heap(self) -> bool:
        return bool(self.flags & FLAG_HEAP)

    # -- serialization -------------------------------------------------

    def pack_body(self, w: _Writer) -> None:
        """Append the type-specific body (override in subclasses)."""

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        """Parse the type-specific body into constructor kwargs."""
        return {}

    def serialize(self) -> bytes:
        w = _Writer()
        self.pack_body(w)
        body = bytes(w.buf)
        total = HEADER_SIZE + len(body)
        header = _HEADER.pack(
            total,
            int(self.TYPE),
            self.flags,
            self.txn_id,
            self.prev_txn_lsn,
            self.page_id,
            self.prev_page_lsn,
            self.object_id,
            0,
        )
        crc = zlib.crc32(header) & 0xFFFFFFFF
        crc = zlib.crc32(body, crc) & 0xFFFFFFFF
        header = header[:-4] + crc.to_bytes(4, "little")
        return header + body

    # -- redo / physical undo -------------------------------------------

    def redo(self, page: Page, fetch=None) -> None:
        """Replay this modification on ``page``."""
        raise WalError(f"{type(self).__name__} is not redoable on a page")

    def physical_undo(self, page: Page, fetch=None) -> None:
        """Exactly invert this modification on ``page``.

        Called by page-oriented undo while walking a page's chain in
        strict reverse order, so slot references are valid by construction.
        """
        raise WalError(f"{type(self).__name__} is not physically undoable")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(lsn={format_lsn(self.lsn)}, "
            f"txn={self.txn_id}, page={self.page_id}, "
            f"prev_page={format_lsn(self.prev_page_lsn)})"
        )


def decode_record(data, offset: int, lsn: int = NULL_LSN) -> tuple[LogRecord, int]:
    """Decode one record at ``offset``; returns (record, end offset).

    Raises :class:`LogRecordDecodeError` on truncation or CRC mismatch —
    the signal recovery uses to find the end of a torn log tail.
    """
    if offset + HEADER_SIZE > len(data):
        raise LogRecordDecodeError(f"truncated header at offset {offset}")
    (
        total,
        rtype,
        flags,
        txn_id,
        prev_txn_lsn,
        page_id,
        prev_page_lsn,
        object_id,
        crc,
    ) = _HEADER.unpack_from(data, offset)
    if total < HEADER_SIZE or offset + total > len(data):
        raise LogRecordDecodeError(
            f"truncated record at offset {offset} (claims {total} bytes)"
        )
    raw = bytes(data[offset : offset + total])
    check = raw[: HEADER_SIZE - 4] + b"\0\0\0\0" + raw[HEADER_SIZE:]
    if zlib.crc32(check) & 0xFFFFFFFF != crc:
        raise LogRecordDecodeError(f"CRC mismatch at offset {offset}")
    cls = _REGISTRY.get(rtype)
    if cls is None:
        raise LogRecordDecodeError(f"unknown record type {rtype} at {offset}")
    kwargs = cls.unpack_body(_Reader(raw, HEADER_SIZE))
    rec = cls(
        txn_id=txn_id,
        prev_txn_lsn=prev_txn_lsn,
        page_id=page_id,
        prev_page_lsn=prev_page_lsn,
        object_id=object_id,
        flags=flags,
        **kwargs,
    )
    rec.lsn = lsn
    return rec, offset + total


# ---------------------------------------------------------------------------
# Transaction control records
# ---------------------------------------------------------------------------


class BeginRecord(LogRecord):
    """Transaction start."""

    TYPE = RecordType.BEGIN
    __slots__ = ()


class CommitRecord(LogRecord):
    """Transaction commit; carries the wall-clock time used by SplitLSN
    search (section 5.1)."""

    TYPE = RecordType.COMMIT
    __slots__ = ("wall_clock",)

    def __init__(self, wall_clock: float = 0.0, **kw) -> None:
        super().__init__(**kw)
        self.wall_clock = wall_clock

    def pack_body(self, w: _Writer) -> None:
        w.f64(self.wall_clock)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"wall_clock": r.f64()}


class AbortRecord(LogRecord):
    """Transaction fully rolled back (end of its log chain)."""

    TYPE = RecordType.ABORT
    __slots__ = ()


class CheckpointBeginRecord(LogRecord):
    """Checkpoint start: wall clock, back-pointer to the previous
    checkpoint (navigated by SplitLSN search), and the active-transaction
    table (consumed by as-of snapshot recovery's analysis pass)."""

    TYPE = RecordType.CHECKPOINT_BEGIN
    __slots__ = ("wall_clock", "prev_checkpoint_lsn", "active_txns")

    def __init__(
        self,
        wall_clock: float = 0.0,
        prev_checkpoint_lsn: int = NULL_LSN,
        active_txns: tuple = (),
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.wall_clock = wall_clock
        self.prev_checkpoint_lsn = prev_checkpoint_lsn
        #: tuple of (txn_id, last_lsn) pairs.
        self.active_txns = tuple(active_txns)

    def pack_body(self, w: _Writer) -> None:
        w.f64(self.wall_clock)
        w.u64(self.prev_checkpoint_lsn)
        w.u32(len(self.active_txns))
        for txn_id, last_lsn in self.active_txns:
            w.u64(txn_id)
            w.u64(last_lsn)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        wall = r.f64()
        prev = r.u64()
        count = r.u32()
        active = tuple((r.u64(), r.u64()) for _ in range(count))
        return {
            "wall_clock": wall,
            "prev_checkpoint_lsn": prev,
            "active_txns": active,
        }


class CheckpointEndRecord(LogRecord):
    """Checkpoint completion marker."""

    TYPE = RecordType.CHECKPOINT_END
    __slots__ = ("begin_lsn",)

    def __init__(self, begin_lsn: int = NULL_LSN, **kw) -> None:
        super().__init__(**kw)
        self.begin_lsn = begin_lsn

    def pack_body(self, w: _Writer) -> None:
        w.u64(self.begin_lsn)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"begin_lsn": r.u64()}


# ---------------------------------------------------------------------------
# Page lifecycle records
# ---------------------------------------------------------------------------


class FormatPageRecord(LogRecord):
    """Page formatted for an object (first write of an allocation).

    Starts a page's modification chain. On re-allocation the chain is
    preceded by a :class:`PreformatPageRecord` (``prev_page_lsn`` points at
    it) so page-oriented undo can cross into the prior incarnation — the
    fix for the broken chain of paper Figure 1.
    """

    TYPE = RecordType.FORMAT_PAGE
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("page_type", "index_id", "level", "prev_page", "next_page")

    def __init__(
        self,
        page_type: int = PageType.UNFORMATTED,
        index_id: int = 0,
        level: int = 0,
        prev_page: int = NULL_PAGE,
        next_page: int = NULL_PAGE,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.page_type = int(page_type)
        self.index_id = index_id
        self.level = level
        self.prev_page = prev_page
        self.next_page = next_page

    def pack_body(self, w: _Writer) -> None:
        w.u8(self.page_type)
        w.u16(self.index_id)
        w.u8(self.level)
        w.u32(self.prev_page)
        w.u32(self.next_page)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {
            "page_type": r.u8(),
            "index_id": r.u16(),
            "level": r.u8(),
            "prev_page": r.u32(),
            "next_page": r.u32(),
        }

    def redo(self, page: Page, fetch=None) -> None:
        page.format(
            self.page_id,
            PageType(self.page_type),
            object_id=self.object_id,
            index_id=self.index_id,
            level=self.level,
            prev_page=self.prev_page,
            next_page=self.next_page,
        )

    def physical_undo(self, page: Page, fetch=None) -> None:
        # Before a first-time format the page held nothing; before a
        # re-allocation format the preceding preformat record (next on the
        # chain walk) restores the prior image over these zeroes.
        page.deformat()


class PreformatPageRecord(LogRecord):
    """The paper's section 4.2 extension: logged when a page is
    *re-allocated*, storing the prior incarnation's full content.

    ``prev_page_lsn`` points at the prior content's pageLSN, splicing the
    old chain onto the new one (paper Figure 2). Redo is a no-op (the page
    is about to be formatted); physical undo restores the stored image,
    which is how as-of queries read dropped-and-overwritten tables.
    """

    TYPE = RecordType.PREFORMAT_PAGE
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = False
    __slots__ = ("image",)

    def __init__(self, image: bytes = b"", **kw) -> None:
        super().__init__(**kw)
        self.image = image

    def pack_body(self, w: _Writer) -> None:
        w.blob(self.image)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"image": r.blob()}

    def redo(self, page: Page, fetch=None) -> None:
        """No page change: the record only preserves history."""

    def physical_undo(self, page: Page, fetch=None) -> None:
        page.restore(self.image)


class PageImageRecord(LogRecord):
    """Optional full page image after every Nth modification (section 6.1).

    Image records form their own back-chain via ``prev_image_lsn`` (the
    page header stores ``last_image_lsn``), letting undo jump to the first
    image after the target LSN instead of undoing every modification.
    """

    TYPE = RecordType.PAGE_IMAGE
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = False
    __slots__ = ("image", "prev_image_lsn")

    def __init__(self, image: bytes = b"", prev_image_lsn: int = NULL_LSN, **kw) -> None:
        super().__init__(**kw)
        self.image = image
        self.prev_image_lsn = prev_image_lsn

    def pack_body(self, w: _Writer) -> None:
        w.u64(self.prev_image_lsn)
        w.blob(self.image)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"prev_image_lsn": r.u64(), "image": r.blob()}

    def redo(self, page: Page, fetch=None) -> None:
        page.restore(self.image)

    def physical_undo(self, page: Page, fetch=None) -> None:
        """No-op: the image did not change the page, it recorded it."""


class DeformatPageRecord(LogRecord):
    """Compensation body for undoing a format (page returns to zeroes).

    Appears only nested inside CLRs; stores the original format parameters
    so the CLR itself stays physically undoable without derivation.
    """

    TYPE = RecordType.DEFORMAT_PAGE
    IS_PAGE_MOD = True
    __slots__ = ("page_type", "index_id", "level")

    def __init__(self, page_type: int = 0, index_id: int = 0, level: int = 0, **kw) -> None:
        super().__init__(**kw)
        self.page_type = page_type
        self.index_id = index_id
        self.level = level

    def pack_body(self, w: _Writer) -> None:
        w.u8(self.page_type)
        w.u16(self.index_id)
        w.u8(self.level)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"page_type": r.u8(), "index_id": r.u16(), "level": r.u8()}

    def redo(self, page: Page, fetch=None) -> None:
        page.deformat()

    def physical_undo(self, page: Page, fetch=None) -> None:
        page.format(
            self.page_id,
            PageType(self.page_type),
            object_id=self.object_id,
            index_id=self.index_id,
            level=self.level,
        )


# ---------------------------------------------------------------------------
# Row modification records
# ---------------------------------------------------------------------------


class InsertRowRecord(LogRecord):
    """Row (or index entry) inserted at a slot.

    Self-contained for undo: the inserted payload is the redo image, and
    its inverse is a plain slot delete.
    """

    TYPE = RecordType.INSERT_ROW
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("slot", "row", "key_bytes")

    def __init__(self, slot: int = 0, row: bytes = b"", key_bytes: bytes = b"", **kw) -> None:
        super().__init__(**kw)
        self.slot = slot
        self.row = row
        self.key_bytes = key_bytes

    def pack_body(self, w: _Writer) -> None:
        w.u16(self.slot)
        w.blob(self.row)
        w.blob(self.key_bytes)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"slot": r.u16(), "row": r.blob(), "key_bytes": r.blob()}

    def redo(self, page: Page, fetch=None) -> None:
        page.insert_record(self.slot, self.row)

    def physical_undo(self, page: Page, fetch=None) -> None:
        page.delete_record(self.slot)


class DeleteRowRecord(LogRecord):
    """Row (or index entry) deleted from a slot.

    Ordinary deletes always carry the row image (classic ARIES needs it
    for rollback). Structure-modification deletes (the delete half of a
    B-tree row move) are redo-only in the baseline; with the section 4.2
    extension (``smo_delete_undo_info``) they carry the row too, otherwise
    undo derives it from the paired insert via ``pair_lsn`` at the cost of
    an extra log read.
    """

    TYPE = RecordType.DELETE_ROW
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("slot", "row", "key_bytes", "pair_lsn")

    def __init__(
        self,
        slot: int = 0,
        row: bytes | None = None,
        key_bytes: bytes = b"",
        pair_lsn: int = NULL_LSN,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.slot = slot
        self.row = row
        self.key_bytes = key_bytes
        self.pair_lsn = pair_lsn

    def pack_body(self, w: _Writer) -> None:
        w.u16(self.slot)
        w.opt_blob(self.row)
        w.blob(self.key_bytes)
        w.u64(self.pair_lsn)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {
            "slot": r.u16(),
            "row": r.opt_blob(),
            "key_bytes": r.blob(),
            "pair_lsn": r.u64(),
        }

    def redo(self, page: Page, fetch=None) -> None:
        page.delete_record(self.slot)

    def resolve_row(self, fetch=None) -> bytes:
        """The deleted payload: embedded, or derived from the paired insert."""
        if self.row is not None:
            return self.row
        if self.pair_lsn != NULL_LSN and fetch is not None:
            paired = fetch(self.pair_lsn)
            if isinstance(paired, InsertRowRecord):
                return paired.row
        raise MissingUndoInfoError(
            f"delete at lsn {format_lsn(self.lsn)} carries no row image "
            f"and it cannot be derived (pair_lsn={format_lsn(self.pair_lsn)})"
        )

    def physical_undo(self, page: Page, fetch=None) -> None:
        page.insert_record(self.slot, self.resolve_row(fetch))


class UpdateRowRecord(LogRecord):
    """Row payload replaced in place (same slot, new bytes)."""

    TYPE = RecordType.UPDATE_ROW
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("slot", "old", "new", "key_bytes")

    def __init__(
        self,
        slot: int = 0,
        old: bytes | None = None,
        new: bytes = b"",
        key_bytes: bytes = b"",
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.slot = slot
        self.old = old
        self.new = new
        self.key_bytes = key_bytes

    def pack_body(self, w: _Writer) -> None:
        w.u16(self.slot)
        w.opt_blob(self.old)
        w.blob(self.new)
        w.blob(self.key_bytes)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {
            "slot": r.u16(),
            "old": r.opt_blob(),
            "new": r.blob(),
            "key_bytes": r.blob(),
        }

    def redo(self, page: Page, fetch=None) -> None:
        page.update_record(self.slot, self.new)

    def physical_undo(self, page: Page, fetch=None) -> None:
        if self.old is None:
            raise MissingUndoInfoError(
                f"update at lsn {format_lsn(self.lsn)} carries no before-image"
            )
        page.update_record(self.slot, self.old)


class SetLinksRecord(LogRecord):
    """Sibling-chain pointer update (B-tree leaf chain during splits)."""

    TYPE = RecordType.SET_LINKS
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("old_prev", "old_next", "new_prev", "new_next")

    def __init__(
        self,
        old_prev: int = NULL_PAGE,
        old_next: int = NULL_PAGE,
        new_prev: int = NULL_PAGE,
        new_next: int = NULL_PAGE,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.old_prev = old_prev
        self.old_next = old_next
        self.new_prev = new_prev
        self.new_next = new_next

    def pack_body(self, w: _Writer) -> None:
        w.u32(self.old_prev)
        w.u32(self.old_next)
        w.u32(self.new_prev)
        w.u32(self.new_next)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {
            "old_prev": r.u32(),
            "old_next": r.u32(),
            "new_prev": r.u32(),
            "new_next": r.u32(),
        }

    def redo(self, page: Page, fetch=None) -> None:
        page.prev_page = self.new_prev
        page.next_page = self.new_next

    def physical_undo(self, page: Page, fetch=None) -> None:
        page.prev_page = self.old_prev
        page.next_page = self.old_next


# ---------------------------------------------------------------------------
# Allocation map records
# ---------------------------------------------------------------------------


def _alloc_bit_indexes(page: Page, map_page_id: int, target_page: int) -> tuple[int, int]:
    """Bit positions (allocated, ever-allocated) of ``target_page`` within
    its allocation-map page body."""
    local = target_page - (map_page_id + 1)
    if local < 0 or local >= alloc_bitmap_geometry(page.page_size):
        raise WalError(
            f"page {target_page} not covered by allocation map {map_page_id}"
        )
    return local, ever_bit_offset(page.page_size) + local


class AllocPageRecord(LogRecord):
    """Allocation-map bit set: ``target_page`` becomes allocated.

    ``was_ever_allocated`` is the section 4.2 metadata distinguishing the
    first allocation (no preformat needed — the page never held data) from
    a re-allocation (preformat must preserve the prior content).
    """

    TYPE = RecordType.ALLOC_PAGE
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("target_page", "was_ever_allocated")

    def __init__(self, target_page: int = 0, was_ever_allocated: bool = False, **kw) -> None:
        super().__init__(**kw)
        self.target_page = target_page
        self.was_ever_allocated = was_ever_allocated

    def pack_body(self, w: _Writer) -> None:
        w.u32(self.target_page)
        w.u8(1 if self.was_ever_allocated else 0)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"target_page": r.u32(), "was_ever_allocated": bool(r.u8())}

    def redo(self, page: Page, fetch=None) -> None:
        alloc_bit, ever_bit = _alloc_bit_indexes(page, self.page_id, self.target_page)
        page.set_body_bit(alloc_bit, True)
        page.set_body_bit(ever_bit, True)

    def physical_undo(self, page: Page, fetch=None) -> None:
        alloc_bit, ever_bit = _alloc_bit_indexes(page, self.page_id, self.target_page)
        page.set_body_bit(alloc_bit, False)
        page.set_body_bit(ever_bit, self.was_ever_allocated)


class DeallocPageRecord(LogRecord):
    """Allocation-map bit clear: ``target_page`` becomes free.

    The ever-allocated bit normally stays set — that is what tells a
    future re-allocation to log a preformat record first. ``clear_ever``
    is used only by compensations that undo a *first-time* allocation,
    restoring the page to never-allocated.
    """

    TYPE = RecordType.DEALLOC_PAGE
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = True
    __slots__ = ("target_page", "clear_ever")

    def __init__(self, target_page: int = 0, clear_ever: bool = False, **kw) -> None:
        super().__init__(**kw)
        self.target_page = target_page
        self.clear_ever = clear_ever

    def pack_body(self, w: _Writer) -> None:
        w.u32(self.target_page)
        w.u8(1 if self.clear_ever else 0)

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {"target_page": r.u32(), "clear_ever": bool(r.u8())}

    def redo(self, page: Page, fetch=None) -> None:
        alloc_bit, ever_bit = _alloc_bit_indexes(page, self.page_id, self.target_page)
        page.set_body_bit(alloc_bit, False)
        if self.clear_ever:
            page.set_body_bit(ever_bit, False)

    def physical_undo(self, page: Page, fetch=None) -> None:
        alloc_bit, ever_bit = _alloc_bit_indexes(page, self.page_id, self.target_page)
        page.set_body_bit(alloc_bit, True)
        page.set_body_bit(ever_bit, True)


# ---------------------------------------------------------------------------
# Compensation log records
# ---------------------------------------------------------------------------


class ClrRecord(LogRecord):
    """Compensation log record written while undoing ``compensated_lsn``.

    ``comp`` is the nested operation the compensation performs (its redo).
    Classic ARIES CLRs are redo-only; the paper's section 4.2 extension
    makes them undoable so page-oriented undo can walk *through* a
    rollback. Here that works in two ways:

    * with ``clr_undo_info`` the nested ``comp`` record embeds the data
      needed to invert it (e.g. the row a compensating delete removed);
    * without it, :meth:`physical_undo` derives that data by fetching the
      compensated record — the derivation the paper deems possible but
      rejects for simplicity; it costs an extra (potentially stalling)
      log read, which the ablation benchmark measures.
    """

    TYPE = RecordType.CLR
    IS_PAGE_MOD = True
    UNDOABLE_IN_ROLLBACK = False  # CLRs are never compensated themselves
    __slots__ = ("compensated_lsn", "undo_next_lsn", "comp")

    def __init__(
        self,
        compensated_lsn: int = NULL_LSN,
        undo_next_lsn: int = NULL_LSN,
        comp: LogRecord | None = None,
        comp_bytes: bytes | None = None,
        **kw,
    ) -> None:
        super().__init__(**kw)
        self.compensated_lsn = compensated_lsn
        self.undo_next_lsn = undo_next_lsn
        if comp is None and comp_bytes is not None:
            comp, _ = decode_record(comp_bytes, 0)
        if comp is None:
            raise WalError("CLR requires a compensation operation")
        self.comp = comp

    def pack_body(self, w: _Writer) -> None:
        w.u64(self.compensated_lsn)
        w.u64(self.undo_next_lsn)
        w.blob(self.comp.serialize())

    @classmethod
    def unpack_body(cls, r: _Reader) -> dict:
        return {
            "compensated_lsn": r.u64(),
            "undo_next_lsn": r.u64(),
            "comp_bytes": r.blob(),
        }

    def redo(self, page: Page, fetch=None) -> None:
        self.comp.redo(page, fetch)

    def _fetch_compensated(self, fetch):
        if fetch is None:
            raise MissingUndoInfoError(
                f"CLR at {format_lsn(self.lsn)} has no undo info and no log "
                f"access to derive it"
            )
        return fetch(self.compensated_lsn)

    def physical_undo(self, page: Page, fetch=None) -> None:
        comp = self.comp
        if isinstance(comp, DeleteRowRecord):
            # Invert a compensating delete (which undid an insert): put the
            # row back. Derive it from the compensated insert if absent.
            if comp.row is not None:
                row = comp.row
            else:
                original = self._fetch_compensated(fetch)
                if not isinstance(original, InsertRowRecord):
                    raise MissingUndoInfoError(
                        f"CLR at {format_lsn(self.lsn)}: compensated record "
                        f"is {type(original).__name__}, cannot derive row"
                    )
                row = original.row
            page.insert_record(comp.slot, row)
        elif isinstance(comp, InsertRowRecord):
            # Invert a compensating insert (which undid a delete).
            page.delete_record(comp.slot)
        elif isinstance(comp, UpdateRowRecord):
            # Invert a compensating update: restore the value the page held
            # before the compensation, i.e. the original update's after-image.
            if comp.old is not None:
                value = comp.old
            else:
                original = self._fetch_compensated(fetch)
                if isinstance(original, UpdateRowRecord):
                    value = original.new
                elif isinstance(original, InsertRowRecord):
                    # Heap-insert rollback tombstones the slot with an
                    # update; the pre-tombstone value is the inserted row.
                    value = original.row
                else:
                    raise MissingUndoInfoError(
                        f"CLR at {format_lsn(self.lsn)}: compensated record "
                        f"is {type(original).__name__}, cannot derive value"
                    )
            page.update_record(comp.slot, value)
        elif isinstance(comp, PageImageRecord):
            # Compensation restored a pre-format image (root-split
            # rollback). Its inverse is the formatted-empty state the
            # compensated format record produces.
            original = self._fetch_compensated(fetch)
            original.redo(page)
        else:
            # Allocation, links, format compensations are self-inverting.
            comp.physical_undo(page, fetch)

    def __repr__(self) -> str:
        return (
            f"ClrRecord(lsn={format_lsn(self.lsn)}, txn={self.txn_id}, "
            f"page={self.page_id}, compensates={format_lsn(self.compensated_lsn)}, "
            f"comp={type(self.comp).__name__})"
        )
