"""Logged page modification: the write path every component goes through.

``PageModifier.apply`` is the single choke point that (a) stamps the
record's ``prev_page_lsn`` from the page being modified — building the
per-page chain — (b) appends it to the log, (c) replays it onto the page,
and (d) advances the page's ``pageLSN``. It also emits the optional full
page image every Nth modification (section 6.1) and the preformat record
on page re-allocation (section 4.2), so callers (B-tree, heap, allocation
map, catalog) never special-case the extensions.

``UnloggedModifier`` is the same interface with no logging: as-of
snapshots use it when the background logical-undo pass or a rare
re-balance must modify *snapshot* pages, which are ephemeral side-file
cache entries, not durable state (section 5.2).

``RedoApplier`` is the read side of the same discipline: one redo path
shared by ARIES crash recovery and log-shipping replication. It repeats
history onto pages gated by ``pageLSN``, batching records per page so each
page in a batch is fetched once, and optionally modeling multicore redo
(*Fast Failure Recovery for Main-Memory DBMSs on Multicores*-style
partition-by-page parallelism) by charging the batch's CPU as its critical
path across ``parallel_slots`` workers instead of the serial sum.
"""

from __future__ import annotations

from repro.config import LoggingExtensions, SimEnv
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN
from repro.wal.records import (
    FormatPageRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
)

#: Cap for the per-page modification counter (u16 header field).
_MODS_CAP = 0xFFFF


class PageModifier:
    """Applies log records to buffered pages with full WAL discipline."""

    def __init__(
        self,
        log: LogManager,
        extensions: LoggingExtensions,
        env: SimEnv,
    ) -> None:
        self.log = log
        self.extensions = extensions.effective()
        self.env = env
        #: Copy-on-write hooks ``hook(page)`` invoked before the first
        #: modification of a page, used by *regular* database snapshots to
        #: push pre-images to their sparse files (paper section 2.2).
        #: As-of snapshots register no hook — they undo on demand instead.
        self.cow_hooks: list = []

    @property
    def logged(self) -> bool:
        return True

    def _run_cow_hooks(self, page: Page) -> None:
        for hook in self.cow_hooks:
            hook(page)

    def apply(self, txn, frame, record: LogRecord, *, chain_prev: int | None = None) -> int:
        """Log ``record`` and apply it to ``frame``'s page.

        ``chain_prev`` overrides the page-chain back-pointer; format records
        use it to splice in the preformat record of a re-allocation.
        Returns the record's LSN.
        """
        page = frame.page
        if self.cow_hooks:
            self._run_cow_hooks(page)
        record.prev_page_lsn = page.page_lsn if chain_prev is None else chain_prev
        if txn is not None:
            record.txn_id = txn.txn_id
            record.prev_txn_lsn = txn.last_lsn
        lsn = self.log.append(record)
        record.redo(page, fetch=self.log.undo_fetch)
        page.page_lsn = lsn
        if txn is not None:
            txn.last_lsn = lsn
        frame.mark_dirty()
        self._after_modification(frame)
        return lsn

    def _after_modification(self, frame) -> None:
        """Advance the page's modification counter; emit a page image when
        the counter reaches the configured interval."""
        page = frame.page
        count = page.mods_since_image
        if count < _MODS_CAP:
            page.mods_since_image = count + 1
        interval = self.extensions.page_image_interval
        if interval <= 0 or page.mods_since_image < interval:
            return
        page.mods_since_image = 0
        image_rec = PageImageRecord(
            image=page.clone_bytes(),
            prev_image_lsn=page.last_image_lsn,
            page_id=page.page_id,
            prev_page_lsn=page.page_lsn,
            object_id=page.object_id,
        )
        lsn = self.log.append(image_rec)
        page.page_lsn = lsn
        page.last_image_lsn = lsn
        frame.mark_dirty()

    def format_page(
        self,
        txn,
        frame,
        page_type: PageType,
        *,
        object_id: int = 0,
        index_id: int = 0,
        level: int = 0,
        prev_page: int = 0,
        next_page: int = 0,
        was_ever_allocated: bool = False,
        force_preformat: bool = False,
    ) -> int:
        """Format a page for a new use, preserving history on re-allocation.

        For a re-allocated page (``was_ever_allocated``) with the preformat
        extension enabled, the page's prior content — already present in
        ``frame`` because the caller fetched it — is logged in a preformat
        record whose ``prev_page_lsn`` points into the prior incarnation's
        chain; the format record then chains to the preformat. Without the
        extension the chain simply breaks (paper Figure 1), and as-of
        queries older than the re-allocation fail.

        ``force_preformat`` bypasses the extension switch: in-place
        reformats of live pages (B-tree root splits) need the pre-image for
        crash-safe rollback regardless of as-of support.
        """
        page = frame.page
        if self.cow_hooks:
            self._run_cow_hooks(page)
        chain_prev = NULL_LSN
        if was_ever_allocated and (
            self.extensions.preformat_on_realloc or force_preformat
        ):
            old_image = page.clone_bytes()
            old_lsn = page.page_lsn if page.is_formatted() else NULL_LSN
            pre = PreformatPageRecord(
                image=old_image,
                page_id=frame.page_id,
                prev_page_lsn=old_lsn,
                object_id=page.object_id if page.is_formatted() else 0,
            )
            chain_prev = self.log.append(pre)
        fmt = FormatPageRecord(
            page_type=int(page_type),
            index_id=index_id,
            level=level,
            prev_page=prev_page,
            next_page=next_page,
            # The frame, not the page: a first-time format sees zeroed
            # bytes whose header page_id field is meaningless.
            page_id=frame.page_id,
            object_id=object_id,
        )
        return self.apply(txn, frame, fmt, chain_prev=chain_prev)


class RedoApplier:
    """Repeat history from log records onto pages (recovery + replication).

    The target supplies the undo-context subset redo needs: ``env``,
    ``log`` and ``fetch_page``. Records that are not page modifications
    are ignored; page modifications are applied in per-page order, gated
    by each page's ``pageLSN`` so re-applying an already-applied record is
    a no-op (restart safety on both the recovery and the replica path).
    """

    def __init__(self, target, *, parallel_slots: int = 1, batch_records: int = 256) -> None:
        if parallel_slots < 1:
            raise ValueError("parallel_slots must be >= 1")
        if batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        self.target = target
        self.parallel_slots = parallel_slots
        self.batch_records = batch_records

    def apply(self, records, gate=None) -> int:
        """Apply ``records`` (an iterable in LSN order); returns how many
        were actually redone.

        ``gate`` is an optional per-record predicate (recovery passes the
        dirty-page-table filter). Records are buffered into batches of
        ``batch_records`` page modifications; each batch is partitioned by
        page so a page is fetched once per batch and, with
        ``parallel_slots > 1``, the CPU charge models partitions redone in
        parallel.
        """
        applied = 0
        batch: list[LogRecord] = []
        for rec in records:
            if not rec.IS_PAGE_MOD:
                continue
            if gate is not None and not gate(rec):
                continue
            batch.append(rec)
            if len(batch) >= self.batch_records:
                applied += self._apply_batch(batch)
                batch = []
        if batch:
            applied += self._apply_batch(batch)
        return applied

    def _apply_batch(self, batch: list[LogRecord]) -> int:
        target = self.target
        env = target.env
        by_page: dict[int, list[LogRecord]] = {}
        for rec in batch:
            by_page.setdefault(rec.page_id, []).append(rec)
        applied = 0
        partition_counts: list[int] = []
        for page_id, recs in by_page.items():
            count = 0
            with target.fetch_page(page_id) as guard:
                page = guard.page
                for rec in recs:
                    if page.is_formatted() and page.page_lsn >= rec.lsn:
                        continue
                    rec.redo(page, fetch=target.log.undo_fetch)
                    page.page_lsn = rec.lsn
                    if isinstance(rec, PageImageRecord):
                        page.last_image_lsn = rec.lsn
                    guard.mark_dirty()
                    count += 1
            applied += count
            if count:
                partition_counts.append(count)
        if applied:
            per_record = env.cost.redo_record_cpu_s
            if self.parallel_slots == 1:
                env.charge_cpu(applied * per_record)
            else:
                # Makespan of partition-parallel redo: bounded below by the
                # largest single-page chain and by perfect division.
                critical = max(
                    applied / self.parallel_slots, max(partition_counts)
                )
                env.charge_cpu(critical * per_record)
        return applied


class UnloggedModifier:
    """Apply records to pages without logging (snapshot-side mutations).

    Keeps the page-chain fields untouched: snapshot pages are throwaway
    side-file state whose "history" is the primary's log, never their own.
    """

    def __init__(self, env: SimEnv) -> None:
        self.env = env
        self.extensions = LoggingExtensions()

    @property
    def logged(self) -> bool:
        return False

    def apply(self, txn, frame, record: LogRecord, *, chain_prev: int | None = None) -> int:
        record.redo(frame.page)
        frame.mark_dirty()
        return NULL_LSN

    def format_page(
        self,
        txn,
        frame,
        page_type: PageType,
        *,
        object_id: int = 0,
        index_id: int = 0,
        level: int = 0,
        prev_page: int = 0,
        next_page: int = 0,
        was_ever_allocated: bool = False,
        force_preformat: bool = False,
    ) -> int:
        frame.page.format(
            frame.page_id,
            page_type,
            object_id=object_id,
            index_id=index_id,
            level=level,
            prev_page=prev_page,
            next_page=next_page,
        )
        frame.mark_dirty()
        return NULL_LSN
