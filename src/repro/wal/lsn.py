"""Log sequence numbers.

An LSN is the byte offset of a record's start within the log stream —
monotonically increasing, totally ordering all records, and directly
seekable for the random reads page-oriented undo performs. LSN 0 is the
null LSN; the stream begins with an 8-byte file header, so the first real
record sits at LSN 8.
"""

from __future__ import annotations

#: "No LSN": chain terminators, unset page LSNs.
NULL_LSN = 0

#: LSN of the first record in a fresh log (past the stream header).
FIRST_LSN = 8


def format_lsn(lsn: int) -> str:
    """Human-readable LSN rendering used in error messages and tooling."""
    if lsn == NULL_LSN:
        return "NULL"
    return f"{lsn:#x}"
