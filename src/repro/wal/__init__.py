"""Write-ahead log: record types, the log manager, and page modification.

The transaction log is the substrate of the paper's whole mechanism: every
page modification is a log record carrying ``prev_page_lsn``, so each
page's history is an independently walkable back-chain. This package also
implements the section 4.2 log extensions — preformat records at
re-allocation, undo information in CLRs and in structure-modification
deletes, and periodic full page images (section 6.1).
"""

from repro.wal.apply import PageModifier
from repro.wal.log_manager import LogManager
from repro.wal.lsn import FIRST_LSN, NULL_LSN, format_lsn
from repro.wal.records import (
    LOG_HEADER_MAGIC,
    AbortRecord,
    AllocPageRecord,
    BeginRecord,
    CheckpointBeginRecord,
    CheckpointEndRecord,
    ClrRecord,
    CommitRecord,
    DeallocPageRecord,
    DeleteRowRecord,
    FormatPageRecord,
    InsertRowRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
    RecordHeader,
    RecordType,
    SetLinksRecord,
    UpdateRowRecord,
    decode_record,
    unpack_header,
)

__all__ = [
    "NULL_LSN",
    "FIRST_LSN",
    "format_lsn",
    "RecordType",
    "LogRecord",
    "BeginRecord",
    "CommitRecord",
    "AbortRecord",
    "CheckpointBeginRecord",
    "CheckpointEndRecord",
    "FormatPageRecord",
    "PreformatPageRecord",
    "PageImageRecord",
    "InsertRowRecord",
    "DeleteRowRecord",
    "UpdateRowRecord",
    "SetLinksRecord",
    "AllocPageRecord",
    "DeallocPageRecord",
    "ClrRecord",
    "RecordHeader",
    "decode_record",
    "unpack_header",
    "LogManager",
    "PageModifier",
    "LOG_HEADER_MAGIC",
]
