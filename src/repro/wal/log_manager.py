"""The log manager: append, group flush, random reads, scans, truncation.

The LSN of a record is its byte offset in the log stream, so random access
(the workhorse of page-oriented undo) is a direct seek. Reads are served
through an LRU block cache that models the paper's "log cache": a chain
walk whose records fall outside the cached blocks stalls on a random read
of the log media — the reason "storing transaction log on low latency
media is important for as-of query performance" (section 6.2).

Durability model: appended records sit in a volatile tail until
:meth:`flush` moves the durable boundary (charging a sequential write).
:meth:`crash` discards the volatile tail, which is how the crash-recovery
tests produce torn histories.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import SimEnv
from repro.errors import LogRecordDecodeError, LogTruncatedError, WalError
from repro.latch import Latch
from repro.obs.registry import DEFAULT_BYTES_BUCKETS
from repro.wal.lsn import FIRST_LSN, NULL_LSN, format_lsn
from repro.wal.records import (
    HEADER_SIZE,
    LOG_HEADER_MAGIC,
    ClrRecord,
    CommitRecord,
    LogRecord,
    PageImageRecord,
    PreformatPageRecord,
    RecordHeader,
    RecordType,
    decode_record,
    unpack_header,
)

#: Wire discriminators for ingest's header-only frame scan.
_COMMIT_TYPE = int(RecordType.COMMIT)
_CHECKPOINT_BEGIN_TYPE = int(RecordType.CHECKPOINT_BEGIN)

#: Bytes charged for a header-only random read: one device sector pulls
#: the 42-byte header without streaming the surrounding cache block.
HEADER_READ_BYTES = 512


class LogManager:
    """One database's write-ahead log."""

    def __init__(
        self,
        env: SimEnv,
        block_size: int = 65536,
        cache_blocks: int = 32,
        coalesce_gap_blocks: int = 4,
    ) -> None:
        self.env = env
        self.block_size = block_size
        self.cache_blocks = cache_blocks
        #: :meth:`read_many` merges two needed blocks into one sequential
        #: span when at most this many unneeded blocks separate them —
        #: reading through a short gap beats paying another random seek.
        self.coalesce_gap_blocks = coalesce_gap_blocks
        self.latch = Latch("log_manager")
        self._data = bytearray(LOG_HEADER_MAGIC)
        self._base = 0  # LSN of _data[0]
        self._durable_end = FIRST_LSN
        self._truncated_before = FIRST_LSN
        self._last_commit_lsn = NULL_LSN
        self._cache: OrderedDict[int, None] = OrderedDict()
        # Handle cached at init: append() is the engine's hottest path.
        self._append_hist = env.metrics.histogram(
            "log.append_bytes",
            "serialized log record sizes",
            bounds=DEFAULT_BYTES_BUCKETS,
        )

    # ------------------------------------------------------------------
    # Positions
    # ------------------------------------------------------------------

    @property
    def end_lsn(self) -> int:
        """LSN one past the last appended record (next record's LSN)."""
        with self.latch:
            return self._base + len(self._data)

    @property
    def durable_lsn(self) -> int:
        """Records starting below this LSN are durable."""
        return self._durable_end

    @property
    def start_lsn(self) -> int:
        """Oldest retained LSN; reads below raise LogTruncatedError."""
        return self._truncated_before

    def total_bytes(self) -> int:
        """Bytes of retained log (Figure 5's space metric)."""
        return len(self._data)

    @property
    def last_commit_lsn(self) -> int:
        """LSN of the last appended commit record, ``NULL_LSN`` when
        unknown (no commit yet, or the tracker was reset by a crash)."""
        return self._last_commit_lsn

    # ------------------------------------------------------------------
    # Append / flush
    # ------------------------------------------------------------------

    def append(self, record: LogRecord) -> int:
        """Serialize ``record``, assign its LSN, and buffer it.

        Charges the per-record CPU cost (the log-manager synchronization
        the paper identifies as the throughput-sensitive term).
        """
        with self.latch:
            record.lsn = self.end_lsn
            blob = record.serialize()
            self._data += blob
            self._append_hist.observe(len(blob))
            if isinstance(record, CommitRecord):
                self._last_commit_lsn = record.lsn
            stats = self.env.stats
            stats.log_records += 1
            if isinstance(record, PreformatPageRecord):
                stats.preformat_records += 1
                stats.preformat_bytes += len(blob)
            elif isinstance(record, PageImageRecord):
                stats.page_image_records += 1
                stats.page_image_bytes += len(blob)
            elif isinstance(record, ClrRecord):
                comp = record.comp
                undo_payload = getattr(comp, "row", None)
                if undo_payload is None:
                    undo_payload = getattr(comp, "old", None)
                if undo_payload is not None:
                    stats.clr_undo_bytes += len(undo_payload)
            self.env.charge_cpu(self.env.cost.log_record_cpu_s)
            return record.lsn

    def flush(self, up_to_lsn: int | None = None) -> None:
        """Make the log durable.

        Group-commit style: a flush always pushes the whole volatile tail
        (``up_to_lsn`` only lets callers skip the flush when already
        durable). Charges one sequential write for the flushed bytes.
        """
        with self.latch:
            end = self.end_lsn
            if up_to_lsn is not None and up_to_lsn < self._durable_end:
                return
            if self._durable_end >= end:
                return
            nbytes = end - self._durable_end
            # Group commit: the caller waits for the submission, the
            # transfer drains asynchronously (accrues as log-device
            # utilization).
            self.env.log_device.write_seq_async(nbytes)
            self.env.stats.log_flushes += 1
            self.env.stats.log_write_bytes += nbytes
            self._durable_end = end

    def append_and_flush(self, record: LogRecord) -> int:
        with self.latch:
            lsn = self.append(record)
            self.flush()
            return lsn

    # ------------------------------------------------------------------
    # Random reads (page-oriented undo's access path)
    # ------------------------------------------------------------------

    def _check_readable(self, lsn: int) -> None:
        if lsn < self._truncated_before:
            raise LogTruncatedError(
                f"LSN {format_lsn(lsn)} is below the retention horizon "
                f"{format_lsn(self._truncated_before)}"
            )
        if lsn < self._base or lsn >= self.end_lsn:
            raise WalError(
                f"LSN {format_lsn(lsn)} out of log range "
                f"[{format_lsn(self._base)}, {format_lsn(self.end_lsn)})"
            )

    def _touch_block(self, lsn: int, *, sequential: bool, undo: bool) -> None:
        """Account (and charge) the block access containing ``lsn``."""
        with self.latch:
            self._touch_block_locked(lsn, sequential=sequential, undo=undo)

    def _touch_block_locked(self, lsn: int, *, sequential: bool, undo: bool) -> None:
        if lsn >= self._durable_end:
            return  # volatile tail: still in memory, free
        block = lsn // self.block_size
        stats = self.env.stats
        if block in self._cache:
            self._cache.move_to_end(block)
            if undo:
                stats.undo_log_cache_hits += 1
            return
        if sequential:
            self.env.log_device.read_seq(self.block_size)
            stats.log_scan_reads += 1
            stats.log_scan_bytes += self.block_size
        else:
            self.env.log_device.read_random(self.block_size)
            if undo:
                stats.undo_log_reads += 1
        self._cache[block] = None
        while len(self._cache) > self.cache_blocks:
            self._cache.popitem(last=False)

    def read(self, lsn: int, *, for_undo: bool = False) -> LogRecord:
        """Fetch the record at ``lsn`` (random access)."""
        with self.latch:
            self._check_readable(lsn)
            self._touch_block(lsn, sequential=False, undo=for_undo)
            record, _end = decode_record(self._data, lsn - self._base, lsn)
            return record

    def undo_fetch(self, lsn: int) -> LogRecord:
        """``read`` bound for undo paths: counted as an undo log access."""
        return self.read(lsn, for_undo=True)

    # ------------------------------------------------------------------
    # Batched reads (the as-of chain walk's access path)
    # ------------------------------------------------------------------

    def read_header(self, lsn: int) -> RecordHeader:
        """Fetch only the fixed-size header of the record at ``lsn``.

        This is how chain *discovery* stays cheap: the per-page back-chain
        lives entirely in record headers, so the batched undo path walks
        ``prev_page_lsn`` with one sector-sized random read per uncached
        record instead of pulling a whole cache block each hop. Served
        free from the volatile tail and from cached blocks; an uncached
        header charges :data:`HEADER_READ_BYTES` of random I/O and does
        **not** populate the block cache (the block was never streamed).
        """
        with self.latch:
            self._check_readable(lsn)
            if lsn < self._durable_end:
                block = lsn // self.block_size
                stats = self.env.stats
                if block in self._cache:
                    self._cache.move_to_end(block)
                    stats.undo_log_cache_hits += 1
                else:
                    self.env.log_device.read_random(HEADER_READ_BYTES)
                    stats.undo_header_reads += 1
            return unpack_header(self._data, lsn - self._base, lsn)

    def read_many(self, lsns, *, for_undo: bool = True) -> dict[int, LogRecord]:
        """Fetch the records at ``lsns`` with coalesced I/O; returns
        ``{lsn: record}``.

        The paper's Figure 11 cost is one random log read per back-chain
        record; this is the batched alternative. The needed LSNs are
        sorted by log block, blocks already cached (or in the volatile
        tail) are served free, and the remaining blocks are grouped into
        spans: blocks separated by at most :attr:`coalesce_gap_blocks`
        unneeded blocks join one span, charged as a *single* random read
        of the whole span — one seek plus a sequential-priced transfer —
        instead of one seek per block. Every spanned block (gap blocks
        included) lands in the block cache, so nearby chains walked next
        ride the same transfer.

        ``undo_log_reads`` counts issued spans (it stays "number of
        random undo I/Os", the Figure 11 metric); the blocks a span
        absorbed beyond its first are counted in ``undo_reads_coalesced``.
        """
        wanted = sorted(set(lsns))
        result: dict[int, LogRecord] = {}
        if not wanted:
            return result
        with self.latch, self.env.tracer.span(
            "log.read_many", records=len(wanted)
        ) as span:
            for lsn in wanted:
                self._check_readable(lsn)
            stats = self.env.stats
            needed: list[int] = []
            for lsn in wanted:
                if lsn >= self._durable_end:
                    continue  # volatile tail: in memory, free
                block = lsn // self.block_size
                if needed and needed[-1] == block:
                    # A second record in a block this batch already fetches.
                    if for_undo:
                        stats.undo_log_cache_hits += 1
                    continue
                if block in self._cache:
                    self._cache.move_to_end(block)
                    if for_undo:
                        stats.undo_log_cache_hits += 1
                    continue
                needed.append(block)
            spans: list[list[int]] = []
            for block in needed:
                if spans and block - spans[-1][1] - 1 <= self.coalesce_gap_blocks:
                    spans[-1][1] = block
                else:
                    spans.append([block, block])
            span.set(
                spans=len(spans),
                blocks=sum(end - start + 1 for start, end in spans),
            )
            for start, end in spans:
                nblocks = end - start + 1
                self.env.log_device.read_random(nblocks * self.block_size)
                if for_undo:
                    stats.undo_log_reads += 1
                    stats.undo_reads_coalesced += nblocks - 1
                for block in range(start, end + 1):
                    self._cache[block] = None
                    self._cache.move_to_end(block)
                while len(self._cache) > self.cache_blocks:
                    self._cache.popitem(last=False)
            for lsn in wanted:
                record, _end = decode_record(self._data, lsn - self._base, lsn)
                result[lsn] = record
            return result

    # ------------------------------------------------------------------
    # Raw byte access (log shipping)
    # ------------------------------------------------------------------

    def read_bytes(self, from_lsn: int, to_lsn: int) -> bytes:
        """Raw log bytes ``[from_lsn, to_lsn)`` (the log-shipping read path).

        Charged like a sequential scan: one block read per block the range
        crosses, served from the block cache when possible. Callers are
        responsible for record alignment (:meth:`record_aligned_end`).
        """
        if from_lsn >= to_lsn:
            return b""
        with self.latch:
            self._check_readable(from_lsn)
            if to_lsn > self.end_lsn:
                raise WalError(
                    f"read_bytes end {format_lsn(to_lsn)} beyond log end "
                    f"{format_lsn(self.end_lsn)}"
                )
            block = (from_lsn // self.block_size) * self.block_size
            while block < to_lsn:
                self._touch_block(max(block, from_lsn), sequential=True, undo=False)
                block += self.block_size
            return bytes(self._data[from_lsn - self._base : to_lsn - self._base])

    def record_aligned_end(
        self, from_lsn: int, max_bytes: int, limit_lsn: int | None = None
    ) -> int:
        """Largest record boundary in ``(from_lsn, limit_lsn]`` within
        ``max_bytes`` of ``from_lsn``.

        Walks record headers only (each starts with its u32 total length),
        so a shipper can frame batches without decoding bodies. Returns
        ``from_lsn`` when not even one record fits the budget — the caller
        must then grow the budget rather than ship a torn record.
        """
        with self.latch:
            self._check_readable(from_lsn)
            limit = (
                self.end_lsn if limit_lsn is None else min(limit_lsn, self.end_lsn)
            )
            end = from_lsn
            while end < limit:
                offset = end - self._base
                total = int.from_bytes(self._data[offset : offset + 4], "little")
                if total < HEADER_SIZE or end + total > limit:
                    break
                if end + total - from_lsn > max_bytes and end > from_lsn:
                    break
                end += total
            return end

    def ingest(self, start_lsn: int, data: bytes) -> int:
        """Land shipped log bytes on a standby's log (durable immediately).

        ``start_lsn`` must equal :attr:`end_lsn` — shipped frames arrive in
        order with no gaps (the shipper resumes from the standby's cursor).
        The bytes are validated to decode as whole records, the last-commit
        tracker is advanced, and one sequential log write is charged (the
        standby lands the stream the same way the primary flushed it).

        Returns the LSN of the newest checkpoint-begin record in the
        frame (``NULL_LSN`` if none): a standby needs a checkpoint-chain
        anchor for SplitLSN search *before* any page state exists, and the
        chain is read from the log, not from pages.
        """
        with self.latch:
            if start_lsn != self.end_lsn:
                raise WalError(
                    f"ingest at {format_lsn(start_lsn)} does not continue the "
                    f"log (end is {format_lsn(self.end_lsn)})"
                )
            if not data:
                return NULL_LSN
            # Header walk: reject torn frames before mutating any state.
            offset = 0
            last_commit = NULL_LSN
            last_checkpoint = NULL_LSN
            while offset < len(data):
                if offset + HEADER_SIZE > len(data):
                    raise LogRecordDecodeError(
                        f"ingest frame ends mid-header at byte {offset}"
                    )
                total = int.from_bytes(data[offset : offset + 4], "little")
                if total < HEADER_SIZE or offset + total > len(data):
                    raise LogRecordDecodeError(
                        f"ingest frame ends mid-record at byte {offset}"
                    )
                rtype = data[offset + 4]
                if rtype == _COMMIT_TYPE:
                    last_commit = start_lsn + offset
                elif rtype == _CHECKPOINT_BEGIN_TYPE:
                    last_checkpoint = start_lsn + offset
                offset += total
            self._data += data
            self._durable_end = self.end_lsn
            if last_commit != NULL_LSN:
                self._last_commit_lsn = last_commit
            self.env.log_device.write_seq_async(len(data))
            self.env.stats.log_flushes += 1
            self.env.stats.log_write_bytes += len(data)
            return last_checkpoint

    def open_at(self, base_lsn: int) -> None:
        """Rebase a pristine, empty log so its next record lands at
        ``base_lsn``.

        The log stream of an archive-restored database copy — or of a
        standby seeded from a backup chain — starts mid-history: the first
        byte it will ever hold is the record at the seed LSN, and
        everything below that LSN lives in the backup pages (or the
        archive). Only a freshly constructed log (no appended records, no
        prior rebase) may be rebased; anything else would orphan LSNs.
        """
        with self.latch:
            if base_lsn < FIRST_LSN:
                raise WalError(
                    f"cannot open log at {format_lsn(base_lsn)}: below the "
                    f"first valid LSN {format_lsn(FIRST_LSN)}"
                )
            if (
                self._base != 0
                or self.end_lsn != FIRST_LSN
                or self._durable_end != FIRST_LSN
                or self._truncated_before != FIRST_LSN
            ):
                raise WalError(
                    f"open_at requires a pristine empty log "
                    f"(end={format_lsn(self.end_lsn)}, base={self._base})"
                )
            self._data = bytearray()
            self._base = base_lsn
            self._durable_end = base_lsn
            self._truncated_before = base_lsn

    def discard_after(self, lsn: int) -> None:
        """Throw away all records with LSN >= ``lsn`` (standby promotion).

        Point-in-time promotion of a replica stops applying at a SplitLSN
        and continues the timeline from there; shipped-but-unwanted records
        beyond the split must vanish so new writes append at the split.
        Only meaningful on a standby log — a primary never unwrites
        durable records.
        """
        with self.latch:
            if lsn > self.end_lsn:
                return
            if lsn < self._truncated_before:
                raise WalError(
                    f"cannot discard from {format_lsn(lsn)}: below the "
                    f"retention horizon {format_lsn(self._truncated_before)}"
                )
            del self._data[lsn - self._base :]
            self._durable_end = min(self._durable_end, lsn)
            self._cache.clear()
            if self._last_commit_lsn >= lsn:
                self._last_commit_lsn = NULL_LSN

    # ------------------------------------------------------------------
    # Sequential scans (recovery, SplitLSN search, roll-forward)
    # ------------------------------------------------------------------

    def scan(
        self,
        from_lsn: int,
        to_lsn: int | None = None,
        *,
        stop_on_torn_tail: bool = False,
    ):
        """Yield records with ``from_lsn <= record.lsn < to_lsn`` in order.

        With ``stop_on_torn_tail`` the scan ends silently at the first
        undecodable record — the behavior recovery relies on to find the
        end of a crash-truncated log.
        """
        # The latch is taken per record, never held across a yield: a
        # suspended generator must not wedge concurrent appenders.
        with self.latch:
            if from_lsn < self._truncated_before:
                raise LogTruncatedError(
                    f"scan start {format_lsn(from_lsn)} is below the "
                    f"retention horizon {format_lsn(self._truncated_before)}"
                )
            limit = self.end_lsn if to_lsn is None else min(to_lsn, self.end_lsn)
            lsn = max(from_lsn, FIRST_LSN, self._base)
        while lsn < limit:
            with self.latch:
                if lsn >= self._base + len(self._data):
                    return
                self._touch_block(lsn, sequential=True, undo=False)
                try:
                    record, end_offset = decode_record(
                        self._data, lsn - self._base, lsn
                    )
                except LogRecordDecodeError:
                    if stop_on_torn_tail:
                        return
                    raise
                next_lsn = self._base + end_offset
            yield record
            lsn = next_lsn

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulate a crash: the volatile tail and the cache vanish."""
        with self.latch:
            keep = self._durable_end - self._base
            del self._data[keep:]
            self._cache.clear()
            if self._last_commit_lsn >= self._durable_end:
                # The last commit sat in the volatile tail; the survivor
                # (if any) is only discoverable by scanning, so reset the
                # tracker.
                self._last_commit_lsn = NULL_LSN

    def truncate_before(self, lsn: int) -> None:
        """Drop all records with LSN < ``lsn`` (retention enforcement).

        Only durable prefixes may be truncated. The freed bytes are
        physically released.
        """
        with self.latch:
            if lsn <= self._truncated_before:
                return
            if lsn > self._durable_end:
                raise WalError(
                    f"cannot truncate at {format_lsn(lsn)} beyond durable "
                    f"boundary {format_lsn(self._durable_end)}"
                )
            cut = lsn - self._base
            del self._data[:cut]
            self._base = lsn
            self._truncated_before = lsn

    def __repr__(self) -> str:
        return (
            f"LogManager(end={format_lsn(self.end_lsn)}, "
            f"durable={format_lsn(self._durable_end)}, "
            f"start={format_lsn(self._truncated_before)}, "
            f"bytes={len(self._data)})"
        )
