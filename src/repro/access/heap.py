"""Heap tables: append-only pages chained by next-pointers.

Heaps exist to demonstrate the paper's claim (section 7.2) that the
page-oriented mechanism "works seamlessly" with non-B-tree structures: a
heap page's modifications chain exactly like any other page's, so as-of
queries unwind heaps with zero heap-specific code.

Slots in a heap are stable (never shifted): rollback of an insert
tombstones the slot with an empty payload instead of removing it, and
scans skip tombstones. The TPC-C ``history`` table is a heap.
"""

from __future__ import annotations

from repro.access.btree import BTreeServices
from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.storage.page import NULL_PAGE, PageType
from repro.storage.rowcodec import RowCodec
from repro.wal.records import FLAG_HEAP, FLAG_SMO, InsertRowRecord, SetLinksRecord


class Heap:
    """One heap table rooted at a fixed first page."""

    def __init__(
        self,
        *,
        object_id: int,
        first_page_id: int,
        schema: TableSchema,
        services: BTreeServices,
    ) -> None:
        self.object_id = object_id
        self.first_page_id = first_page_id
        self.schema = schema
        self.codec = RowCodec(schema)
        self.services = services
        #: Soft hint: last page known to have had space.
        self._tail_hint = first_page_id

    # ------------------------------------------------------------------

    def insert(self, txn, row: tuple) -> tuple[int, int]:
        """Append a row; returns its (page_id, slot) rid."""
        self.services.env.charge_cpu(self.services.env.cost.dml_cpu_s)
        payload = self.codec.encode(row)
        pid = self._tail_hint
        while True:
            with self.services.fetch(pid) as guard:
                page = guard.page
                if not page.is_formatted():
                    raise StorageError(
                        f"heap {self.object_id}: page {pid} unformatted"
                    )
                next_pid = page.next_page
                if page.has_room_for(len(payload)):
                    slot = page.slot_count
                    rec = InsertRowRecord(
                        slot=slot,
                        row=payload,
                        page_id=pid,
                        object_id=self.object_id,
                        flags=FLAG_HEAP,
                    )
                    self.services.modifier.apply(txn, guard, rec)
                    self._tail_hint = pid
                    return pid, slot
                if len(payload) > page.max_payload():
                    raise StorageError(
                        f"heap {self.object_id}: row of {len(payload)} bytes "
                        f"exceeds page capacity"
                    )
            if next_pid == NULL_PAGE:
                next_pid = self._grow(pid)
            pid = next_pid

    def _grow(self, tail_pid: int) -> int:
        """Append a fresh page to the chain (system transaction)."""
        new_holder = {}

        def work(txn) -> None:
            new_pid, was_ever = self.services.alloc.allocate(txn, tail_pid)
            guard = (
                self.services.fetch(new_pid)
                if was_ever
                else self.services.fetch(new_pid, create=True)
            )
            with guard:
                self.services.modifier.format_page(
                    txn,
                    guard,
                    PageType.HEAP,
                    object_id=self.object_id,
                    prev_page=tail_pid,
                    was_ever_allocated=was_ever,
                )
            with self.services.fetch(tail_pid) as tail_guard:
                tail = tail_guard.page
                links = SetLinksRecord(
                    old_prev=tail.prev_page,
                    old_next=tail.next_page,
                    new_prev=tail.prev_page,
                    new_next=new_pid,
                    page_id=tail_pid,
                    object_id=self.object_id,
                    flags=FLAG_SMO,
                )
                self.services.modifier.apply(txn, tail_guard, links)
            new_holder["pid"] = new_pid

        runner = self.services.system_txn
        if runner is None:
            work(None)
        else:
            runner(work)
        return new_holder["pid"]

    # ------------------------------------------------------------------

    def scan(self):
        """Yield all live rows in insertion order (tombstones skipped)."""
        env = self.services.env
        pid = self.first_page_id
        while pid != NULL_PAGE:
            rows = []
            with self.services.fetch(pid) as guard:
                page = guard.page
                next_pid = page.next_page
                for payload in page.records():
                    if payload:
                        rows.append(self.codec.decode(payload))
            for row in rows:
                env.charge_cpu(env.cost.query_row_cpu_s)
                yield row
            pid = next_pid

    def count(self) -> int:
        return sum(1 for _row in self.scan())

    def page_ids(self) -> list[int]:
        """All page ids of the heap chain (for drop/backup)."""
        result = []
        pid = self.first_page_id
        while pid != NULL_PAGE:
            result.append(pid)
            with self.services.fetch(pid) as guard:
                pid = guard.page.next_page
        return result
