"""Clustered B+-trees with fully logged structure modifications.

Design points that matter to the paper's mechanism:

* **Fixed root**: the root page id never changes (a full root is split by
  pushing its content down into two fresh children), so catalog rows never
  need updating mid-transaction and every historical version of the tree
  is reachable from the same root page.
* **Row moves are logged as inserts followed by deletes** (section 4.2
  item 3). The delete half carries the row image only when the
  ``smo_delete_undo_info`` extension is on; otherwise undo derives it from
  the paired insert via ``pair_lsn`` at the cost of an extra log read.
* **Structure modifications run as system transactions**: they commit
  immediately, independent of the user transaction that triggered them,
  and if they lose at a crash they are undone physically (slot-exact) —
  valid because a mid-flight SMO is the last writer of its pages.
* **In-place root reformat logs a preformat record first**, keeping the
  root's modification chain walkable across height growth.

Read paths (``get``/``scan``) go through a pluggable page source, so the
identical code serves the primary database, restored databases, and as-of
snapshots.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.catalog.schema import TableSchema
from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.page import NULL_PAGE, Page, PageType
from repro.storage.rowcodec import KeyCodec, RowCodec
from repro.wal.records import (
    FLAG_SMO,
    ClrRecord,
    DeleteRowRecord,
    InsertRowRecord,
    SetLinksRecord,
    UpdateRowRecord,
)

_ENTRY_CHILD = struct.Struct("<IB")

#: Retry bound for insert/split loops (a single insert can cascade at most
#: one split per level; trees here never approach this height).
_MAX_DESCENT_RETRIES = 64


def encode_entry(child_pid: int, key_bytes: bytes | None) -> bytes:
    """Interior entry payload: child pointer + separator key (None = -inf)."""
    if key_bytes is None:
        return _ENTRY_CHILD.pack(child_pid, 0)
    return _ENTRY_CHILD.pack(child_pid, 1) + key_bytes


def decode_entry(payload: bytes) -> tuple[int, bytes | None]:
    child, has_key = _ENTRY_CHILD.unpack_from(payload, 0)
    if not has_key:
        return child, None
    return child, payload[_ENTRY_CHILD.size :]


@dataclass
class BTreeServices:
    """Everything a tree needs from its hosting context.

    * ``env`` — simulation environment (CPU charging, stats).
    * ``fetch`` — ``fetch(page_id) -> FrameGuard`` pinned page access.
    * ``modifier`` — logged (primary) or unlogged (snapshot) modifier.
    * ``alloc`` — page allocator (snapshots use a virtual allocator).
    * ``system_txn`` — ``system_txn(fn)`` runs ``fn(txn)`` inside an
      immediately committed system transaction (no-op wrapper on
      snapshots, where nothing is logged).
    """

    env: object
    fetch: object
    modifier: object
    alloc: object = None
    system_txn: object = None


class BTree:
    """One clustered B+-tree (table or system table)."""

    def __init__(
        self,
        *,
        object_id: int,
        root_page_id: int,
        schema: TableSchema,
        services: BTreeServices,
    ) -> None:
        self.object_id = object_id
        self.root_page_id = root_page_id
        self.schema = schema
        self.codec = RowCodec(schema)
        self.key_codec = KeyCodec.for_schema(schema)
        self.services = services

    # ------------------------------------------------------------------
    # Descent
    # ------------------------------------------------------------------

    def _entry_key(self, payload: bytes) -> tuple | None:
        child, key_bytes = decode_entry(payload)
        del child
        if key_bytes is None:
            return None
        return self.key_codec.decode(key_bytes)

    def _child_index(self, page: Page, key: tuple) -> int:
        """Index of the interior entry whose subtree covers ``key``."""
        lo, hi = 1, page.slot_count  # entry 0 is the -inf sentinel
        while lo < hi:
            mid = (lo + hi) // 2
            entry_key = self._entry_key(page.record(mid))
            if entry_key <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo - 1

    def _descend(self, key: tuple | None, *, to_level: int = 0):
        """Walk from the root toward ``to_level``.

        ``key=None`` follows the leftmost edge. Returns
        ``(page_id, path)`` where path is ``[(page_id, child_slot), ...]``
        for the interior pages traversed.
        """
        fetch = self.services.fetch
        pid = self.root_page_id
        path: list[tuple[int, int]] = []
        while True:
            with fetch(pid) as guard:
                page = guard.page
                if not page.is_formatted():
                    raise StorageError(
                        f"btree {self.object_id}: page {pid} unformatted"
                    )
                if page.level <= to_level:
                    return pid, path
                if page.slot_count == 0:
                    raise StorageError(
                        f"btree {self.object_id}: empty interior page {pid}"
                    )
                slot = 0 if key is None else self._child_index(page, key)
                child, _kb = decode_entry(page.record(slot))
            path.append((pid, slot))
            pid = child

    def _find_slot(self, page: Page, key: tuple) -> tuple[int, bool]:
        """(insertion slot, exact-match?) within a leaf page."""
        lo, hi = 0, page.slot_count
        while lo < hi:
            mid = (lo + hi) // 2
            mid_key = self.codec.decode_key(page.record(mid))
            if mid_key < key:
                lo = mid + 1
            elif mid_key > key:
                hi = mid
            else:
                return mid, True
        return lo, False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> tuple | None:
        """Point lookup; returns the decoded row or None."""
        self.services.env.charge_cpu(self.services.env.cost.query_row_cpu_s)
        leaf_pid, _path = self._descend(key)
        with self.services.fetch(leaf_pid) as guard:
            slot, found = self._find_slot(guard.page, key)
            if not found:
                return None
            return self.codec.decode(guard.page.record(slot))

    def scan(self, lo: tuple | None = None, hi: tuple | None = None):
        """Yield rows with ``lo <= key <= hi`` in key order."""
        env = self.services.env
        pid, _path = self._descend(lo)
        while pid != NULL_PAGE:
            rows = []
            with self.services.fetch(pid) as guard:
                page = guard.page
                next_pid = page.next_page
                for payload in page.records():
                    rows.append(self.codec.decode(payload))
            for row in rows:
                key = self.schema.key_of(row)
                if lo is not None and key < lo:
                    continue
                if hi is not None and key > hi:
                    return
                env.charge_cpu(env.cost.query_row_cpu_s)
                yield row
            pid = next_pid

    def count(self) -> int:
        """Number of rows (full scan)."""
        return sum(1 for _row in self.scan())

    def height(self) -> int:
        with self.services.fetch(self.root_page_id) as guard:
            return guard.page.level + 1

    def page_ids(self) -> list[int]:
        """All page ids of this tree (root included), for drop/backup."""
        result = []
        stack = [self.root_page_id]
        while stack:
            pid = stack.pop()
            result.append(pid)
            with self.services.fetch(pid) as guard:
                page = guard.page
                if page.level > 0:
                    for payload in page.records():
                        child, _kb = decode_entry(payload)
                        stack.append(child)
        return result

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def insert(self, txn, row: tuple) -> None:
        """Insert a full row; raises DuplicateKeyError on key collision."""
        row_bytes = self.codec.encode(row)
        key = self.schema.key_of(row)
        self._insert_bytes(txn, row_bytes, key, clr_for=None)

    def delete(self, txn, key: tuple) -> tuple:
        """Delete by key; returns the removed row."""
        self.services.env.charge_cpu(self.services.env.cost.dml_cpu_s)
        leaf_pid, _path = self._descend(key)
        with self.services.fetch(leaf_pid) as guard:
            page = guard.page
            slot, found = self._find_slot(page, key)
            if not found:
                raise KeyNotFoundError(
                    f"{self.schema.name}: no row with key {key!r}"
                )
            payload = page.record(slot)
            rec = DeleteRowRecord(
                slot=slot,
                row=payload,
                key_bytes=self.key_codec.encode(key),
                page_id=leaf_pid,
                object_id=self.object_id,
            )
            self.services.modifier.apply(txn, guard, rec)
            return self.codec.decode(payload)

    def update(self, txn, key: tuple, new_row: tuple) -> tuple:
        """Replace the row at ``key``; returns the prior row.

        The new row must have the same key (updates never move rows).
        """
        if self.schema.key_of(new_row) != key:
            raise StorageError(
                f"{self.schema.name}: update must preserve the key"
            )
        new_bytes = self.codec.encode(new_row)
        old_bytes = self._update_bytes(txn, key, new_bytes, clr_for=None)
        return self.codec.decode(old_bytes)

    # -- shared write plumbing (also drives CLR-mode undo writes) -------

    def _wrap(self, rec, clr_for):
        """Plain record, or a CLR compensating ``clr_for`` performing it."""
        if clr_for is None:
            return rec
        return ClrRecord(
            compensated_lsn=clr_for.lsn,
            undo_next_lsn=clr_for.prev_txn_lsn,
            comp=rec,
            page_id=rec.page_id,
            object_id=rec.object_id,
        )

    def _insert_bytes(self, txn, row_bytes: bytes, key: tuple, clr_for) -> None:
        self.services.env.charge_cpu(self.services.env.cost.dml_cpu_s)
        key_bytes = self.key_codec.encode(key)
        for _attempt in range(_MAX_DESCENT_RETRIES):
            leaf_pid, path = self._descend(key)
            with self.services.fetch(leaf_pid) as guard:
                page = guard.page
                slot, found = self._find_slot(page, key)
                if found:
                    raise DuplicateKeyError(
                        f"{self.schema.name}: duplicate key {key!r}"
                    )
                if page.has_room_for(len(row_bytes)):
                    rec = InsertRowRecord(
                        slot=slot,
                        row=row_bytes,
                        key_bytes=key_bytes,
                        page_id=leaf_pid,
                        object_id=self.object_id,
                    )
                    self.services.modifier.apply(txn, guard, self._wrap(rec, clr_for))
                    return
                if len(row_bytes) > page.max_payload():
                    raise StorageError(
                        f"{self.schema.name}: row of {len(row_bytes)} bytes "
                        f"exceeds page capacity"
                    )
            self._split(leaf_pid, path)
        raise StorageError(f"{self.schema.name}: insert did not converge")

    def _update_bytes(self, txn, key: tuple, new_bytes: bytes, clr_for) -> bytes:
        self.services.env.charge_cpu(self.services.env.cost.dml_cpu_s)
        key_bytes = self.key_codec.encode(key)
        for _attempt in range(_MAX_DESCENT_RETRIES):
            leaf_pid, path = self._descend(key)
            with self.services.fetch(leaf_pid) as guard:
                page = guard.page
                slot, found = self._find_slot(page, key)
                if not found:
                    raise KeyNotFoundError(
                        f"{self.schema.name}: no row with key {key!r}"
                    )
                old_bytes = page.record(slot)
                growth = len(new_bytes) - len(old_bytes)
                if growth <= 0 or page.total_free() >= growth:
                    rec = UpdateRowRecord(
                        slot=slot,
                        old=old_bytes,
                        new=new_bytes,
                        key_bytes=key_bytes,
                        page_id=leaf_pid,
                        object_id=self.object_id,
                    )
                    self.services.modifier.apply(txn, guard, self._wrap(rec, clr_for))
                    return old_bytes
            self._split(leaf_pid, path)
        raise StorageError(f"{self.schema.name}: update did not converge")

    # ------------------------------------------------------------------
    # Logical undo entry points (rollback / recovery / snapshot undo)
    # ------------------------------------------------------------------

    def undo_insert(self, txn, rec: InsertRowRecord) -> None:
        """Compensate an insert: locate by key and delete."""
        key = self.key_codec.decode(rec.key_bytes)
        leaf_pid, _path = self._descend(key)
        ext = self.services.modifier.extensions
        with self.services.fetch(leaf_pid) as guard:
            slot, found = self._find_slot(guard.page, key)
            if not found:
                raise KeyNotFoundError(
                    f"{self.schema.name}: undo-insert cannot find key {key!r}"
                )
            payload = guard.page.record(slot)
            comp = DeleteRowRecord(
                slot=slot,
                row=payload if ext.clr_undo_info else None,
                key_bytes=rec.key_bytes,
                page_id=leaf_pid,
                object_id=self.object_id,
            )
            self.services.modifier.apply(txn, guard, self._wrap(comp, rec))

    def undo_delete(self, txn, rec: DeleteRowRecord) -> None:
        """Compensate a delete: re-insert the logged row (may split)."""
        row_bytes = rec.resolve_row(self.services.modifier.log.undo_fetch
                                    if self.services.modifier.logged else None)
        key = self.key_codec.decode(rec.key_bytes)
        self._insert_bytes(txn, row_bytes, key, clr_for=rec)

    def undo_update(self, txn, rec: UpdateRowRecord) -> None:
        """Compensate an update: restore the before-image (may split)."""
        if rec.old is None:
            raise KeyNotFoundError(
                f"{self.schema.name}: undo-update lacks a before-image"
            )
        key = self.key_codec.decode(rec.key_bytes)
        key_bytes = rec.key_bytes
        ext = self.services.modifier.extensions
        for _attempt in range(_MAX_DESCENT_RETRIES):
            leaf_pid, path = self._descend(key)
            with self.services.fetch(leaf_pid) as guard:
                page = guard.page
                slot, found = self._find_slot(page, key)
                if not found:
                    raise KeyNotFoundError(
                        f"{self.schema.name}: undo-update cannot find {key!r}"
                    )
                current = page.record(slot)
                growth = len(rec.old) - len(current)
                if growth <= 0 or page.total_free() >= growth:
                    comp = UpdateRowRecord(
                        slot=slot,
                        new=rec.old,
                        old=rec.new if ext.clr_undo_info else None,
                        key_bytes=key_bytes,
                        page_id=leaf_pid,
                        object_id=self.object_id,
                    )
                    self.services.modifier.apply(txn, guard, self._wrap(comp, rec))
                    return
            self._split(leaf_pid, path)
        raise StorageError(f"{self.schema.name}: undo-update did not converge")

    # ------------------------------------------------------------------
    # Structure modifications
    # ------------------------------------------------------------------

    def _split(self, full_pid: int, path: list) -> None:
        """Split ``full_pid`` inside one system transaction.

        Root splits push content down into two fresh children; other
        splits move the upper half right and post a separator to the
        parent (recursively splitting parents as needed).
        """

        def work(txn) -> None:
            if full_pid == self.root_page_id:
                self._split_root(txn)
            else:
                self._split_nonroot(txn, full_pid)

        runner = self.services.system_txn
        if runner is None:
            work(None)
        else:
            runner(work)

    def _allocate_formatted(self, txn, *, level: int, prev_page: int, next_page: int, hint: int) -> int:
        """Allocate + format a fresh tree page (preformat on re-allocation)."""
        alloc = self.services.alloc
        new_pid, was_ever = alloc.allocate(txn, hint)
        guard = self.services.fetch(new_pid) if was_ever else self.services.fetch(new_pid, create=True)
        with guard:
            self.services.modifier.format_page(
                txn,
                guard,
                PageType.BTREE,
                object_id=self.object_id,
                level=level,
                prev_page=prev_page,
                next_page=next_page,
                was_ever_allocated=was_ever,
            )
        return new_pid

    def _move_rows(self, txn, src_guard, dst_guard, start_slot: int) -> None:
        """Move slots [start_slot, count) from src to dst, verbatim, logged
        as SMO inserts followed by SMO deletes (paper section 4.2 item 3).

        Moves are byte-exact so a delete lacking the row image (extension
        off) can derive it from its paired insert via ``pair_lsn``. For
        interior pages the first moved entry keeps its separator key: entry
        0 of an interior node is treated as -inf by the descent regardless
        of its stored key, so no re-encoding is needed.
        """
        src = src_guard.page
        dst = dst_guard.page
        ext = self.services.modifier.extensions
        payloads = [src.record(s) for s in range(start_slot, src.slot_count)]
        insert_lsns = []
        for offset, payload in enumerate(payloads):
            rec = InsertRowRecord(
                slot=offset,
                row=payload,
                page_id=dst.page_id,
                object_id=self.object_id,
                flags=FLAG_SMO,
            )
            insert_lsns.append(self.services.modifier.apply(txn, dst_guard, rec))
        for offset in range(len(payloads) - 1, -1, -1):
            slot = start_slot + offset
            rec = DeleteRowRecord(
                slot=slot,
                row=payloads[offset] if ext.smo_delete_undo_info else None,
                pair_lsn=insert_lsns[offset],
                page_id=src.page_id,
                object_id=self.object_id,
                flags=FLAG_SMO,
            )
            self.services.modifier.apply(txn, src_guard, rec)

    def _split_nonroot(self, txn, full_pid: int) -> None:
        fetch = self.services.fetch
        with fetch(full_pid) as src_guard:
            src = src_guard.page
            count = src.slot_count
            if count < 2:
                raise StorageError(
                    f"btree {self.object_id}: cannot split page {full_pid} "
                    f"with {count} records"
                )
            mid = count // 2
            is_leaf = src.level == 0
            if is_leaf:
                sep_key = self.codec.decode_key(src.record(mid))
                sep_kb = self.key_codec.encode(sep_key)
            else:
                _child, sep_kb = decode_entry(src.record(mid))
                if sep_kb is None:
                    raise StorageError("interior split at -inf entry")
            old_next = src.next_page
            new_pid = self._allocate_formatted(
                txn,
                level=src.level,
                prev_page=full_pid if is_leaf else NULL_PAGE,
                next_page=old_next if is_leaf else NULL_PAGE,
                hint=full_pid,
            )
            with fetch(new_pid) as dst_guard:
                self._move_rows(txn, src_guard, dst_guard, mid)
            if is_leaf:
                links = SetLinksRecord(
                    old_prev=src.prev_page,
                    old_next=old_next,
                    new_prev=src.prev_page,
                    new_next=new_pid,
                    page_id=full_pid,
                    object_id=self.object_id,
                    flags=FLAG_SMO,
                )
                self.services.modifier.apply(txn, src_guard, links)
                if old_next != NULL_PAGE:
                    with fetch(old_next) as right_guard:
                        right = right_guard.page
                        links = SetLinksRecord(
                            old_prev=right.prev_page,
                            old_next=right.next_page,
                            new_prev=new_pid,
                            new_next=right.next_page,
                            page_id=old_next,
                            object_id=self.object_id,
                            flags=FLAG_SMO,
                        )
                        self.services.modifier.apply(txn, right_guard, links)
            parent_level = src.level + 1
        self._post_separator(txn, parent_level, sep_kb, new_pid)

    def _post_separator(self, txn, level: int, sep_kb: bytes, child_pid: int) -> None:
        """Insert (sep, child) into the interior node at ``level``."""
        sep_key = self.key_codec.decode(sep_kb)
        entry = encode_entry(child_pid, sep_kb)
        for _attempt in range(_MAX_DESCENT_RETRIES):
            pid, _path = self._descend(sep_key, to_level=level)
            with self.services.fetch(pid) as guard:
                page = guard.page
                if page.level != level:
                    raise StorageError(
                        f"btree {self.object_id}: descent reached level "
                        f"{page.level}, wanted {level}"
                    )
                slot = self._child_index(page, sep_key) + 1
                if page.has_room_for(len(entry)):
                    rec = InsertRowRecord(
                        slot=slot,
                        row=entry,
                        page_id=pid,
                        object_id=self.object_id,
                        flags=FLAG_SMO,
                    )
                    self.services.modifier.apply(txn, guard, rec)
                    return
            if pid == self.root_page_id:
                self._split_root(txn)
            else:
                self._split_nonroot(txn, pid)
        raise StorageError(f"btree {self.object_id}: separator post did not converge")

    def _split_root(self, txn) -> None:
        """Grow the tree by one level, keeping the root page id fixed.

        The root's content moves into two fresh children; the root is then
        reformatted in place one level higher — preceded by a preformat
        record so its modification chain survives the reformat.
        """
        fetch = self.services.fetch
        with fetch(self.root_page_id) as root_guard:
            root = root_guard.page
            count = root.slot_count
            if count < 2:
                raise StorageError(
                    f"btree {self.object_id}: cannot split root with "
                    f"{count} records"
                )
            mid = count // 2
            level = root.level
            is_leaf = level == 0
            if is_leaf:
                sep_key = self.codec.decode_key(root.record(mid))
                sep_kb = self.key_codec.encode(sep_key)
            else:
                _child, sep_kb = decode_entry(root.record(mid))
                if sep_kb is None:
                    raise StorageError("root split at -inf entry")
            left_pid = self._allocate_formatted(
                txn, level=level, prev_page=NULL_PAGE, next_page=NULL_PAGE,
                hint=self.root_page_id,
            )
            right_pid = self._allocate_formatted(
                txn,
                level=level,
                prev_page=left_pid if is_leaf else NULL_PAGE,
                next_page=NULL_PAGE,
                hint=left_pid,
            )
            with fetch(right_pid) as right_guard:
                self._move_rows(txn, root_guard, right_guard, mid)
            with fetch(left_pid) as left_guard:
                self._move_rows(txn, root_guard, left_guard, 0)
                if is_leaf:
                    links = SetLinksRecord(
                        old_prev=NULL_PAGE,
                        old_next=NULL_PAGE,
                        new_prev=NULL_PAGE,
                        new_next=right_pid,
                        page_id=left_pid,
                        object_id=self.object_id,
                        flags=FLAG_SMO,
                    )
                    self.services.modifier.apply(txn, left_guard, links)
            # Reformat the (now empty) root one level up. The preformat is
            # forced (independent of the extension switch): rollback of a
            # mid-flight root split needs the pre-format image to restore
            # the page before re-inserting the moved rows.
            self.services.modifier.format_page(
                txn,
                root_guard,
                PageType.BTREE,
                object_id=self.object_id,
                level=level + 1,
                was_ever_allocated=True,
                force_preformat=True,
            )
            for slot, entry in enumerate(
                (encode_entry(left_pid, None), encode_entry(right_pid, sep_kb))
            ):
                rec = InsertRowRecord(
                    slot=slot,
                    row=entry,
                    page_id=self.root_page_id,
                    object_id=self.object_id,
                    flags=FLAG_SMO,
                )
                self.services.modifier.apply(txn, root_guard, rec)
