"""Access methods: clustered B-trees and heaps over slotted pages.

Both structures log every page modification through the
:class:`~repro.wal.apply.PageModifier`, so the paper's page-oriented undo
works on them "without need for specialized code" (section 7.2) — and the
same read paths run against primary buffers or as-of snapshot page sources.
"""

from repro.access.btree import BTree, BTreeServices
from repro.access.heap import Heap

__all__ = ["BTree", "BTreeServices", "Heap"]
