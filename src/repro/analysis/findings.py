"""Findings, inline suppressions, and the committed baseline.

A :class:`Finding` is one rule violation at one source location. Its
:meth:`~Finding.identity` deliberately excludes the line number so a
committed baseline survives unrelated edits above the finding; the
message carries the discriminating detail (names, not positions).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

#: ``# reprolint: ignore`` or ``# reprolint: ignore[RL001, RL005]``.
_IGNORE_RE = re.compile(
    r"#\s*reprolint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?"
)

#: A whole-file opt-out; must be a standalone comment line.
_SKIP_FILE_RE = re.compile(r"^\s*#\s*reprolint:\s*skip-file\s*$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = field(default="", compare=False)

    def identity(self) -> tuple[str, str, str]:
        """Baseline identity: stable across line-number drift."""
        return (self.rule, self.path, self.message)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


def collect_suppressions(source: str) -> dict[int, set[str] | None]:
    """Map line number -> suppressed rule ids (``None`` = all rules).

    Only comment text is honored: a ``reprolint: ignore`` inside a string
    literal does not suppress (the marker must follow a ``#``).
    """
    suppressions: dict[int, set[str] | None] = {}
    for lineno, text in enumerate(source.splitlines(), 1):
        comment_at = text.find("#")
        if comment_at < 0:
            continue
        match = _IGNORE_RE.search(text, comment_at)
        if not match:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[lineno] = None
        else:
            ids = {r.strip().upper() for r in rules.split(",") if r.strip()}
            existing = suppressions.get(lineno)
            if existing is None and lineno in suppressions:
                continue  # blanket ignore already covers the line
            suppressions[lineno] = ids | (existing or set())
    return suppressions


def is_skipped_file(source: str) -> bool:
    """True when the module opts out with ``# reprolint: skip-file``."""
    for text in source.splitlines():
        if _SKIP_FILE_RE.match(text):
            return True
    return False


def is_suppressed(
    suppressions: dict[int, set[str] | None], line: int, rule: str
) -> bool:
    if line not in suppressions:
        return False
    rules = suppressions[line]
    return rules is None or rule.upper() in rules


class Baseline:
    """The committed set of accepted findings.

    The gate only fails on findings *not* in the baseline, so a rule can
    land before every legacy violation is fixed — though this repo
    commits an empty baseline: all pre-existing violations were fixed,
    not grandfathered.
    """

    VERSION = 1

    def __init__(self, entries: set[tuple[str, str, str]] | None = None) -> None:
        self.entries = entries or set()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:  # reprolint: ignore[RL002]
            raw = json.load(handle)
        if raw.get("version") != cls.VERSION:
            raise ValueError(
                f"baseline {path}: unsupported version {raw.get('version')!r}"
            )
        entries = {
            (item["rule"], item["path"], item["message"])
            for item in raw.get("findings", ())
        }
        return cls(entries)

    def dump(self, findings: list[Finding]) -> str:
        payload = {
            "version": self.VERSION,
            "findings": [
                {"rule": f.rule, "path": f.path, "message": f.message}
                for f in sorted(findings)
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def split(
        self, findings: list[Finding]
    ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, baselined)."""
        new: list[Finding] = []
        old: list[Finding] = []
        for finding in findings:
            (old if finding.identity() in self.entries else new).append(finding)
        return new, old

    def stale_entries(self, findings: list[Finding]) -> set[tuple[str, str, str]]:
        """Baseline entries no current finding matches (fixed or moved)."""
        seen = {f.identity() for f in findings}
        return {entry for entry in self.entries if entry not in seen}
