"""Finding reporters: human text and machine JSON.

Shared by the reprolint CLI and by ``loginspect --lint-log`` (whose
log-level findings render through the same text path, so tooling output
stays uniform).
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding


def render_text(
    findings: list[Finding],
    *,
    baselined: list[Finding] | None = None,
    show_snippets: bool = True,
) -> list[str]:
    """One ``path:line:col: RULE message`` block per finding."""
    lines: list[str] = []
    for finding in findings:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        if show_snippets and finding.snippet:
            lines.append(f"    {finding.snippet}")
    if baselined:
        lines.append(f"({len(baselined)} baselined finding(s) not shown)")
    return lines


def render_json(
    findings: list[Finding], *, baselined: list[Finding] | None = None
) -> str:
    def encode(finding: Finding, in_baseline: bool) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "message": finding.message,
            "baselined": in_baseline,
        }

    payload = {
        "findings": [encode(f, False) for f in findings]
        + [encode(f, True) for f in (baselined or [])],
    }
    return json.dumps(payload, indent=2)


def summary(
    findings: list[Finding],
    baselined: list[Finding],
    files: int,
    elapsed_s: float,
) -> str:
    by_rule: dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    breakdown = (
        " (" + ", ".join(f"{r}: {n}" for r, n in sorted(by_rule.items())) + ")"
        if by_rule
        else ""
    )
    extra = f", {len(baselined)} baselined" if baselined else ""
    return (
        f"reprolint: {len(findings)} new finding(s){breakdown}{extra} "
        f"across {files} file(s) in {elapsed_s * 1000:.0f} ms"
    )
