"""reprolint: engine-invariant static analysis.

The recovery story of the paper rests on invariants the type system
cannot see: LSNs order the log opaquely, every byte the engine moves is
priced through the simulated device model, replay is deterministic so
replicas and restored copies converge byte-for-byte, and the structures
shared across sessions (pools, version store, buffer pool, log tail,
retention pins) are mutated only by their owners. This package checks
those invariants at lint time, over the AST, before a refactor can
silently break them.

Entry points:

- :class:`~repro.analysis.framework.Analyzer` — run registered rules
  over files or in-memory source.
- ``python -m repro.tools.reprolint src/ tests/`` — the CLI (text/JSON
  reporting, baseline, CI gate).

Rules live in :mod:`repro.analysis.rules`; each one documents the
invariant it enforces. Suppress a finding inline with
``# reprolint: ignore[RULE]`` on the flagged line, or skip a whole file
with a ``# reprolint: skip-file`` comment line.
"""

from repro.analysis.config import AnalyzerConfig, RuleConfig
from repro.analysis.findings import Baseline, Finding
from repro.analysis.framework import Analyzer, Rule, all_rules, register

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "Baseline",
    "Finding",
    "Rule",
    "RuleConfig",
    "all_rules",
    "register",
]
