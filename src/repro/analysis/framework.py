"""The analyzer core: rule base class, registry, AST helpers, driver.

Rules are small classes registered with :func:`register`; the
:class:`Analyzer` parses each file once, attaches parent links, and runs
every rule whose configured path scope matches. Rules report through
:class:`RuleContext`, which applies inline suppressions.
"""

from __future__ import annotations

import ast
import os

from repro.analysis.config import AnalyzerConfig
from repro.analysis.findings import (
    Finding,
    collect_suppressions,
    is_skipped_file,
    is_suppressed,
)

_PARENT = "_reprolint_parent"


def attach_parents(tree: ast.AST) -> None:
    """Give every node a parent pointer (rules climb for context)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def parent(node: ast.AST) -> ast.AST | None:
    return getattr(node, _PARENT, None)


def ancestors(node: ast.AST):
    """Yield enclosing nodes, innermost first."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


def build_import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted module path they were imported as.

    ``import os``            -> {"os": "os"}
    ``import os.path``       -> {"os": "os"}
    ``from os import path``  -> {"path": "os.path"}
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                imports[alias.asname or root] = (
                    alias.name if alias.asname else root
                )
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def resolve_call(call: ast.Call, imports: dict[str, str]) -> str | None:
    """The fully qualified target of ``call``, when statically knowable.

    A bare builtin (``open(...)``) resolves to its own name unless the
    module rebound it via an import.
    """
    name = dotted_name(call.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    base = imports.get(head)
    if base is None:
        return name
    return f"{base}.{rest}" if rest else base


def handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Exception class names an ``except`` clause catches (last dotted part)."""
    if handler.type is None:
        return {"BaseException"}
    exprs = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    names = set()
    for expr in exprs:
        name = dotted_name(expr)
        if name:
            names.add(name.rsplit(".", 1)[-1])
    return names


def protected_by(node: ast.AST, catching: frozenset[str]) -> bool:
    """Is ``node`` inside the body of a try whose handlers catch one of
    ``catching``? (Being inside a handler or finally does not protect.)"""
    child = node
    for anc in ancestors(node):
        if isinstance(anc, ast.Try):
            in_body = any(child is stmt or _contains(stmt, child) for stmt in anc.body)
            if in_body and any(
                handler_names(h) & catching for h in anc.handlers
            ):
                return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Stop at the enclosing function: an outer function's try
            # does not wrap calls made when the inner one runs later.
            return False
        child = anc
    return False


def _contains(root: ast.AST, target: ast.AST) -> bool:
    return any(node is target for node in ast.walk(root))


class RuleContext:
    """Everything a rule sees about one module, plus the report sink."""

    def __init__(
        self,
        relpath: str,
        source: str,
        tree: ast.Module,
        config: AnalyzerConfig,
    ) -> None:
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        self.imports = build_import_map(tree)
        self.findings: list[Finding] = []
        self._suppressions = collect_suppressions(source)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        if is_suppressed(self._suppressions, line, rule_id):
            return
        self.findings.append(
            Finding(
                path=self.relpath,
                line=line,
                col=col,
                rule=rule_id,
                message=message,
                snippet=self.snippet(line),
            )
        )


class Rule:
    """Base class for reprolint rules.

    Subclasses set ``id`` / ``name`` / ``invariant`` and implement
    :meth:`check`. Registration (via :func:`register`) makes the rule
    discoverable by the analyzer and the CLI's ``--list-rules``.
    """

    id: str = ""
    name: str = ""
    #: One-line statement of the engine invariant the rule enforces.
    invariant: str = ""

    def check(self, ctx: RuleContext) -> None:
        raise NotImplementedError

    def report(self, ctx: RuleContext, node: ast.AST, message: str) -> None:
        ctx.report(self.id, node, message)


_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id}")
    _REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    # Importing the rules package populates the registry.
    import repro.analysis.rules  # noqa: F401

    return dict(_REGISTRY)


def iter_python_files(paths: list[str]):
    """Yield .py files under ``paths`` (files or directories), sorted."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        else:
            candidates = []
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                candidates.extend(
                    os.path.join(dirpath, f)
                    for f in sorted(filenames)
                    if f.endswith(".py")
                )
        for candidate in candidates:
            normal = os.path.normpath(candidate)
            if normal not in seen:
                seen.add(normal)
                yield normal


class Analyzer:
    """Run a set of rules over files or in-memory source."""

    def __init__(
        self,
        config: AnalyzerConfig | None = None,
        select: set[str] | None = None,
        ignore: set[str] | None = None,
    ) -> None:
        self.config = config or AnalyzerConfig.default()
        rules = all_rules()
        active = select if select is not None else set(rules)
        active -= ignore or set()
        unknown = active - set(rules)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        self.rules = [rules[rule_id]() for rule_id in sorted(active)]

    def check_source(self, source: str, relpath: str) -> list[Finding]:
        """Analyze one module given as text (the test fixtures' entry)."""
        relpath = relpath.replace(os.sep, "/")
        if is_skipped_file(source):
            return []
        try:
            tree = ast.parse(source)
        except SyntaxError as err:
            return [
                Finding(
                    path=relpath,
                    line=err.lineno or 1,
                    col=(err.offset or 0) + 1,
                    rule="RL000",
                    message=f"syntax error: {err.msg}",
                )
            ]
        attach_parents(tree)
        ctx = RuleContext(relpath, source, tree, self.config)
        for rule in self.rules:
            if self.config.rule(rule.id).applies_to(relpath):
                rule.check(ctx)
        return sorted(ctx.findings)

    def check_paths(self, paths: list[str], root: str | None = None) -> list[Finding]:
        """Analyze every python file under ``paths``.

        Paths in findings are reported relative to ``root`` (default:
        the current directory) so they match the committed baseline no
        matter where the CLI is invoked from.
        """
        root = root or os.getcwd()
        findings: list[Finding] = []
        for filepath in iter_python_files(paths):
            relpath = os.path.relpath(os.path.abspath(filepath), root)
            with open(filepath, encoding="utf-8") as handle:
                source = handle.read()
            findings.extend(self.check_source(source, relpath))
        return sorted(findings)
