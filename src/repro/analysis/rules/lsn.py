"""RL001 — LSN discipline.

LSNs are byte offsets, but *opaque* ones: the only literals with meaning
are ``NULL_LSN`` and ``FIRST_LSN``, defined once in ``wal/lsn.py``. A
raw integer compared to or assigned into an LSN-typed slot is either a
magic number that happens to work (``lsn == 0``) or a latent bug when
the log header layout changes (``lsn = 8``). Arithmetic on LSNs
(offsets, block math) is legitimate and not flagged.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.framework import Rule, register

#: Identifiers treated as LSN-typed: ``lsn``, ``split_lsn``,
#: ``prev_page_lsn``, ``from_lsn``... (suffix match on the last part).
_LSN_NAME = re.compile(r"(?:^|_)lsn$")


def _is_lsn_expr(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name):
        return bool(_LSN_NAME.search(expr.id))
    if isinstance(expr, ast.Attribute):
        return bool(_LSN_NAME.search(expr.attr))
    return False


def _int_literal(expr: ast.expr) -> int | None:
    if isinstance(expr, ast.Constant) and type(expr.value) is int:
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and isinstance(expr.op, ast.USub)
        and isinstance(expr.operand, ast.Constant)
        and type(expr.operand.value) is int
    ):
        return -expr.operand.value
    return None


def _lsn_name(expr: ast.expr) -> str:
    return expr.id if isinstance(expr, ast.Name) else expr.attr


@register
class LsnDiscipline(Rule):
    id = "RL001"
    name = "lsn-discipline"
    invariant = (
        "LSNs are opaque: raw integer literals may only meet LSN-typed "
        "values inside wal/lsn.py (use NULL_LSN / FIRST_LSN)."
    )

    def check(self, ctx) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                self._check_compare(ctx, node)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_binding(ctx, node, target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._check_binding(ctx, node, node.target, node.value)
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    self._check_keyword(ctx, node, keyword)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_defaults(ctx, node)

    def _flag(self, ctx, node, name: str, value: int) -> None:
        self.report(
            ctx,
            node,
            f"raw integer literal {value} bound to LSN-typed {name!r}; "
            f"use NULL_LSN/FIRST_LSN from repro.wal.lsn or a real LSN",
        )

    def _check_compare(self, ctx, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for left, right in zip(operands, operands[1:], strict=False):
            for lsn_side, other in ((left, right), (right, left)):
                value = _int_literal(other)
                if value is not None and _is_lsn_expr(lsn_side):
                    self.report(
                        ctx,
                        node,
                        f"LSN-typed {_lsn_name(lsn_side)!r} compared to raw "
                        f"integer literal {value}; use NULL_LSN/FIRST_LSN "
                        f"from repro.wal.lsn",
                    )

    def _check_binding(self, ctx, node, target: ast.expr, value: ast.expr) -> None:
        literal = _int_literal(value)
        if literal is not None and _is_lsn_expr(target):
            self._flag(ctx, node, _lsn_name(target), literal)

    def _check_keyword(self, ctx, node, keyword: ast.keyword) -> None:
        if keyword.arg is None or not _LSN_NAME.search(keyword.arg):
            return
        literal = _int_literal(keyword.value)
        if literal is not None:
            self._flag(ctx, keyword.value, keyword.arg, literal)

    def _check_defaults(self, ctx, node) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):],
            args.defaults,
            strict=True,
        ):
            self._check_default(ctx, arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults, strict=True):
            if default is not None:
                self._check_default(ctx, arg, default)

    def _check_default(self, ctx, arg: ast.arg, default: ast.expr) -> None:
        if not _LSN_NAME.search(arg.arg):
            return
        literal = _int_literal(default)
        if literal is not None:
            self._flag(ctx, default, arg.arg, literal)
