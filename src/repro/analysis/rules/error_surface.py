"""RL004 — error-surface discipline.

:class:`~repro.errors.LogTruncatedError` is a *storage-level* fact: an
LSN fell below the retention horizon. At the engine's public surface
that fact must arrive as :class:`~repro.errors.RetentionExceededError`
(naming the recovery options — archive restore, delayed replica), never
as the raw storage error; PR 1 fixed exactly this leak in snapshot
creation, and this rule generalizes the fix into a checked contract.

A public engine method may reach truncation-raising APIs (log reads on
a ``log``-named receiver, the split-resolution helpers) only inside a
``try`` whose handlers catch ``LogTruncatedError`` or an ancestor; it
may not raise or re-raise the error itself.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import (
    Rule,
    ancestors,
    dotted_name,
    handler_names,
    protected_by,
    register,
)


def _is_log_receiver(expr: ast.expr) -> bool:
    """``log.read(...)`` or ``db.log.read(...)`` — the receiver is a log."""
    return (isinstance(expr, ast.Name) and expr.id == "log") or (
        isinstance(expr, ast.Attribute) and expr.attr == "log"
    )


def _enclosing_public_method(node: ast.AST) -> str | None:
    """Name of the public function/method ``node`` executes in, if any.

    Nested (private-looking) helpers defined inside a public method are
    attributed to that method — their body runs under its contract.
    """
    chain = [
        anc for anc in ancestors(node)
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    if not chain:
        return None
    outermost = chain[-1]
    if outermost.name.startswith("_"):
        return None
    for anc in ancestors(outermost):
        if isinstance(anc, ast.ClassDef) and anc.name.startswith("_"):
            return None
    return outermost.name


@register
class ErrorSurfaceDiscipline(Rule):
    id = "RL004"
    name = "error-surface-discipline"
    invariant = (
        "LogTruncatedError never escapes an engine-level public method "
        "unwrapped; the surface speaks RetentionExceededError."
    )

    def check(self, ctx) -> None:
        options = ctx.config.rule(self.id).options
        log_methods = options.get("log_methods", frozenset())
        helpers = options.get("helpers", frozenset())
        handlers = options.get("handlers", frozenset({"LogTruncatedError"}))
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                self._check_raise(ctx, node)
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node, log_methods, helpers, handlers)

    def _check_raise(self, ctx, node: ast.Raise) -> None:
        method = _enclosing_public_method(node)
        if method is None:
            return
        if node.exc is not None:
            target = dotted_name(
                node.exc.func if isinstance(node.exc, ast.Call) else node.exc
            )
            if target and target.rsplit(".", 1)[-1] == "LogTruncatedError":
                self.report(
                    ctx,
                    node,
                    f"public method {method!r} raises LogTruncatedError; "
                    f"the engine surface must wrap it as "
                    f"RetentionExceededError",
                )
            return
        # Bare ``raise``: re-raising inside a LogTruncatedError handler
        # leaks the storage error through the public surface.
        for anc in ancestors(node):
            if isinstance(anc, ast.ExceptHandler):
                if "LogTruncatedError" in handler_names(anc):
                    self.report(
                        ctx,
                        node,
                        f"public method {method!r} re-raises a caught "
                        f"LogTruncatedError unwrapped; raise "
                        f"RetentionExceededError(...) from it instead",
                    )
                return
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return

    def _check_call(self, ctx, node, log_methods, helpers, handlers) -> None:
        func = node.func
        flagged = None
        if isinstance(func, ast.Attribute):
            if func.attr in log_methods and _is_log_receiver(func.value):
                flagged = f"log-manager {func.attr!r}"
            elif func.attr in helpers:
                flagged = f"split-resolution {func.attr!r}"
        elif isinstance(func, ast.Name) and func.id in helpers:
            flagged = f"split-resolution {func.id!r}"
        if flagged is None:
            return
        method = _enclosing_public_method(node)
        if method is None:
            return
        if not protected_by(node, frozenset(handlers)):
            self.report(
                ctx,
                node,
                f"public method {method!r} calls {flagged} outside a try "
                f"handling LogTruncatedError; a truncation would escape "
                f"the engine surface unwrapped",
            )
