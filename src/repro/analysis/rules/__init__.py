"""Rule modules. Importing this package registers every rule."""

from repro.analysis.rules import (  # noqa: F401
    determinism,
    error_surface,
    fault_handling,
    lsn,
    obs,
    priced_io,
    shared_state,
)
