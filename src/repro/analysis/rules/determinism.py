"""RL003 — replay determinism.

Replicas and restored copies converge with the primary byte-for-byte
because replay is a pure function of the log. Any wall-clock read or
unseeded randomness inside the engine breaks that: two replays of the
same log would diverge. The engine reads time from the
:class:`~repro.sim.clock.SimClock` only, and randomness from an
explicitly seeded ``random.Random``. Benchmarks that want *host*
elapsed time use :func:`repro.sim.clock.host_perf_counter` — the sim
layer owns the boundary to the real clock.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule, register, resolve_call


@register
class ReplayDeterminism(Rule):
    id = "RL003"
    name = "replay-determinism"
    invariant = (
        "No wall-clock reads or unseeded randomness outside the sim "
        "layer: replay must be a pure function of the log."
    )

    def check(self, ctx) -> None:
        options = ctx.config.rule(self.id).options
        banned = options.get("banned_calls", frozenset())
        rng_module = options.get("rng_module", "random")
        rng_allowed = options.get("rng_allowed", frozenset())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, ctx.imports)
            if target is None:
                continue
            if target in banned:
                self.report(
                    ctx,
                    node,
                    f"nondeterministic call {target!r}; engine time comes "
                    f"from SimClock (host timing for reports: "
                    f"repro.sim.clock.host_perf_counter)",
                )
                continue
            module, _, func = target.rpartition(".")
            if module == rng_module and func not in rng_allowed:
                self.report(
                    ctx,
                    node,
                    f"{target!r} drives the unseeded global RNG; use an "
                    f"explicitly seeded random.Random so replay and "
                    f"workloads are reproducible",
                )
