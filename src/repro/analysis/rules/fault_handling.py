"""RL007 — fault-handling discipline in the replication/archive paths.

Chaos hardening (PR 9) only works if faults stay *visible*: a broad
``except Exception:`` that neither re-raises, wraps into a typed error,
nor records the failure turns an injected fault — or a real torn frame —
into silent data divergence: the cursor looks healthy, the alerting
layer sees nothing, and the failure detector can never confirm what it
cannot observe.

Inside the replication and archive modules, any handler catching
``Exception``/``BaseException`` (including a bare ``except:``) must do
at least one of:

* ``raise`` (re-raise or wrap typed, e.g. ``ReplicationFaultError``);
* call a sanctioned fault recorder (``_note_failure``,
  ``note_apply_fault``, ``record_external``, ...) so the failure lands
  on the retry/backoff and alerting surfaces.

Narrow handlers (specific exception types) are out of scope — catching
what you expect is fine; swallowing *everything* silently is not.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule, dotted_name, handler_names, register

#: Handler names treated as "catches everything".
DEFAULT_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})

#: Calls that count as recording the fault (last dotted component).
DEFAULT_FAULT_RECORDERS = frozenset(
    {
        "_note_failure",
        "note_apply_fault",
        "record_external",
        "record_fault",
        "note_fault",
    }
)


@register
class FaultHandlingDiscipline(Rule):
    id = "RL007"
    name = "fault-handling"
    invariant = (
        "replication/archive code never swallows a broad exception "
        "silently: broad handlers re-raise, wrap typed, or record the fault"
    )

    def check(self, ctx) -> None:
        opts = ctx.config.rule(self.id).options
        broad = frozenset(opts.get("broad_handlers", DEFAULT_BROAD_HANDLERS))
        recorders = frozenset(opts.get("recorders", DEFAULT_FAULT_RECORDERS))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = handler_names(node) & broad
            if not caught:
                continue
            if _handles_fault(node, recorders):
                continue
            self.report(
                ctx,
                node,
                f"broad handler (except {'/'.join(sorted(caught))}) "
                f"swallows the fault: re-raise, wrap it typed "
                f"(ReplicationFaultError), or record it via one of "
                f"{sorted(recorders)}",
            )


def _handles_fault(handler: ast.ExceptHandler, recorders: frozenset) -> bool:
    """Does the handler body re-raise or call a sanctioned recorder?"""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name and name.rsplit(".", 1)[-1] in recorders:
                    return True
    return False
