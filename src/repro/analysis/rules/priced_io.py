"""RL002 — priced-I/O discipline.

The paper's cost figures (7–11) are only honest if *every* byte the
engine moves is charged to a simulated device. Inside the priced scope
(``core/``, ``wal/``, ``storage/``, ``archive/``) raw host I/O —
``open``, ``os.read``, directory walks — bypasses the cost model; the
one sanctioned boundary to the real filesystem is
:mod:`repro.sim.hostio`, whose callers (the on-disk page backend, the
archive's ``.seg`` persistence) charge their devices separately.

The second half of the discipline is PR 4's: chain-walk code must not
fall back to per-record raw reads (``read_bytes``) — discovery goes
through ``read_header`` and fetch through ``read_many`` so undo I/O
stays batched and the Figure 11 counters stay meaningful.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.analysis.framework import Rule, register, resolve_call


@register
class PricedIoDiscipline(Rule):
    id = "RL002"
    name = "priced-io-discipline"
    invariant = (
        "Inside core/wal/storage/archive every byte moves through "
        "SimDevice-priced APIs; raw host I/O lives only in "
        "repro.sim.hostio, and chain walks use read_header/read_many."
    )

    def check(self, ctx) -> None:
        options = ctx.config.rule(self.id).options
        banned = options.get("banned_calls", frozenset())
        walk_modules = options.get("chain_walk_modules", ())
        walk_banned = options.get("chain_walk_banned_methods", frozenset())
        in_chain_walk_scope = any(
            fnmatch(ctx.relpath, pattern) for pattern in walk_modules
        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, ctx.imports)
            if target in banned:
                self.report(
                    ctx,
                    node,
                    f"raw host I/O call {target!r} inside the priced-I/O "
                    f"scope; move bytes through SimDevice/FileManager/"
                    f"LogManager, or route host access via repro.sim.hostio",
                )
            elif (
                in_chain_walk_scope
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in walk_banned
            ):
                self.report(
                    ctx,
                    node,
                    f"per-record {node.func.attr!r} in chain-walk code; "
                    f"use read_header for chain discovery and read_many "
                    f"for coalesced record fetch",
                )
