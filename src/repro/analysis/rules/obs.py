"""RL006 — observability instrumentation discipline.

Timing and metric instrumentation goes through :mod:`repro.obs`: host
elapsed time via :func:`repro.obs.timing.host_timing` (or
:class:`~repro.obs.timing.HostTimer`), simulated latencies via registry
histograms, counters via the registry or the stats dataclasses it backs.
Bare ``host_perf_counter()`` start/stop deltas scattered through the
code are the thing the obs layer exists to replace: they bypass the
export surface (``SHOW METRICS``, ``metrics_snapshot``), every caller
reinvents the subtraction, and nothing ties the measurement to a name.
Only the obs layer itself and the sim layer (which owns the host-clock
boundary) may touch ``host_perf_counter`` directly.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule, register, resolve_call


@register
class ObsInstrumentation(Rule):
    id = "RL006"
    name = "obs-instrumentation"
    invariant = (
        "Timing instrumentation goes through repro.obs (host_timing / "
        "HostTimer / registry histograms); bare host_perf_counter() "
        "deltas belong only to the obs and sim layers."
    )

    def check(self, ctx) -> None:
        options = ctx.config.rule(self.id).options
        banned = options.get("banned_calls", frozenset())
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call(node, ctx.imports)
            if target is None:
                continue
            if target in banned:
                self.report(
                    ctx,
                    node,
                    f"bare host-clock read {target!r}; measure host "
                    f"elapsed time with repro.obs.timing.host_timing() "
                    f"(or HostTimer) so the measurement is named and "
                    f"registry-exportable",
                )
