"""RL005 — shared-state discipline.

The engine shares mutable structures across every session and standby:
the snapshot pool, the page version store, buffer-pool frames, the log
tail, retention pins, the archive's segment maps. Today the engine is
single-threaded; ROADMAP item 1 puts latches around these structures,
and this rule is the lint-side half of that contract. A registered
shared attribute may be mutated only

1. inside its owning module (the class's own methods), or
2. under a declared guard — lexically within ``with x.latch:`` /
   ``with x.lock:`` (or their underscore forms).

Entries flagged ``"latch": True`` are **strict**: the structure has its
latch now, so rule 1 no longer applies — every mutation, owner module
included, must sit lexically under the guard. The one exemption is the
constructor (``__init__`` / ``__new__`` assigning on ``self``): the
object is not yet reachable by other sessions there, and demanding a
self-latch before the latch attribute exists would be circular.

Everything else must go through a public method of the owner, which is
exactly the surface the latching refactor serializes. The registry
lives in :data:`repro.analysis.config.SHARED_STATE_REGISTRY`; flip an
entry to strict as its structure grows a latch.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Rule, ancestors, dotted_name, register

#: Method calls that mutate their receiver (``x._hints.clear()``).
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)


def _owned_here(relpath: str, owners: tuple[str, ...]) -> bool:
    path = relpath.replace("\\", "/")
    return any(path.endswith(owner) for owner in owners)


def _receiver_repr(expr: ast.expr) -> str:
    return dotted_name(expr) or "<expr>"


@register
class SharedStateDiscipline(Rule):
    id = "RL005"
    name = "shared-state-discipline"
    invariant = (
        "Engine-shared structures are mutated only by their owning "
        "module or under a declared guard (with x.latch:) — the "
        "lint-side contract for the concurrent-engine latching work."
    )

    def check(self, ctx) -> None:
        options = ctx.config.rule(self.id).options
        attr_owners = {
            entry["attr"]: entry["owners"]
            for entry in options.get("shared_state", ())
        }
        strict = frozenset(
            entry["attr"]
            for entry in options.get("shared_state", ())
            if entry.get("latch")
        )
        method_owners = {
            entry["method"]: entry["owners"]
            for entry in options.get("shared_methods", ())
        }
        guards = options.get("guard_names", frozenset())
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._check_target(
                        ctx, node, target, attr_owners, strict, guards
                    )
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                self._check_target(
                    ctx, node, node.target, attr_owners, strict, guards
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_target(
                        ctx, node, target, attr_owners, strict, guards
                    )
            elif isinstance(node, ast.Call):
                self._check_call(
                    ctx, node, attr_owners, strict, method_owners, guards
                )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _shared_attr(self, expr: ast.expr, attr_owners) -> ast.Attribute | None:
        """The registered shared attribute an assignment target touches.

        Handles ``x.attr = ...``, ``x.attr[k] = ...`` and ``del`` forms.
        """
        node = expr
        while isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute) and node.attr in attr_owners:
            return node
        return None

    def _under_guard(self, node: ast.AST, guards) -> bool:
        for anc in ancestors(node):
            if isinstance(anc, (ast.With, ast.AsyncWith)):
                for item in anc.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call):
                        expr = expr.func
                    if isinstance(expr, ast.Attribute) and expr.attr in guards:
                        return True
                    if isinstance(expr, ast.Name) and expr.id in guards:
                        return True
        return False

    def _in_ctor_on_self(self, node: ast.AST, attr: ast.Attribute) -> bool:
        """Is this a ``self.attr = ...`` inside ``__init__``/``__new__``?

        Constructor assignments predate sharing (no other session can
        reach the object yet), so strict entries exempt them.
        """
        if dotted_name(attr.value) != "self":
            return False
        for anc in ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc.name in ("__init__", "__new__")
        return False

    def _flag(self, ctx, node, attr: ast.Attribute, owners, what: str) -> None:
        receiver = _receiver_repr(attr.value)
        owner_list = ", ".join(owners)
        self.report(
            ctx,
            node,
            f"{what} of shared state {receiver}.{attr.attr!s} outside its "
            f"owning module ({owner_list}) and outside a declared guard; "
            f"go through a public method of the owner",
        )

    def _flag_strict(
        self, ctx, node, attr: ast.Attribute, what: str
    ) -> None:
        receiver = _receiver_repr(attr.value)
        self.report(
            ctx,
            node,
            f"{what} of latched shared state {receiver}.{attr.attr!s} "
            f"outside a declared guard; hold the structure's latch "
            f"(with x.latch:) around the mutation",
        )

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def _check_target(
        self, ctx, node, target, attr_owners, strict, guards
    ) -> None:
        attr = self._shared_attr(target, attr_owners)
        if attr is None:
            return
        owners = attr_owners[attr.attr]
        if self._under_guard(node, guards):
            return
        if attr.attr in strict:
            if not self._in_ctor_on_self(node, attr):
                self._flag_strict(ctx, node, attr, "mutation")
            return
        if _owned_here(ctx.relpath, owners):
            return
        self._flag(ctx, node, attr, owners, "mutation")

    def _check_call(
        self, ctx, node, attr_owners, strict, method_owners, guards
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        # x.<shared_attr>.append(...) and friends.
        if (
            func.attr in _MUTATORS
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in attr_owners
        ):
            owners = attr_owners[func.value.attr]
            if self._under_guard(node, guards):
                return
            if func.value.attr in strict:
                self._flag_strict(ctx, node, func.value, "mutating call")
                return
            if not _owned_here(ctx.relpath, owners):
                self._flag(ctx, node, func.value, owners, "mutating call")
            return
        # x._private_method(...) on a registered shared structure.
        if func.attr in method_owners:
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
                return
            owners = method_owners[func.attr]
            if _owned_here(ctx.relpath, owners) or self._under_guard(node, guards):
                return
            self.report(
                ctx,
                node,
                f"cross-object call of private {func.attr!r} (owned by "
                f"{', '.join(owners)}); use the owner's public API",
            )
