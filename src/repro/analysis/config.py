"""Per-rule configuration and this repository's default policy.

Every rule reads its path scope and domain registries from here, so the
policy — which modules own raw host I/O, which attributes are
engine-shared, which calls can raise past the retention horizon — is
data, not code. ROADMAP item 1 (the latching refactor) grows the
``shared_state`` registry instead of growing new rule code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch


@dataclass
class RuleConfig:
    """Scope and options for one rule."""

    enabled: bool = True
    #: fnmatch patterns over posix-style repo-relative paths.
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()
    options: dict = field(default_factory=dict)

    def applies_to(self, relpath: str) -> bool:
        if not self.enabled:
            return False
        path = relpath.replace("\\", "/")
        if not any(fnmatch(path, pat) for pat in self.include):
            return False
        return not any(fnmatch(path, pat) for pat in self.exclude)


#: Engine-shared mutable structures (RL005). ``attr`` names state whose
#: mutation is only legal inside one of the ``owners`` modules (matched
#: as a path suffix) or under a declared guard (``with x.latch:`` /
#: ``with x._latch:`` / ``.lock``). Entries with ``"latch": True`` are
#: **strict**: the structure has grown its latch, so every mutation —
#: owner module included — must sit lexically under the guard (the sole
#: exception is first assignment on ``self`` inside ``__init__`` /
#: ``__new__``, before the object is shared). This is the lint-side
#: contract for the concurrent-engine latching work (ROADMAP item 1).
SHARED_STATE_REGISTRY: tuple[dict, ...] = (
    # Retention pins: pooled splits, shipper cursors, archiver cursors.
    {"attr": "retention_pins", "owners": ("repro/engine/database.py",)},
    # Database metadata caches (boot record, table/tree handles,
    # memoized checkpoint chain) — replicas and restores must go through
    # Database.invalidate_caches()/reload_boot().
    {"attr": "_boot_cache", "owners": ("repro/engine/database.py",)},
    # (as-of snapshots carry their own table/tree caches, same names.)
    {
        "attr": "_table_cache",
        "owners": ("repro/engine/database.py", "repro/core/asof.py"),
    },
    {
        "attr": "_tree_cache",
        "owners": ("repro/engine/database.py", "repro/core/asof.py"),
    },
    {"attr": "_ckpt_chain_cache", "owners": ("repro/engine/database.py",)},
    # Allocation-map search hints (soft state, but still shared).
    {"attr": "_hints", "owners": ("repro/storage/allocation.py",)},
    # Buffer pool frames; as-of snapshots carry their own frame cache.
    {
        "attr": "_frames",
        "owners": ("repro/storage/buffer.py", "repro/core/asof.py"),
        "latch": True,
    },
    # The log tail: bytes, durable boundary, truncation point, block
    # cache, commit tracker.
    {"attr": "_data", "owners": ("repro/wal/log_manager.py",), "latch": True},
    {"attr": "_durable_end", "owners": ("repro/wal/log_manager.py",), "latch": True},
    {"attr": "_truncated_before", "owners": ("repro/wal/log_manager.py",), "latch": True},
    {"attr": "_last_commit_lsn", "owners": ("repro/wal/log_manager.py",), "latch": True},
    # Lock-manager table and declared waits (one per database).
    {"attr": "_table", "owners": ("repro/txn/locks.py",), "latch": True},
    {"attr": "_waits", "owners": ("repro/txn/locks.py",), "latch": True},
    # Snapshot pool entries and the version store's interval map.
    {"attr": "_entries", "owners": ("repro/core/snapshot_pool.py",), "latch": True},
    {"attr": "_orphans", "owners": ("repro/core/snapshot_pool.py",), "latch": True},
    {"attr": "_versions", "owners": ("repro/core/version_store.py",), "latch": True},
    # Shipper subscriptions and the archive store's segment/backup maps.
    {"attr": "_subs", "owners": ("repro/replication/shipper.py",)},
    {"attr": "_segments", "owners": ("repro/archive/store.py",)},
    {"attr": "_backups", "owners": ("repro/archive/store.py",)},
    # Observability: the metrics instrument table and the tracer's span
    # stack — engine code holds instrument handles and Span objects, it
    # never mutates the tables directly.
    {"attr": "_instruments", "owners": ("repro/obs/registry.py",), "latch": True},
    {"attr": "_span_stack", "owners": ("repro/obs/tracer.py",), "latch": True},
    # Monitoring: recorded series, alert condition states, and the
    # slow-query ring — read through the monitor/engine surfaces,
    # purged through remove_prefix on drop.
    {"attr": "_series", "owners": ("repro/obs/timeseries.py",), "latch": True},
    {"attr": "_conditions", "owners": ("repro/obs/alerts.py",), "latch": True},
    {"attr": "_slow_entries", "owners": ("repro/obs/slowlog.py",), "latch": True},
    # Chaos: the armed fault schedule and its deterministic event log
    # live in the injector; HA detection state in the detector; the HA
    # timeline is appended only through Engine._record_ha.
    {"attr": "_fault_rules", "owners": ("repro/chaos/injector.py",)},
    {"attr": "_fault_events", "owners": ("repro/chaos/injector.py",)},
    {"attr": "_ha_state", "owners": ("repro/chaos/detector.py",)},
    {"attr": "ha_events", "owners": ("repro/engine/engine.py",)},
)

#: Private methods of shared structures that outside modules must not
#: call — each has (or needs) a public wrapper on the owning class.
SHARED_METHOD_REGISTRY: tuple[dict, ...] = (
    {"method": "_load_boot", "owners": ("repro/engine/database.py",)},
    {"method": "_charge_read", "owners": ("repro/archive/store.py",)},
    {"method": "_charge_write", "owners": ("repro/archive/store.py",)},
    {"method": "_make_room", "owners": ("repro/storage/buffer.py",)},
    {"method": "_bootstrap", "owners": ("repro/engine/database.py",)},
)

#: Raw host-I/O entry points (RL002). Inside the priced-I/O scope every
#: byte must move through SimDevice/FileManager/LogManager; the one
#: sanctioned boundary to the real filesystem is repro.sim.hostio.
RAW_IO_CALLS: frozenset[str] = frozenset(
    {
        "open",
        "io.open",
        "io.FileIO",
        "os.open",
        "os.read",
        "os.write",
        "os.pread",
        "os.pwrite",
        "os.fdopen",
        "os.fsync",
        "os.truncate",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "os.removedirs",
        "os.listdir",
        "os.scandir",
        "os.stat",
        "os.path.exists",
        "os.path.getsize",
        "os.path.isfile",
        "os.path.isdir",
        "pathlib.Path",
    }
)

#: Nondeterministic call targets (RL003). Replay determinism is the
#: ground truth for replicas and restores; the only clock the engine may
#: read is the SimClock, and the only randomness a seeded Random. Host
#: timing for benchmark *reporting* goes through
#: repro.sim.clock.host_perf_counter (the sim layer owns the boundary).
NONDETERMINISTIC_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.sleep",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: The raw host-clock entry point the obs layer wraps (RL006). Host
#: elapsed time outside the obs/sim layers goes through
#: repro.obs.timing.host_timing()/HostTimer, never a bare
#: host_perf_counter() start/stop delta.
BARE_TIMING_CALLS: frozenset[str] = frozenset(
    {"repro.sim.clock.host_perf_counter"}
)

#: random-module functions that drive the *shared, unseeded* global RNG.
#: (``random.Random(seed)`` / ``random.SystemRandom`` construction is
#: allowed — the former is the sanctioned idiom.)
GLOBAL_RNG_MODULE = "random"
GLOBAL_RNG_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Calls that can raise LogTruncatedError (RL004): log-manager reads on
#: a ``log``-named receiver, plus the split-resolution helpers. A public
#: engine method reaching these must sit inside a try that catches the
#: error (or an ancestor) — the PR 1 bugfix, generalized into a checked
#: contract.
TRUNCATION_RAISING_LOG_METHODS: frozenset[str] = frozenset(
    {"read", "read_header", "read_many", "undo_fetch", "scan", "read_bytes"}
)
TRUNCATION_RAISING_HELPERS: frozenset[str] = frozenset(
    {"find_split_lsn", "resolve_split", "create_at_split", "checkpoint_chain"}
)
TRUNCATION_HANDLERS: frozenset[str] = frozenset(
    {"LogTruncatedError", "WalError", "ReproError", "Exception", "BaseException"}
)

#: Broad handlers RL007 polices in the replication/archive/chaos scope —
#: a handler this wide must re-raise, wrap typed, or record the fault;
#: silently swallowing it hides injected (and real) faults from the
#: retry, alerting and failure-detection layers.
BROAD_EXCEPTION_HANDLERS: frozenset[str] = frozenset(
    {"Exception", "BaseException"}
)

#: Calls RL007 accepts as "the fault was recorded" (matched on the last
#: dotted component of the call target).
FAULT_RECORDERS: frozenset[str] = frozenset(
    {
        "_note_failure",
        "note_apply_fault",
        "record_external",
        "record_fault",
        "note_fault",
    }
)


def _default_rules() -> dict[str, RuleConfig]:
    return {
        "RL001": RuleConfig(
            include=("src/repro/*",),
            exclude=("src/repro/wal/lsn.py",),
        ),
        "RL002": RuleConfig(
            include=(
                "src/repro/core/*",
                "src/repro/wal/*",
                "src/repro/storage/*",
                "src/repro/archive/*",
            ),
            options={
                "banned_calls": RAW_IO_CALLS,
                # Per-record raw log reads are banned in chain-walk code:
                # discovery goes through read_header, fetch through
                # read_many (the batched PR 4 path).
                "chain_walk_modules": ("src/repro/core/*",),
                "chain_walk_banned_methods": frozenset({"read_bytes"}),
            },
        ),
        "RL003": RuleConfig(
            include=("src/repro/*", "tests/*"),
            exclude=("src/repro/sim/clock.py",),
            options={
                "banned_calls": NONDETERMINISTIC_CALLS,
                "rng_module": GLOBAL_RNG_MODULE,
                "rng_allowed": GLOBAL_RNG_ALLOWED,
            },
        ),
        "RL004": RuleConfig(
            include=("src/repro/engine/engine.py",),
            options={
                "log_methods": TRUNCATION_RAISING_LOG_METHODS,
                "helpers": TRUNCATION_RAISING_HELPERS,
                "handlers": TRUNCATION_HANDLERS,
            },
        ),
        "RL005": RuleConfig(
            include=("src/repro/*",),
            options={
                "shared_state": SHARED_STATE_REGISTRY,
                "shared_methods": SHARED_METHOD_REGISTRY,
                "guard_names": frozenset({"latch", "lock", "_latch", "_lock"}),
            },
        ),
        "RL006": RuleConfig(
            include=("src/repro/*", "tests/*"),
            exclude=("src/repro/obs/*", "src/repro/sim/*"),
            options={"banned_calls": BARE_TIMING_CALLS},
        ),
        "RL007": RuleConfig(
            include=(
                "src/repro/replication/*",
                "src/repro/archive/*",
                "src/repro/chaos/*",
            ),
            options={
                "broad_handlers": BROAD_EXCEPTION_HANDLERS,
                "recorders": FAULT_RECORDERS,
            },
        ),
    }


@dataclass
class AnalyzerConfig:
    """The full analyzer policy: one :class:`RuleConfig` per rule id."""

    rules: dict[str, RuleConfig] = field(default_factory=_default_rules)

    def rule(self, rule_id: str) -> RuleConfig:
        return self.rules.setdefault(rule_id, RuleConfig())

    @classmethod
    def default(cls) -> "AnalyzerConfig":
        return cls()
