"""Metadata catalog: schemas and system tables.

The catalog is stored in ordinary B-trees (``sys_objects``, ``sys_columns``)
exactly because the paper leans on that property: metadata pages are unwound
by the same page-oriented undo as data pages, which is what makes a dropped
table's schema visible again through an as-of snapshot.
"""

from repro.catalog.catalog import Catalog, ObjectInfo
from repro.catalog.schema import Column, ColumnType, TableSchema

__all__ = ["Column", "ColumnType", "TableSchema", "Catalog", "ObjectInfo"]
