"""Table schemas: typed columns and primary keys.

A :class:`TableSchema` drives the row codec (how tuples serialize onto
pages) and the B-tree (which prefix of the row is the clustering key).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ColumnType(enum.Enum):
    """Supported column types and their storage classes."""

    INT = "int"        # 64-bit signed integer
    FLOAT = "float"    # IEEE-754 double
    STR = "str"        # variable-length UTF-8 (bounded by max_len)
    BYTES = "bytes"    # variable-length binary
    BOOL = "bool"      # single byte

    @property
    def is_varlen(self) -> bool:
        return self in (ColumnType.STR, ColumnType.BYTES)

    @property
    def fixed_size(self) -> int:
        """On-page size of a non-null fixed-width value."""
        if self is ColumnType.INT or self is ColumnType.FLOAT:
            return 8
        if self is ColumnType.BOOL:
            return 1
        raise ValueError(f"{self} is variable length")


_PYTHON_TYPES = {
    ColumnType.INT: int,
    ColumnType.FLOAT: float,
    ColumnType.STR: str,
    ColumnType.BYTES: bytes,
    ColumnType.BOOL: bool,
}


@dataclass(frozen=True)
class Column:
    """One column of a table."""

    name: str
    ctype: ColumnType
    nullable: bool = False
    #: Maximum encoded length for var-len types (bytes of UTF-8 / binary).
    max_len: int = 255

    def check_value(self, value: object) -> None:
        """Validate a Python value against this column; raise ``TypeError``
        or ``ValueError`` on mismatch."""
        if value is None:
            if not self.nullable:
                raise ValueError(f"column {self.name!r} is NOT NULL")
            return
        expected = _PYTHON_TYPES[self.ctype]
        # bool is a subclass of int; keep the two distinct.
        if self.ctype is ColumnType.INT and isinstance(value, bool):
            raise TypeError(f"column {self.name!r}: bool given for INT")
        if self.ctype is ColumnType.FLOAT and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable floats
        if not isinstance(value, expected):
            raise TypeError(
                f"column {self.name!r} expects {expected.__name__}, "
                f"got {type(value).__name__}"
            )
        if self.ctype is ColumnType.STR and len(value.encode("utf-8")) > self.max_len:
            raise ValueError(f"column {self.name!r}: string exceeds max_len {self.max_len}")
        if self.ctype is ColumnType.BYTES and len(value) > self.max_len:
            raise ValueError(f"column {self.name!r}: bytes exceed max_len {self.max_len}")
        if self.ctype is ColumnType.INT and not -(2**63) <= value < 2**63:
            raise ValueError(f"column {self.name!r}: integer out of 64-bit range")


@dataclass(frozen=True)
class TableSchema:
    """A named table: ordered columns plus a primary-key column list.

    The primary key columns must be a set of non-nullable columns; rows are
    clustered on the key tuple in primary-key column order.
    """

    name: str
    columns: tuple[Column, ...]
    key: tuple[str, ...]
    _index_by_name: dict = field(default_factory=dict, compare=False, repr=False)

    def __init__(self, name: str, columns, key) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", tuple(columns))
        object.__setattr__(self, "key", tuple(key))
        object.__setattr__(
            self,
            "_index_by_name",
            {col.name: pos for pos, col in enumerate(self.columns)},
        )
        self._validate()

    def _validate(self) -> None:
        if not self.name:
            raise ValueError("table name must be non-empty")
        if not self.columns:
            raise ValueError(f"table {self.name!r} needs at least one column")
        if len(self._index_by_name) != len(self.columns):
            raise ValueError(f"table {self.name!r} has duplicate column names")
        if not self.key:
            raise ValueError(f"table {self.name!r} needs a primary key")
        for key_col in self.key:
            if key_col not in self._index_by_name:
                raise ValueError(f"key column {key_col!r} not in table {self.name!r}")
            if self.columns[self._index_by_name[key_col]].nullable:
                raise ValueError(f"key column {key_col!r} must be NOT NULL")
        if len(set(self.key)) != len(self.key):
            raise ValueError(f"table {self.name!r} repeats a key column")

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(col.name for col in self.columns)

    @property
    def key_positions(self) -> tuple[int, ...]:
        """Positions of the key columns within the row tuple."""
        return tuple(self._index_by_name[k] for k in self.key)

    def position_of(self, column_name: str) -> int:
        """Index of ``column_name`` in the row tuple; raises ``KeyError``."""
        return self._index_by_name[column_name]

    def column(self, column_name: str) -> Column:
        return self.columns[self.position_of(column_name)]

    def key_of(self, row: tuple) -> tuple:
        """Extract the primary-key tuple from a full row tuple."""
        return tuple(row[pos] for pos in self.key_positions)

    def check_row(self, row: tuple) -> None:
        """Validate arity and every value of ``row``."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(row)}"
            )
        for col, value in zip(self.columns, row, strict=True):
            col.check_value(value)

    def row_from_dict(self, values: dict) -> tuple:
        """Build a row tuple from a column-name→value mapping.

        Missing nullable columns default to ``None``; missing non-nullable
        columns raise ``ValueError``.
        """
        unknown = set(values) - set(self._index_by_name)
        if unknown:
            raise ValueError(f"unknown columns for {self.name!r}: {sorted(unknown)}")
        row = []
        for col in self.columns:
            if col.name in values:
                row.append(values[col.name])
            elif col.nullable:
                row.append(None)
            else:
                raise ValueError(f"missing NOT NULL column {col.name!r}")
        return tuple(row)

    def row_as_dict(self, row: tuple) -> dict:
        """Render a row tuple as a column-name→value dict."""
        return dict(zip(self.column_names, row, strict=True))
