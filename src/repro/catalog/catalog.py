"""The metadata catalog, stored in ordinary B-trees.

``sys_objects`` and ``sys_columns`` live at fixed root pages and describe
every object including themselves. Because their pages are modified
through the same logged path as user data, an as-of snapshot unwinds the
catalog with zero metadata-specific machinery — which is exactly how the
paper's dropped-table recovery workflow can still *see* the dropped
table's schema in the past (sections 1 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.access.btree import BTree, BTreeServices
from repro.access.heap import Heap
from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.errors import CatalogError
from repro.storage.page import PageType

#: Fixed page ids (page 0 = boot, page 1 = first allocation map).
SYS_OBJECTS_ROOT = 2
SYS_COLUMNS_ROOT = 3

SYS_OBJECTS_ID = 1
SYS_COLUMNS_ID = 2
#: First object id handed to user tables.
FIRST_USER_OBJECT_ID = 100

KIND_SYSTEM = "system"
KIND_TABLE = "table"
KIND_HEAP = "heap"

SYS_OBJECTS_SCHEMA = TableSchema(
    "sys_objects",
    (
        Column("object_id", ColumnType.INT),
        Column("name", ColumnType.STR, max_len=128),
        Column("kind", ColumnType.STR, max_len=16),
        Column("root_page", ColumnType.INT),
    ),
    key=("object_id",),
)

SYS_COLUMNS_SCHEMA = TableSchema(
    "sys_columns",
    (
        Column("object_id", ColumnType.INT),
        Column("pos", ColumnType.INT),
        Column("name", ColumnType.STR, max_len=128),
        Column("ctype", ColumnType.STR, max_len=8),
        Column("max_len", ColumnType.INT),
        Column("nullable", ColumnType.BOOL),
        Column("is_key", ColumnType.BOOL),
        Column("key_pos", ColumnType.INT),
    ),
    key=("object_id", "pos"),
)


@dataclass(frozen=True)
class ObjectInfo:
    """One catalog entry."""

    object_id: int
    name: str
    kind: str
    root_page: int

    @property
    def is_heap(self) -> bool:
        return self.kind == KIND_HEAP


class Catalog:
    """Catalog accessor bound to a page-access context.

    The same class serves the primary database (read-write, ``services``
    carrying a logged modifier and allocator) and snapshots / restored
    databases (read-only services); mutation methods simply require an
    allocator.
    """

    def __init__(self, services: BTreeServices) -> None:
        self.services = services
        self.sys_objects = BTree(
            object_id=SYS_OBJECTS_ID,
            root_page_id=SYS_OBJECTS_ROOT,
            schema=SYS_OBJECTS_SCHEMA,
            services=services,
        )
        self.sys_columns = BTree(
            object_id=SYS_COLUMNS_ID,
            root_page_id=SYS_COLUMNS_ROOT,
            schema=SYS_COLUMNS_SCHEMA,
            services=services,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def get_by_id(self, object_id: int) -> ObjectInfo | None:
        row = self.sys_objects.get((object_id,))
        if row is None:
            return None
        return ObjectInfo(*row)

    def get_by_name(self, name: str) -> ObjectInfo | None:
        for row in self.sys_objects.scan():
            if row[1] == name:
                return ObjectInfo(*row)
        return None

    def require(self, name: str) -> ObjectInfo:
        info = self.get_by_name(name)
        if info is None:
            raise CatalogError(f"no such table: {name!r}")
        return info

    def list_objects(self, *, include_system: bool = False) -> list[ObjectInfo]:
        objects = [ObjectInfo(*row) for row in self.sys_objects.scan()]
        if not include_system:
            objects = [obj for obj in objects if obj.kind != KIND_SYSTEM]
        return objects

    def load_schema(self, info: ObjectInfo) -> TableSchema:
        """Rebuild a TableSchema from the object's sys_columns rows."""
        if info.object_id == SYS_OBJECTS_ID:
            return SYS_OBJECTS_SCHEMA
        if info.object_id == SYS_COLUMNS_ID:
            return SYS_COLUMNS_SCHEMA
        columns: list[Column] = []
        keyed: list[tuple[int, str]] = []
        lo = (info.object_id, -(2**62))
        hi = (info.object_id, 2**62)
        for row in self.sys_columns.scan(lo, hi):
            _oid, _pos, name, ctype, max_len, nullable, is_key, key_pos = row
            columns.append(
                Column(
                    name=name,
                    ctype=ColumnType(ctype),
                    nullable=nullable,
                    max_len=max_len,
                )
            )
            if is_key:
                keyed.append((key_pos, name))
        if not columns:
            raise CatalogError(
                f"object {info.name!r} has no column metadata"
            )
        keyed.sort()
        return TableSchema(info.name, columns, tuple(name for _pos, name in keyed))

    def next_object_id(self) -> int:
        highest = FIRST_USER_OBJECT_ID - 1
        for row in self.sys_objects.scan():
            highest = max(highest, row[0])
        return highest + 1

    # ------------------------------------------------------------------
    # DDL (primary database only)
    # ------------------------------------------------------------------

    def create_table(self, txn, schema: TableSchema, *, kind: str = KIND_TABLE) -> ObjectInfo:
        """Create a table (or heap): allocate + format its root, record
        metadata. Fully transactional — rollback reverses everything."""
        if self.services.alloc is None:
            raise CatalogError("catalog is read-only in this context")
        if self.get_by_name(schema.name) is not None:
            raise CatalogError(f"table {schema.name!r} already exists")
        object_id = self.next_object_id()
        root_pid, was_ever = self.services.alloc.allocate(txn, None)
        guard = (
            self.services.fetch(root_pid)
            if was_ever
            else self.services.fetch(root_pid, create=True)
        )
        with guard:
            self.services.modifier.format_page(
                txn,
                guard,
                PageType.HEAP if kind == KIND_HEAP else PageType.BTREE,
                object_id=object_id,
                level=0,
                was_ever_allocated=was_ever,
            )
        self.sys_objects.insert(txn, (object_id, schema.name, kind, root_pid))
        key_order = {name: pos for pos, name in enumerate(schema.key)}
        for pos, col in enumerate(schema.columns):
            self.sys_columns.insert(
                txn,
                (
                    object_id,
                    pos,
                    col.name,
                    col.ctype.value,
                    col.max_len,
                    col.nullable,
                    col.name in key_order,
                    key_order.get(col.name, 0),
                ),
            )
        return ObjectInfo(object_id, schema.name, kind, root_pid)

    def drop_table(self, txn, name: str) -> ObjectInfo:
        """Drop a table: delete its metadata and deallocate its pages.

        The pages' *content* stays on disk untouched — the paper's design
        point: nothing is logged about the data at drop time, and the
        preformat record preserves history only if/when pages get reused.
        """
        if self.services.alloc is None:
            raise CatalogError("catalog is read-only in this context")
        info = self.require(name)
        if info.kind == KIND_SYSTEM:
            raise CatalogError(f"cannot drop system table {name!r}")
        schema = self.load_schema(info)
        if info.is_heap:
            accessor = Heap(
                object_id=info.object_id,
                first_page_id=info.root_page,
                schema=schema,
                services=self.services,
            )
        else:
            accessor = BTree(
                object_id=info.object_id,
                root_page_id=info.root_page,
                schema=schema,
                services=self.services,
            )
        pages = accessor.page_ids()
        self.sys_objects.delete(txn, (info.object_id,))
        lo = (info.object_id, -(2**62))
        hi = (info.object_id, 2**62)
        for row in list(self.sys_columns.scan(lo, hi)):
            self.sys_columns.delete(txn, (row[0], row[1]))
        for pid in pages:
            self.services.alloc.deallocate(txn, pid)
        return info
