"""Failure detection on top of the alert engine.

The :class:`FailureDetector` subscribes (via ``engine.on_alert``) to the
built-in ship-health rules — ``repl.ship_errors`` (consecutive send
failures past the configured streak) and ``repl.ship_stall`` (the
absence rule over ``repl.ship.*.progress_t``, which goes stale the
moment a subscription stops making progress) — and runs a small
deterministic state machine per primary::

    healthy --alert firing--> suspect --held confirm_s & still
        unhealthy--> down           (on_down fires exactly once)
            \\--progress resumed--> healthy   ("recovered")

Suspicion alone never triggers failover: a transient blip raises the
alert, the shipper's backoff retries heal it, the alert clears, and the
detector demotes the suspect back to healthy. Only a suspicion that
*stays* unhealthy for ``confirm_s`` sim-seconds — re-checked against
live shipper error state and the primary's crash flag at confirmation
time — is confirmed down. Every transition lands on the engine's
``ha_events`` timeline, so two same-seed chaos runs produce
byte-identical detection histories.
"""

from __future__ import annotations

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"

#: Alert-rule name glob the detector listens on.
SHIP_ALERT_PATTERN = "repl.ship_*"

_ARCHIVE_PREFIX = "~archive:"


class FailureDetector:
    """Suspect/confirm failure detection for every primary on an engine."""

    def __init__(self, engine, *, confirm_s: float = 2.0, on_down=None) -> None:
        if confirm_s < 0:
            raise ValueError("confirm_s must be >= 0")
        self.engine = engine
        self.confirm_s = confirm_s
        #: ``on_down(db_name)`` runs once per confirmed-down primary.
        self.on_down = on_down
        self._ha_state: dict[str, dict] = {}
        engine.on_alert(SHIP_ALERT_PATTERN, self._on_alert)

    # ------------------------------------------------------------------

    def state(self, db_name: str) -> str:
        entry = self._ha_state.get(db_name)
        return entry["state"] if entry is not None else HEALTHY

    def states(self) -> dict[str, str]:
        return {name: st["state"] for name, st in sorted(self._ha_state.items())}

    # ------------------------------------------------------------------

    def _primary_of(self, metric: str) -> str | None:
        """Map ``repl.ship.<subscriber>.<gauge>`` to the subscriber's
        primary database (``None`` for the synthetic no-match instance,
        whose "metric" is the rule's glob)."""
        parts = metric.split(".")
        if len(parts) != 4 or parts[:2] != ["repl", "ship"]:
            return None
        subscriber = parts[2]
        if subscriber.startswith(_ARCHIVE_PREFIX):
            name = subscriber[len(_ARCHIVE_PREFIX):]
            return name if name in self.engine.databases else None
        replica = self.engine.replicas.get(subscriber)
        if replica is not None:
            return replica.primary.name
        return None

    def _on_alert(self, event: dict) -> None:
        primary = self._primary_of(event["metric"])
        if primary is None:
            return
        entry = self._ha_state.setdefault(
            primary, {"state": HEALTHY, "since": 0.0}
        )
        if event["event"] == "firing" and entry["state"] == HEALTHY:
            entry["state"] = SUSPECT
            entry["since"] = event["t"]
            self.engine._record_ha(
                "suspect",
                primary,
                f"alert {event['rule']} firing on {event['metric']}",
            )
        elif event["event"] == "cleared" and entry["state"] == SUSPECT:
            if not self._unhealthy(primary):
                entry["state"] = HEALTHY
                self.engine._record_ha(
                    "recovered", primary, f"alert {event['rule']} cleared"
                )

    def _unhealthy(self, db_name: str) -> bool:
        """Live liveness check at confirmation time: crashed flag, or
        every ship subscription failing."""
        db = self.engine.databases.get(db_name)
        if db is None:
            return False  # already failed over or dropped
        if db.crashed:
            return True
        errors = self.engine.shipper_errors(db_name)
        return bool(errors) and all(streak > 0 for streak in errors.values())

    # ------------------------------------------------------------------

    def tick(self) -> None:
        """Confirm (or demote) held suspicions; the engine calls this
        from ``replication_tick``."""
        now = self.engine.env.clock.now()
        for name in sorted(self._ha_state):
            entry = self._ha_state[name]
            if entry["state"] != SUSPECT:
                continue
            if now - entry["since"] < self.confirm_s:
                continue
            if self._unhealthy(name):
                entry["state"] = DOWN
                self.engine._record_ha(
                    "confirmed_down",
                    name,
                    f"suspect held {self.confirm_s:g}s without progress",
                )
                if self.on_down is not None:
                    self.on_down(name)
            else:
                entry["state"] = HEALTHY
                self.engine._record_ha(
                    "recovered", name, "progress resumed before confirmation"
                )

    def __repr__(self) -> str:
        return f"FailureDetector(confirm_s={self.confirm_s}, {self.states()})"
