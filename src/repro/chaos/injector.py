"""Deterministic, seeded fault injection at named engine boundaries.

Every cross-component hop in the engine — shipper poll/send, stream
frame transfer, redo apply, archiver receive/flush, sim-device I/O,
backup/restore page copy — calls :meth:`FaultInjector.hit` with a stable
*injection point* name before doing its work. The injector matches the
hit against its armed :class:`FaultRule` schedule and either lets it
pass, raises a :class:`~repro.errors.FaultInjectedError`, stalls the sim
clock, or hands back a torn/corrupted payload.

Determinism is the whole point: the injector draws randomness only from
its own seeded ``random.Random`` and reads time only from the
:class:`~repro.sim.clock.SimClock`, so the same seed against the same
workload produces a byte-identical fault schedule (:meth:`events`) —
which is what lets CI diff two chaos runs and lets a failure be replayed
exactly. This is the recoverability-check shape "Guaranteeing
Recoverability via Partially Constrained Transaction Logs" formalizes:
the injector perturbs every boundary while the engine's cursors and CRCs
must keep the log's committed prefix intact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fnmatch import fnmatchcase

from repro.errors import FaultInjectedError

#: Fault kinds a rule may inject.
#:
#: * ``transient`` — the operation raises; a retry succeeds.
#: * ``partition`` — like ``transient`` but modelling an unreachable
#:   peer; rules typically use a time ``window`` to hold the link down.
#: * ``stall``     — the operation succeeds after ``latency_s`` of
#:   injected sim-clock latency (slow disk, congested link).
#: * ``torn``      — the payload is truncated mid-frame (torn write).
#: * ``corrupt``   — one payload byte is flipped (bit rot; CRC must
#:   catch it downstream).
#: * ``crash``     — the component dies mid-operation; in-flight work is
#:   lost but — the sim having no real processes — the component comes
#:   back and the operation is retried from its durable cursor. At the
#:   special point ``"primary"`` a crash rule instead halts the whole
#:   primary database (see :meth:`FaultInjector.due_crashes`).
FAULT_KINDS = ("transient", "partition", "stall", "torn", "corrupt", "crash")

#: The injection-point catalog (see ``docs/ha.md``). Rules may glob over
#: these names; unknown points are rejected at arm time so a typo'd rule
#: cannot silently never fire.
INJECTION_POINTS: dict[str, str] = {
    "repl.ship.poll": "shipper poll entry, once per tick per primary",
    "repl.ship.send": "per-subscriber frame send (target = subscriber)",
    "repl.stream.frame": "frame in flight; torn/corrupt payload faults",
    "repl.apply": "replica redo apply (target = replica)",
    "archive.receive": "archiver frame receive (target = archiver name)",
    "archive.flush": "archive store segment flush (target = db name)",
    "device.read": "sim-device read path (target = device profile)",
    "device.write": "sim-device write path (target = device profile)",
    "backup.page_copy": "backup page copy (target = db name)",
    "restore.page_copy": "restore page copy (target = db name)",
    "primary": "whole-primary halt; crash rules only (target = db name)",
}


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: where, what kind, when, and how often.

    ``point`` and ``target`` are fnmatch globs over the injection-point
    name and the per-hit target (subscriber/replica/db/device name). A
    rule fires when its time condition holds — a one-shot ``at_s``, an
    active ``window``, or always if neither is set — AND its probability
    draw passes (``probability >= 1`` means every eligible hit).
    ``max_hits`` bounds total firings; ``at_s`` implies ``max_hits=1``
    unless set explicitly.
    """

    point: str
    kind: str
    target: str = "*"
    probability: float = 1.0
    at_s: float | None = None
    window: tuple[float, float] | None = None
    latency_s: float = 0.01
    max_hits: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if not any(
            fnmatchcase(name, self.point) for name in INJECTION_POINTS
        ):
            raise ValueError(
                f"fault point glob {self.point!r} matches no known "
                f"injection point; see INJECTION_POINTS"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.window is not None and self.window[0] >= self.window[1]:
            raise ValueError("window must be (start, end) with start < end")


class _ArmedRule:
    """A rule plus its mutable firing state."""

    __slots__ = ("rule", "hits")

    def __init__(self, rule: FaultRule) -> None:
        self.rule = rule
        self.hits = 0

    @property
    def budget(self) -> int | None:
        if self.rule.max_hits is not None:
            return self.rule.max_hits
        if self.rule.at_s is not None:
            return 1  # a scheduled one-shot
        return None


class FaultInjector:
    """The seeded fault schedule and its deterministic event log."""

    def __init__(self, clock, seed: int = 0) -> None:
        self.clock = clock
        self.seed = seed
        self.rng = random.Random(seed)
        self.enabled = True
        self._fault_rules: list[_ArmedRule] = []
        self._fault_events: list[dict] = []

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self._fault_rules.append(_ArmedRule(rule))
        return rule

    def schedule_crash(self, db_name: str, at_s: float) -> FaultRule:
        """Arm a one-shot whole-primary halt at sim time ``at_s``."""
        return self.add_rule(
            FaultRule(point="primary", kind="crash", target=db_name, at_s=at_s)
        )

    def rules(self) -> list[FaultRule]:
        return [armed.rule for armed in self._fault_rules]

    # ------------------------------------------------------------------
    # The hot path: called at every injection point
    # ------------------------------------------------------------------

    def hit(self, point: str, target: str = "", payload=None):
        """Evaluate one boundary crossing; returns the (possibly
        mutated) payload.

        May raise :class:`FaultInjectedError` (transient/partition/crash
        kinds), advance the sim clock (stall), or return a torn/corrupted
        copy of ``payload``. Raising kinds fire at most one fault per
        hit; payload/stall kinds stack.
        """
        if not self.enabled or not self._fault_rules:
            return payload
        now = self.clock.now()
        for armed in self._fault_rules:
            rule = armed.rule
            if rule.point == "primary":
                continue  # whole-primary halts go through due_crashes()
            if not fnmatchcase(point, rule.point):
                continue
            if not fnmatchcase(target, rule.target):
                continue
            if not self._due(armed, now):
                continue
            armed.hits += 1
            if rule.kind == "stall":
                self._record(now, point, rule.kind, target,
                             f"+{rule.latency_s:g}s latency")
                self.clock.advance(rule.latency_s)
                continue
            if rule.kind == "torn" and payload:
                keep = max(1, len(payload) // 2)
                self._record(now, point, rule.kind, target,
                             f"payload torn at byte {keep}/{len(payload)}")
                payload = payload[:keep]
                continue
            if rule.kind == "corrupt" and payload:
                pos = self.rng.randrange(len(payload))
                self._record(now, point, rule.kind, target,
                             f"byte {pos} flipped")
                mutated = bytearray(payload)
                mutated[pos] ^= 0xFF
                payload = bytes(mutated)
                continue
            # transient / partition / crash: the operation dies here.
            self._record(now, point, rule.kind, target, "operation failed")
            raise FaultInjectedError(
                f"injected {rule.kind} fault at {point} "
                f"(target {target!r}, t={now:g})",
                point=point,
                kind=rule.kind,
                target=target,
                transient=True,
            )
        return payload

    def due_crashes(self, now: float) -> list[str]:
        """Targets of ``point="primary"`` crash rules whose time has
        come; each fires once. The engine polls this at tick start and
        halts the named primaries."""
        targets: list[str] = []
        for armed in self._fault_rules:
            rule = armed.rule
            if rule.point != "primary" or rule.kind != "crash":
                continue
            if not self._due(armed, now):
                continue
            armed.hits += 1
            self._record(now, "primary", "crash", rule.target,
                         "primary halted")
            targets.append(rule.target)
        return targets

    def _due(self, armed: _ArmedRule, now: float) -> bool:
        rule = armed.rule
        budget = armed.budget
        if budget is not None and armed.hits >= budget:
            return False
        if rule.at_s is not None and now < rule.at_s:
            return False
        if rule.window is not None and not (
            rule.window[0] <= now < rule.window[1]
        ):
            return False
        if rule.probability >= 1.0:
            return True
        return self.rng.random() < rule.probability

    # ------------------------------------------------------------------
    # The fault log
    # ------------------------------------------------------------------

    def _record(
        self, now: float, point: str, kind: str, target: str, detail: str
    ) -> None:
        self._fault_events.append(
            {
                "seq": len(self._fault_events),
                "t": now,
                "point": point,
                "kind": kind,
                "target": target,
                "detail": detail,
            }
        )

    def record_external(self, point: str, kind: str, target: str,
                        detail: str) -> None:
        """Let engine code append a non-injected event (e.g. a failover
        decision) onto the same deterministic timeline."""
        self._record(self.clock.now(), point, kind, target, detail)

    def events(self) -> list[dict]:
        """The fault log, in firing order (stable dict rows, suitable
        for ``json.dumps`` determinism diffs and ``SHOW FAULTS``)."""
        return [dict(event) for event in self._fault_events]

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, rules={len(self._fault_rules)}, "
            f"events={len(self._fault_events)})"
        )
