"""Exponential-backoff retry policy for replication/archive boundaries.

One tiny, dependency-free knob object shared by the shipper's
per-subscriber retry loop and the engine's per-replica apply retry: a
failed boundary operation schedules its next attempt ``delay(streak)``
sim-seconds out, doubling per consecutive failure up to a cap. Pure
arithmetic over the sim clock — no sleeping, no threads — so retries are
as deterministic as everything else in the sim.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``base_delay_s * multiplier**(streak-1)``,
    capped at ``max_delay_s``."""

    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")

    def delay(self, streak: int) -> float:
        """Backoff before attempt ``streak + 1`` (``streak`` >= 1 is the
        number of consecutive failures so far)."""
        if streak < 1:
            return 0.0
        return min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** (streak - 1),
        )
