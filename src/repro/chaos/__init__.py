"""Deterministic chaos: seeded fault injection and the HA machinery it tests.

The package has two halves that meet in the engine:

- **Injection** (:mod:`repro.chaos.injector`): a :class:`FaultInjector`
  holds seeded :class:`FaultRule` schedules against named injection
  points at every cross-component boundary (shipper poll/send, stream
  frame, redo apply, archiver receive/flush, device read/write,
  backup/restore page copies, primary crash). Same seed + same rules +
  same workload → byte-identical fault event log.

- **Survival** (:mod:`repro.chaos.retry`, :mod:`~repro.chaos.detector`,
  :mod:`~repro.chaos.failover`): :class:`RetryPolicy` backs the
  shipper/apply exponential backoff, :class:`FailureDetector` turns
  alert-engine signals into suspect → confirmed-down verdicts, and
  :class:`FailoverCoordinator` promotes the most-caught-up healthy
  replica when a primary is confirmed dead.

See ``docs/ha.md`` for the fault model, the injection-point catalog, and
the failover state machine.
"""

from repro.chaos.detector import FailureDetector
from repro.chaos.failover import FailoverCoordinator
from repro.chaos.injector import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultInjector,
    FaultRule,
)
from repro.chaos.retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "FailoverCoordinator",
    "FailureDetector",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
]
