"""Automatic failover: promote the most-caught-up replica on primary death.

The :class:`FailoverCoordinator` owns a :class:`FailureDetector` and acts
on its ``confirmed_down`` verdicts: it asks the engine to fail over —
promote the most-caught-up healthy replica of the dead primary, re-point
every surviving shipper subscription, archiver, and read-offload route at
the new primary, and decommission the corpse. The winner choice and every
re-pointing step live in :meth:`Engine.failover_to_replica`; this class
only sequences detection → decision → action deterministically and makes
the action idempotent (one failover per dead primary, ever).
"""

from __future__ import annotations

from repro.chaos.detector import FailureDetector
from repro.errors import ReplicationError


class FailoverCoordinator:
    """Detector + one-shot failover action per confirmed-down primary."""

    def __init__(self, engine, *, confirm_s: float = 2.0) -> None:
        self.engine = engine
        #: Dead primary name -> promoted survivor name.
        self.completed: dict[str, str] = {}
        self.detector = FailureDetector(
            engine, confirm_s=confirm_s, on_down=self._failover
        )

    def tick(self) -> None:
        """Advance detection; the engine calls this from replication_tick."""
        self.detector.tick()

    def _failover(self, db_name: str) -> None:
        if db_name in self.completed:
            return
        try:
            promoted = self.engine.failover_to_replica(db_name)
        except ReplicationError as err:
            # No surviving replica (or promotion refused): record the
            # stranding so the operator timeline shows why the database
            # stayed down — there is nothing automatic left to do.
            self.engine._record_ha("failover_failed", db_name, str(err))
            return
        self.completed[db_name] = promoted.name

    def __repr__(self) -> str:
        return (
            f"FailoverCoordinator(confirm_s={self.detector.confirm_s}, "
            f"completed={self.completed})"
        )
