"""Deterministic simulated wall clock.

Every timestamped artifact in the engine — commit log records, checkpoint
records, retention horizons, benchmark timings — reads this clock instead of
the host's. Devices (:mod:`repro.sim.device`) advance it as they serve I/O,
and workloads advance it to model think time, so "minutes of history"
in the paper's figures map to simulated minutes here, reproducibly.
"""

from __future__ import annotations

import threading
import time
from datetime import datetime, timedelta, timezone

#: Simulated epoch: timestamps render as dates near the paper's publication.
SIM_EPOCH = datetime(2012, 3, 22, 12, 0, 0, tzinfo=timezone.utc)


def host_perf_counter() -> float:
    """Real (host) monotonic seconds, for benchmark *reporting* only.

    Engine code never reads the host clock — replay determinism depends
    on it (reprolint rule RL003 enforces this). The sim layer owns the
    boundary to the real world, so tooling that wants to report how long
    a run took on the host goes through this single function.
    """
    return time.perf_counter()


class SimClock:
    """A monotonically advancing simulated clock.

    The clock value is a float number of seconds since an arbitrary origin
    (0.0 by default). :meth:`to_datetime` / :meth:`from_datetime` convert to
    human-readable timestamps anchored at :data:`SIM_EPOCH`, which is what
    the SQL surface's ``AS OF '2012-03-22 ...'`` literals use.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        # Leaf lock: several sessions race the clock forward (devices,
        # think time). It guards only the read-modify-write below and is
        # never held while calling anything else.
        self._lock = threading.Lock()

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} (< 0)")
        with self._lock:
            self._now += seconds
            return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to ``timestamp`` if it is in the future.

        Moving to a past timestamp is a no-op (the clock never goes
        backwards); this makes it safe for several actors to race toward
        the same deadline.
        """
        with self._lock:
            if timestamp > self._now:
                self._now = timestamp
            return self._now

    def to_datetime(self, timestamp: float | None = None) -> datetime:
        """Render a simulated timestamp as an absolute UTC datetime."""
        if timestamp is None:
            timestamp = self._now
        return SIM_EPOCH + timedelta(seconds=timestamp)

    @staticmethod
    def from_datetime(moment: datetime) -> float:
        """Convert an absolute datetime back to simulated seconds."""
        if moment.tzinfo is None:
            moment = moment.replace(tzinfo=timezone.utc)
        return (moment - SIM_EPOCH).total_seconds()

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
