"""Simulated execution environment: wall clock, storage devices, counters.

The paper's evaluation (section 6) ran on a physical testbed (SAS-10K
spindles and SLC SSDs). This package is the substitution for that hardware:
a deterministic simulated clock plus per-device timing models that charge
seek latency and transfer time for every I/O the engine issues. Benchmarks
report *simulated* seconds, which reproduce the shape of the paper's
figures because those figures are I/O bound.
"""

from repro.sim.clock import SimClock
from repro.sim.device import (
    SAS_10K,
    SLC_SSD,
    ZERO_COST,
    DeviceProfile,
    SimDevice,
)
from repro.sim.iostats import IoStats

__all__ = [
    "SimClock",
    "DeviceProfile",
    "SimDevice",
    "IoStats",
    "SAS_10K",
    "SLC_SSD",
    "ZERO_COST",
]
