"""Engine-wide I/O and activity counters.

A single :class:`IoStats` instance is threaded through the storage, WAL and
snapshot layers. Figure 11 of the paper ("estimated number of undo IOs") is
read directly off these counters; the other figures are derived from the
simulated time the devices charge while the counters tick.

Since the observability layer landed, the attribute API here is a thin
shim over the env-wide :class:`~repro.obs.registry.MetricsRegistry`:
:meth:`IoStats.bind_registry` (called by :class:`~repro.config.SimEnv`)
registers every field as a backed ``io.<name>`` counter, so the registry
reads and resets the very same storage the hot paths bump. A *bound*
sheet's :meth:`reset` delegates to ``registry.reset()`` — one call clears
the io counters, the ad-hoc extras, **and** every subsystem stats object
registered over the same registry (pool, version store, shipper, replica,
archiver) — closing the gap where ``env.stats.reset()`` zeroed
``version_store_*`` mirrors but left the store's own counters ticking.

Concurrency: individual ``+=`` bumps from different sessions are benign
under the GIL for *reporting* counters (a lost increment skews a report,
never corrupts engine state), but multi-counter **views** must not tear
mid-operation — so :meth:`snapshot`, :meth:`delta`, :meth:`as_dict`,
:meth:`bump` on ad-hoc extras, and the unbound :meth:`reset` serialize
on an internal leaf lock (``_lock``; nothing is called while holding
it, so it can never participate in a latch-order cycle).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from functools import partial


@dataclass
class IoStats:
    """Monotone counters for everything the engine does that costs I/O.

    Counters are plain integers (bytes counters suffixed ``_bytes``).
    Use :meth:`snapshot` + :meth:`delta` to meter a region of execution::

        before = stats.snapshot()
        ... run a query ...
        spent = stats.delta(before)
        print(spent.undo_log_reads)
    """

    # Data-file traffic (primary database files).
    page_reads: int = 0
    page_writes: int = 0
    page_read_bytes: int = 0
    page_write_bytes: int = 0

    # Log traffic.
    log_flushes: int = 0
    log_write_bytes: int = 0
    log_records: int = 0
    #: Random log reads issued by page-oriented undo (Figure 11's metric).
    #: With the batched chain walk one coalesced span counts as one read.
    undo_log_reads: int = 0
    #: Undo-path log record fetches served from the log block cache.
    undo_log_cache_hits: int = 0
    #: Header-only (sector-sized) random reads issued by chain discovery.
    undo_header_reads: int = 0
    #: Log blocks absorbed into a coalesced span beyond its first block —
    #: random reads the batched walk turned into sequential transfer.
    undo_reads_coalesced: int = 0
    #: Log records physically undone by PreparePageAsOf.
    undo_records_applied: int = 0
    #: Full page images applied to skip log regions during undo.
    undo_images_applied: int = 0
    #: Sequential log reads (recovery scans, log backups, roll-forward).
    log_scan_reads: int = 0
    log_scan_bytes: int = 0

    # Logging-extension record production (Figure 5's breakdown).
    preformat_records: int = 0
    preformat_bytes: int = 0
    page_image_records: int = 0
    page_image_bytes: int = 0
    clr_undo_bytes: int = 0
    smo_delete_undo_bytes: int = 0

    # Snapshot side-file traffic.
    sparse_reads: int = 0
    sparse_writes: int = 0
    sparse_bytes: int = 0

    # Cross-snapshot page version store (interval-keyed prepared pages).
    version_store_hits: int = 0
    version_store_misses: int = 0
    version_store_publishes: int = 0
    version_store_evictions: int = 0
    version_store_invalidations: int = 0

    # Backup/restore traffic.
    backup_read_bytes: int = 0
    backup_write_bytes: int = 0

    # Archive-tier traffic (continuous log archiving + backup chains).
    archive_write_bytes: int = 0
    archive_read_bytes: int = 0
    archive_segments_written: int = 0

    # Engine activity.
    transactions_committed: int = 0
    transactions_aborted: int = 0
    checkpoints_taken: int = 0
    pages_prepared_asof: int = 0
    buffer_evictions: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    deadlocks: int = 0
    lock_waits: int = 0

    _extra: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        # Not a dataclass field: the lock must stay out of ``fields()``
        # iteration, comparisons, and serialized views.
        self._lock = threading.Lock()

    def bind_registry(self, registry) -> None:
        """Expose every counter through ``registry`` as ``io.<name>``.

        The registry's counters are *backed* by this object's fields —
        no double bookkeeping — and the ad-hoc ``_extra`` counters join
        snapshots through a provider. After binding, :meth:`reset`
        delegates to ``registry.reset()``.
        """
        self._registry = registry
        for spec in fields(self):
            if spec.name == "_extra":
                continue
            registry.backed_counter(
                f"io.{spec.name}",
                read=partial(getattr, self, spec.name),
                write=partial(setattr, self, spec.name),
            )
        registry.add_provider(
            lambda: {f"io.{key}": value for key, value in self._extra.items()}
        )
        registry.add_reset_hook(self._extra.clear)

    def bump(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` by ``amount`` (creating ad-hoc counters)."""
        if hasattr(self, counter) and not counter.startswith("_"):
            setattr(self, counter, getattr(self, counter) + amount)
        else:
            with self._lock:
                self._extra[counter] = self._extra.get(counter, 0) + amount

    def get(self, counter: str) -> int:
        """Read a counter by name (0 for unknown ad-hoc counters)."""
        if hasattr(self, counter) and not counter.startswith("_"):
            return getattr(self, counter)
        return self._extra.get(counter, 0)

    def snapshot(self) -> "IoStats":
        """A frozen copy of the current counter values."""
        copy = IoStats()
        with self._lock:
            for spec in fields(self):
                if spec.name == "_extra":
                    continue
                setattr(copy, spec.name, getattr(self, spec.name))
            copy._extra = dict(self._extra)
        return copy

    def delta(self, since: "IoStats") -> "IoStats":
        """Counter-wise difference ``self - since``."""
        diff = IoStats()
        with self._lock:
            for spec in fields(self):
                if spec.name == "_extra":
                    continue
                setattr(
                    diff,
                    spec.name,
                    getattr(self, spec.name) - getattr(since, spec.name),
                )
            keys = set(self._extra) | set(since._extra)
            diff._extra = {
                key: self._extra.get(key, 0) - since._extra.get(key, 0)
                for key in keys
            }
        return diff

    def as_dict(self) -> dict:
        """All counters (including ad-hoc ones) as a plain dict."""
        with self._lock:
            result = {
                spec.name: getattr(self, spec.name)
                for spec in fields(self)
                if spec.name != "_extra"
            }
            result.update(self._extra)
            return result

    def reset(self) -> None:
        """Zero every counter in place.

        When bound to a registry (the normal, in-``SimEnv`` case) this
        resets the *whole registry* — the ``io.*`` fields here, the
        ad-hoc extras, and every subsystem stats object (pool, version
        store, shipper, replica, archiver) registered over it — so one
        reset really clears all engine counters.
        """
        registry = getattr(self, "_registry", None)
        if registry is not None:
            registry.reset()
            return
        with self._lock:
            for spec in fields(self):
                if spec.name == "_extra":
                    continue
                setattr(self, spec.name, 0)
            self._extra.clear()
