"""The sanctioned host-filesystem boundary.

Everything inside the priced-I/O scope (``core/``, ``wal/``,
``storage/``, ``archive/``) moves bytes through simulated devices so the
paper's cost figures stay honest; the few places that must also touch
the *real* filesystem — the on-disk page backend, the archive tier's
``.seg`` persistence — do it through these helpers. Keeping raw
``open``/``os`` access in one module makes the discipline checkable:
reprolint rule RL002 flags raw host I/O anywhere else in the scope.

Callers remain responsible for charging their simulated device for the
logical transfer; these helpers only perform the host-side effect.
"""

from __future__ import annotations

import os


def create_or_open(path: str):
    """Open ``path`` read-write, creating it when absent (page backend)."""
    flags = "r+b" if os.path.exists(path) else "w+b"
    return open(path, flags)


def fsync(fileobj) -> None:
    """Flush python buffers and force the host file durable."""
    fileobj.flush()
    os.fsync(fileobj.fileno())


def ensure_directory(path: str) -> None:
    os.makedirs(path, exist_ok=True)


def write_blob(path: str, blob: bytes) -> None:
    """Atomically-enough persist one immutable blob (archive segments)."""
    with open(path, "wb") as handle:
        handle.write(blob)


def read_blob(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()
