"""Storage device timing models (the paper's SAS-10K and SLC-SSD media).

Each :class:`SimDevice` wraps a :class:`DeviceProfile` and a shared
:class:`~repro.sim.clock.SimClock`. Serving an I/O advances the clock by
``latency + size / bandwidth``, so simulated end-to-end times emerge from
the exact sequence of I/Os the engine issues — random log reads during
page-oriented undo stall on rotating media and barely register on SSD,
which is precisely the SAS/SSD contrast in Figures 7-10.

Profiles are calibrated to the paper's hardware (section 6): 146 GB 2.5"
10K-RPM SAS disks and 32 GB SLC SSDs, using publicly documented
characteristics of that hardware generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.iostats import IoStats


@dataclass(frozen=True)
class DeviceProfile:
    """Timing characteristics of a storage medium.

    Bandwidths are bytes/second; latencies are seconds per operation.
    Sequential operations pay ``seq_latency_s`` once per call (modeling the
    request overhead of a large streaming I/O) plus transfer time; random
    operations pay the per-op random latency plus transfer time.
    """

    name: str
    seq_read_bw: float
    seq_write_bw: float
    rand_read_latency_s: float
    rand_write_latency_s: float
    seq_latency_s: float = 0.0002

    def seq_read_time(self, nbytes: int) -> float:
        """Seconds to stream-read ``nbytes``."""
        return self.seq_latency_s + nbytes / self.seq_read_bw

    def seq_write_time(self, nbytes: int) -> float:
        """Seconds to stream-write ``nbytes``."""
        return self.seq_latency_s + nbytes / self.seq_write_bw

    def rand_read_time(self, nbytes: int) -> float:
        """Seconds for one random read of ``nbytes``."""
        return self.rand_read_latency_s + nbytes / self.seq_read_bw

    def rand_write_time(self, nbytes: int) -> float:
        """Seconds for one random write of ``nbytes``."""
        return self.rand_write_latency_s + nbytes / self.seq_write_bw


#: 10K-RPM 2.5" SAS spindle: ~3 ms seek + 3 ms rotational delay, ~120 MB/s.
SAS_10K = DeviceProfile(
    name="sas-10k",
    seq_read_bw=120e6,
    seq_write_bw=110e6,
    rand_read_latency_s=0.0062,
    rand_write_latency_s=0.0068,
)

#: SLC SSD of the 2011 generation: ~0.1 ms reads, ~0.25 ms writes, ~220 MB/s.
SLC_SSD = DeviceProfile(
    name="slc-ssd",
    seq_read_bw=220e6,
    seq_write_bw=180e6,
    rand_read_latency_s=0.00012,
    rand_write_latency_s=0.00025,
    seq_latency_s=0.00005,
)

#: Free I/O — used by unit tests that assert logic, not timing.
ZERO_COST = DeviceProfile(
    name="zero-cost",
    seq_read_bw=float("inf"),
    seq_write_bw=float("inf"),
    rand_read_latency_s=0.0,
    rand_write_latency_s=0.0,
    seq_latency_s=0.0,
)


class SimDevice:
    """A device instance bound to a clock: serving I/O advances the clock.

    ``busy_seconds`` accumulates pure device time, which the concurrent
    experiment (section 6.3) uses to attribute throughput loss to as-of
    query traffic sharing the media with the OLTP workload.
    """

    def __init__(
        self,
        profile: DeviceProfile,
        clock: SimClock,
        stats: IoStats | None = None,
    ) -> None:
        self.profile = profile
        self.clock = clock
        self.stats = stats if stats is not None else IoStats()
        self.busy_seconds = 0.0
        self.ops = 0
        #: Optional chaos injector (engine.enable_chaos pokes this in).
        #: Device points inject *stalls only* — degraded media slows I/O
        #: down; it does not raise into the middle of the page layer.
        self.chaos = None

    def _charge(self, seconds: float) -> float:
        self.clock.advance(seconds)
        self.busy_seconds += seconds
        self.ops += 1
        return seconds

    def _inject(self, op: str) -> None:
        if self.chaos is not None:
            self.chaos.hit(f"device.{op}", target=self.profile.name)

    def read_random(self, nbytes: int) -> float:
        """Charge one random read; returns seconds spent."""
        self._inject("read")
        return self._charge(self.profile.rand_read_time(nbytes))

    def write_random(self, nbytes: int) -> float:
        """Charge one random write; returns seconds spent."""
        self._inject("write")
        return self._charge(self.profile.rand_write_time(nbytes))

    def read_seq(self, nbytes: int) -> float:
        """Charge one sequential (streaming) read; returns seconds spent."""
        self._inject("read")
        return self._charge(self.profile.seq_read_time(nbytes))

    def write_seq(self, nbytes: int) -> float:
        """Charge one sequential (streaming) write; returns seconds spent."""
        self._inject("write")
        return self._charge(self.profile.seq_write_time(nbytes))

    def write_seq_async(self, nbytes: int) -> float:
        """Submit a sequential write that drains in the background.

        The caller waits only for the submission latency; the transfer
        time accrues as device *utilization* (``busy_seconds``) without
        stalling the clock. This models group-committed log writes: the
        paper observes throughput tracks the number of log records, not
        their size, because the sequential bandwidth "is easily
        sustainable" — a claim checkable here as busy_seconds staying
        below wall time.
        """
        self._inject("write")
        self.busy_seconds += nbytes / self.profile.seq_write_bw
        return self._charge(self.profile.seq_latency_s)

    def __repr__(self) -> str:
        return (
            f"SimDevice({self.profile.name}, ops={self.ops}, "
            f"busy={self.busy_seconds:.3f}s)"
        )
