"""SQL tokenizer."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


KEYWORDS = {
    "SELECT", "FROM", "WHERE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "DROP", "TABLE", "DATABASE", "SNAPSHOT", "OF", "AS",
    "PRIMARY", "KEY", "NOT", "NULL", "AND", "OR", "IS", "TRUE", "FALSE",
    "BEGIN", "COMMIT", "ROLLBACK", "CHECKPOINT", "USE", "SHOW", "TABLES",
    "SAVEPOINT", "TO",
    "ALTER", "UNDO_INTERVAL", "HOURS", "MINUTES", "SECONDS",
    "INT", "INTEGER", "BIGINT", "FLOAT", "DOUBLE", "REAL", "VARCHAR",
    "TEXT", "BOOLEAN", "BOOL", "BYTES", "HEAP",
    "COUNT", "SUM", "AVG", "MIN", "MAX", "SNAPSHOTS",
}

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/")
_PUNCT = "(),.;"


@dataclass(frozen=True)
class Token:
    ttype: TokenType
    value: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.ttype is TokenType.KEYWORD and self.value == word

    def __repr__(self) -> str:
        return f"Token({self.ttype.value}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Split SQL text into tokens; raises SqlSyntaxError on bad input."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if text.startswith("--", pos):
            newline = text.find("\n", pos)
            pos = length if newline == -1 else newline + 1
            continue
        if ch == "'":
            end = pos + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlSyntaxError(f"unterminated string at {pos}")
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append(text[pos + 1 : end + 1])
                        pos = end + 1
                        end = pos + 1
                        continue
                    break
                end += 1
            chunks.append(text[pos + 1 : end])
            tokens.append(Token(TokenType.STRING, "".join(chunks).replace("''", "'"), pos))
            pos = end + 1
            continue
        if ch.isdigit() or (ch == "." and pos + 1 < length and text[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            while end < length and (text[end].isdigit() or (text[end] == "." and not seen_dot)):
                if text[end] == ".":
                    # A dot not followed by a digit is punctuation
                    # (qualified name), not a decimal point.
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token(TokenType.NUMBER, text[pos:end], pos))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, pos))
            else:
                tokens.append(Token(TokenType.IDENT, word, pos))
            pos = end
            continue
        matched = False
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(TokenType.OPERATOR, op, pos))
                pos += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, pos))
            pos += 1
            continue
        raise SqlSyntaxError(f"unexpected character {ch!r} at position {pos}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens
