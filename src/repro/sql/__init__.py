"""A small SQL dialect: the paper's application surface.

Covers the statements the paper's workflows use — snapshot DDL
(``CREATE DATABASE ... AS SNAPSHOT OF ... AS OF '...'``), retention
configuration (``ALTER DATABASE ... SET UNDO_INTERVAL = 24 HOURS``),
and the ``INSERT ... SELECT`` reconcile step of dropped-table recovery —
plus enough general DML/queries to drive examples end to end.

Point-in-time queries are also available inline, with no snapshot DDL::

    SELECT * FROM [db.]table AS OF '<time>' [WHERE ...]

The ``AS OF`` qualifier (an ISO timestamp string or simulated-seconds
number) routes the scan through an ephemeral snapshot leased from the
engine's :class:`~repro.core.snapshot_pool.SnapshotPool`: consecutive
queries at the same point share one snapshot and its prepared pages, and
the reconcile step collapses to
``INSERT INTO t SELECT * FROM t AS OF '<time>'``. ``AS OF`` sources are
read-only and require a live database (a named snapshot is already a
fixed point in time).
"""

from repro.sql.executor import Result, Session

__all__ = ["Session", "Result"]
