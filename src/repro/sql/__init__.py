"""A small SQL dialect: the paper's application surface.

Covers the statements the paper's workflows use — snapshot DDL
(``CREATE DATABASE ... AS SNAPSHOT OF ... AS OF '...'``), retention
configuration (``ALTER DATABASE ... SET UNDO_INTERVAL = 24 HOURS``),
and the ``INSERT ... SELECT`` reconcile step of dropped-table recovery —
plus enough general DML/queries to drive examples end to end.
"""

from repro.sql.executor import Result, Session

__all__ = ["Session", "Result"]
