"""Recursive-descent SQL parser producing dataclass statement nodes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import Column, ColumnType
from repro.errors import SqlSyntaxError
from repro.sql.lexer import Token, TokenType, tokenize


# ---------------------------------------------------------------------------
# Expression nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class Unary:
    op: str
    operand: object


@dataclass(frozen=True)
class Binary:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class IsNull:
    operand: object
    negated: bool


@dataclass(frozen=True)
class Aggregate:
    func: str            # COUNT/SUM/AVG/MIN/MAX
    arg: object | None   # None for COUNT(*)


STAR = object()


# ---------------------------------------------------------------------------
# Statement nodes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TableRef:
    """``name`` or ``database.name`` (snapshots are databases here too).

    ``as_of`` carries an inline point-in-time qualifier
    (``FROM t AS OF '<time>'``): an ISO timestamp string or a simulated-
    seconds number. Only SELECT sources may carry one — writes through a
    past view are rejected.
    """

    name: str
    database: str | None = None
    as_of: str | float | None = None


@dataclass(frozen=True)
class Select:
    items: tuple          # of (expr, alias|None) or (STAR, None)
    table: TableRef
    where: object | None = None
    order_by: tuple = ()  # of (column_name, ascending)
    limit: int | None = None


@dataclass(frozen=True)
class Insert:
    table: TableRef
    columns: tuple
    rows: tuple = ()               # literal rows (VALUES)
    source: Select | None = None   # INSERT ... SELECT


@dataclass(frozen=True)
class Update:
    table: TableRef
    assignments: tuple    # of (column, expr)
    where: object | None


@dataclass(frozen=True)
class Delete:
    table: TableRef
    where: object | None


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple        # of Column
    key: tuple
    heap: bool = False


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class CreateSnapshot:
    name: str
    source: str
    as_of: str | None     # None = copy-on-write snapshot of now


@dataclass(frozen=True)
class CreateDatabase:
    name: str


@dataclass(frozen=True)
class DropDatabase:
    name: str


@dataclass(frozen=True)
class AlterUndoInterval:
    database: str
    seconds: float


@dataclass(frozen=True)
class BackupDatabase:
    """``BACKUP DATABASE <name> [FULL]``.

    Archives a backup chained onto the newest archived chain (the first
    backup — or ``FULL`` — starts a new full baseline) and enables
    continuous log archiving for the database.
    """

    name: str
    full: bool = False


@dataclass(frozen=True)
class RestoreDatabase:
    """``RESTORE DATABASE <src> AS OF '<time>' [AS <new_name>]``.

    Materializes an archive-backed read-only copy of ``source`` as of the
    given time — reachable even past the retention horizon.
    """

    source: str
    as_of: str | float
    new_name: str | None = None


@dataclass(frozen=True)
class TxnControl:
    action: str           # BEGIN/COMMIT/ROLLBACK
    savepoint: str | None = None  # SAVEPOINT <n> / ROLLBACK TO <n>


@dataclass(frozen=True)
class Checkpoint:
    pass


@dataclass(frozen=True)
class Use:
    """``USE <name>`` or ``USE <db> AS OF '<time>'``.

    With ``as_of`` the session pins a pooled point-in-time view of the
    database: every following unqualified read runs against that one
    split until the next ``USE`` (or session close) releases it.
    """

    name: str
    as_of: str | float | None = None


@dataclass(frozen=True)
class Show:
    """``SHOW TABLES`` / ``SHOW SNAPSHOTS`` / ``SHOW METRICS [LIKE '<glob>']``.

    ``like`` (METRICS only) filters metric names with an fnmatch-style
    glob, e.g. ``SHOW METRICS LIKE 'pool.*'``.
    """

    what: str             # TABLES / SNAPSHOTS / METRICS
    like: str | None = None


@dataclass(frozen=True)
class Trace:
    """``TRACE <select>``: run the query inside a span trace and return
    the rendered span tree (one line per span, with per-span simulated
    elapsed time and I/O-counter deltas) instead of the query's rows."""

    statement: Select


_TYPE_MAP = {
    "INT": ColumnType.INT,
    "INTEGER": ColumnType.INT,
    "BIGINT": ColumnType.INT,
    "FLOAT": ColumnType.FLOAT,
    "DOUBLE": ColumnType.FLOAT,
    "REAL": ColumnType.FLOAT,
    "VARCHAR": ColumnType.STR,
    "TEXT": ColumnType.STR,
    "BOOLEAN": ColumnType.BOOL,
    "BOOL": ColumnType.BOOL,
    "BYTES": ColumnType.BYTES,
}

_AGGREGATES = {"COUNT", "SUM", "AVG", "MIN", "MAX"}

_UNIT_SECONDS = {"HOURS": 3600.0, "MINUTES": 60.0, "SECONDS": 1.0}


class Parser:
    """One-statement-at-a-time recursive descent parser."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.ttype is not TokenType.END:
            self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(f"{message} (near {token.value!r} at {token.position})")

    def accept_keyword(self, *words: str) -> bool:
        token = self.peek()
        if token.ttype is TokenType.KEYWORD and token.value in words:
            self.advance()
            return True
        return False

    def accept_word(self, word: str) -> bool:
        """Accept a *contextual* keyword: a word with meaning only in one
        position (``BACKUP``, ``RESTORE``, ``FULL``), lexed as a plain
        identifier so it stays usable as a table or column name."""
        token = self.peek()
        if token.ttype is TokenType.IDENT and token.value.upper() == word:
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_punct(self, ch: str) -> bool:
        token = self.peek()
        if token.ttype is TokenType.PUNCT and token.value == ch:
            self.advance()
            return True
        return False

    def expect_punct(self, ch: str) -> None:
        if not self.accept_punct(ch):
            raise self.error(f"expected {ch!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.ttype is TokenType.IDENT:
            self.advance()
            return token.value
        # Allow non-reserved keywords as identifiers where unambiguous.
        if token.ttype is TokenType.KEYWORD and token.value in _TYPE_MAP:
            self.advance()
            return token.value.lower()
        raise self.error("expected identifier")

    def expect_number(self) -> float:
        token = self.peek()
        if token.ttype is not TokenType.NUMBER:
            raise self.error("expected number")
        self.advance()
        return float(token.value)

    def expect_string(self) -> str:
        token = self.peek()
        if token.ttype is not TokenType.STRING:
            raise self.error("expected string literal")
        self.advance()
        return token.value

    # -- statements -------------------------------------------------------

    def parse_statement(self):
        token = self.peek()
        if token.ttype is TokenType.IDENT and token.value.upper() in (
            "BACKUP",
            "RESTORE",
            "TRACE",
        ):
            # Contextual statement words: only reserved in this position.
            if self.accept_word("TRACE"):
                statement = self.parse_select()
                return Trace(statement)
            if self.accept_word("BACKUP"):
                self.expect_keyword("DATABASE")
                name = self.expect_ident()
                return BackupDatabase(name, full=self.accept_word("FULL"))
            self.accept_word("RESTORE")
            self.expect_keyword("DATABASE")
            source = self.expect_ident()
            self.expect_keyword("AS")
            self.expect_keyword("OF")
            as_of = self._parse_as_of_value()
            new_name = None
            if self.accept_keyword("AS"):
                new_name = self.expect_ident()
            return RestoreDatabase(source, as_of, new_name)
        if token.ttype is not TokenType.KEYWORD:
            raise self.error("expected a statement")
        word = token.value
        if word == "SELECT":
            return self.parse_select()
        if word == "INSERT":
            return self.parse_insert()
        if word == "UPDATE":
            return self.parse_update()
        if word == "DELETE":
            return self.parse_delete()
        if word == "CREATE":
            return self.parse_create()
        if word == "DROP":
            return self.parse_drop()
        if word == "ALTER":
            return self.parse_alter()
        if word in ("BEGIN", "COMMIT", "ROLLBACK"):
            self.advance()
            if word == "ROLLBACK" and self.accept_keyword("TO"):
                return TxnControl("ROLLBACK_TO", savepoint=self.expect_ident())
            return TxnControl(word)
        if word == "SAVEPOINT":
            self.advance()
            return TxnControl("SAVEPOINT", savepoint=self.expect_ident())
        if word == "CHECKPOINT":
            self.advance()
            return Checkpoint()
        if word == "USE":
            self.advance()
            name = self.expect_ident()
            if self.accept_keyword("AS"):
                self.expect_keyword("OF")
                return Use(name, as_of=self._parse_as_of_value())
            return Use(name)
        if word == "SHOW":
            self.advance()
            if self.accept_keyword("TABLES"):
                return Show("TABLES")
            if self.accept_keyword("SNAPSHOTS"):
                return Show("SNAPSHOTS")
            if self.accept_word("METRICS"):
                like = None
                if self.accept_word("LIKE"):
                    like = self.expect_string()
                return Show("METRICS", like=like)
            if self.accept_word("HEALTH"):
                return Show("HEALTH")
            if self.accept_word("ALERTS"):
                return Show("ALERTS")
            if self.accept_word("FAULTS"):
                return Show("FAULTS")
            if self.accept_word("HISTORY"):
                like = None
                if self.peek().ttype is TokenType.STRING:
                    like = self.expect_string()
                elif self.accept_word("LIKE"):
                    like = self.expect_string()
                return Show("HISTORY", like=like)
            if self.accept_word("SLOW"):
                if not self.accept_word("QUERIES"):
                    raise self.error("expected QUERIES after SLOW")
                return Show("SLOW QUERIES")
            raise self.error(
                "expected TABLES, SNAPSHOTS, METRICS, HEALTH, ALERTS, "
                "FAULTS, HISTORY or SLOW QUERIES"
            )
        raise self.error(f"unsupported statement {word}")

    def parse_table_ref(self, *, allow_as_of: bool = False) -> TableRef:
        first = self.expect_ident()
        if self.accept_punct("."):
            ref = TableRef(name=self.expect_ident(), database=first)
        else:
            ref = TableRef(name=first)
        if allow_as_of and self.accept_keyword("AS"):
            self.expect_keyword("OF")
            ref = TableRef(ref.name, ref.database, as_of=self._parse_as_of_value())
        return ref

    def _parse_as_of_value(self) -> str | float:
        token = self.peek()
        if token.ttype is TokenType.STRING:
            self.advance()
            return token.value
        if token.ttype is TokenType.NUMBER:
            self.advance()
            return float(token.value)
        raise self.error("expected a timestamp string or number after AS OF")

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        items = []
        while True:
            token = self.peek()
            if token.ttype is TokenType.OPERATOR and token.value == "*":
                self.advance()
                items.append((STAR, None))
            else:
                expr = self.parse_expr()
                alias = None
                if self.accept_keyword("AS"):
                    alias = self.expect_ident()
                items.append((expr, alias))
            if not self.accept_punct(","):
                break
        self.expect_keyword("FROM")
        table = self.parse_table_ref(allow_as_of=True)
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        order_by = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                col = self.expect_ident()
                ascending = True
                if self.accept_keyword("DESC"):
                    ascending = False
                else:
                    self.accept_keyword("ASC")
                order_by.append((col, ascending))
                if not self.accept_punct(","):
                    break
        limit = None
        if self.accept_keyword("LIMIT"):
            limit = int(self.expect_number())
        return Select(tuple(items), table, where, tuple(order_by), limit)

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.parse_table_ref()
        columns: tuple = ()
        if self.accept_punct("("):
            names = [self.expect_ident()]
            while self.accept_punct(","):
                names.append(self.expect_ident())
            self.expect_punct(")")
            columns = tuple(names)
        if self.accept_keyword("VALUES"):
            rows = []
            while True:
                self.expect_punct("(")
                values = [self.parse_expr()]
                while self.accept_punct(","):
                    values.append(self.parse_expr())
                self.expect_punct(")")
                rows.append(tuple(values))
                if not self.accept_punct(","):
                    break
            return Insert(table, columns, rows=tuple(rows))
        if self.peek().matches_keyword("SELECT"):
            return Insert(table, columns, source=self.parse_select())
        raise self.error("expected VALUES or SELECT")

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.parse_table_ref()
        self.expect_keyword("SET")
        assignments = []
        while True:
            col = self.expect_ident()
            token = self.peek()
            if token.ttype is not TokenType.OPERATOR or token.value != "=":
                raise self.error("expected =")
            self.advance()
            assignments.append((col, self.parse_expr()))
            if not self.accept_punct(","):
                break
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.parse_table_ref()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Delete(table, where)

    def parse_create(self):
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._parse_create_table(heap=False)
        if self.accept_keyword("HEAP"):
            self.expect_keyword("TABLE")
            return self._parse_create_table(heap=True)
        if self.accept_keyword("DATABASE"):
            name = self.expect_ident()
            if self.accept_keyword("AS"):
                self.expect_keyword("SNAPSHOT")
                self.expect_keyword("OF")
                source = self.expect_ident()
                as_of = None
                if self.accept_keyword("AS"):
                    self.expect_keyword("OF")
                    as_of = self.expect_string()
                return CreateSnapshot(name, source, as_of)
            return CreateDatabase(name)
        raise self.error("expected TABLE or DATABASE")

    def _parse_create_table(self, heap: bool) -> CreateTable:
        name = self.expect_ident()
        self.expect_punct("(")
        columns: list[Column] = []
        key: tuple = ()
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_punct("(")
                names = [self.expect_ident()]
                while self.accept_punct(","):
                    names.append(self.expect_ident())
                self.expect_punct(")")
                key = tuple(names)
            else:
                columns.append(self._parse_column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        if not key:
            raise self.error("CREATE TABLE requires PRIMARY KEY (...)")
        return CreateTable(name, tuple(columns), key, heap=heap)

    def _parse_column_def(self) -> Column:
        name = self.expect_ident()
        token = self.peek()
        if token.ttype is not TokenType.KEYWORD or token.value not in _TYPE_MAP:
            raise self.error("expected a column type")
        ctype = _TYPE_MAP[token.value]
        self.advance()
        max_len = 255
        if self.accept_punct("("):
            max_len = int(self.expect_number())
            self.expect_punct(")")
        nullable = True
        if self.accept_keyword("NOT"):
            self.expect_keyword("NULL")
            nullable = False
        else:
            self.accept_keyword("NULL")
        return Column(name=name, ctype=ctype, nullable=nullable, max_len=max_len)

    def parse_drop(self):
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            return DropTable(self.expect_ident())
        if self.accept_keyword("DATABASE") or self.accept_keyword("SNAPSHOT"):
            return DropDatabase(self.expect_ident())
        raise self.error("expected TABLE, DATABASE or SNAPSHOT")

    def parse_alter(self) -> AlterUndoInterval:
        self.expect_keyword("ALTER")
        self.expect_keyword("DATABASE")
        database = self.expect_ident()
        self.expect_keyword("SET")
        self.expect_keyword("UNDO_INTERVAL")
        token = self.peek()
        if token.ttype is not TokenType.OPERATOR or token.value != "=":
            raise self.error("expected =")
        self.advance()
        amount = self.expect_number()
        for unit, factor in _UNIT_SECONDS.items():
            if self.accept_keyword(unit):
                return AlterUndoInterval(database, amount * factor)
        raise self.error("expected HOURS, MINUTES or SECONDS")

    # -- expressions ------------------------------------------------------

    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept_keyword("OR"):
            left = Binary("OR", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_not()
        while self.accept_keyword("AND"):
            left = Binary("AND", left, self._parse_not())
        return left

    def _parse_not(self):
        if self.accept_keyword("NOT"):
            return Unary("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self):
        left = self._parse_additive()
        token = self.peek()
        if token.ttype is TokenType.OPERATOR and token.value in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            self.advance()
            op = "!=" if token.value == "<>" else token.value
            return Binary(op, left, self._parse_additive())
        if token.matches_keyword("IS"):
            self.advance()
            negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNull(left, negated)
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.ttype is TokenType.OPERATOR and token.value in ("+", "-"):
                self.advance()
                left = Binary(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.ttype is TokenType.OPERATOR and token.value in ("*", "/"):
                self.advance()
                left = Binary(token.value, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self):
        token = self.peek()
        if token.ttype is TokenType.OPERATOR and token.value == "-":
            self.advance()
            return Unary("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self):
        token = self.peek()
        if token.ttype is TokenType.NUMBER:
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.ttype is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.matches_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.ttype is TokenType.KEYWORD and token.value in _AGGREGATES:
            func = token.value
            self.advance()
            self.expect_punct("(")
            arg = None
            inner = self.peek()
            if inner.ttype is TokenType.OPERATOR and inner.value == "*":
                if func != "COUNT":
                    raise self.error("only COUNT accepts *")
                self.advance()
            else:
                arg = self.parse_expr()
            self.expect_punct(")")
            return Aggregate(func, arg)
        if self.accept_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if token.ttype is TokenType.IDENT:
            self.advance()
            return ColumnRef(token.value)
        raise self.error("expected an expression")


def parse_script(text: str) -> list:
    """Parse a semicolon-separated script into statement nodes."""
    tokens = tokenize(text)
    parser = Parser(tokens)
    statements = []
    while parser.peek().ttype is not TokenType.END:
        statements.append(parser.parse_statement())
        while parser.accept_punct(";"):
            pass
    if not statements:
        raise SqlSyntaxError("empty statement")
    return statements
