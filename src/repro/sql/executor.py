"""SQL execution over the engine (databases and snapshots).

A :class:`Session` is bound to an engine plus a current target — a live
database or a snapshot (``USE snap_name``). Reads work against either;
writes require a live database. The paper's reconcile step is a plain
``INSERT INTO t SELECT ... FROM snap.t`` across the two.

A SELECT source may carry an inline point-in-time qualifier
(``SELECT ... FROM t AS OF '<time>'``): the scan then runs against an
ephemeral snapshot leased from the engine's snapshot pool for the duration
of the statement — no snapshot DDL, naming, or cleanup involved. The
reconcile step works inline too:
``INSERT INTO t SELECT * FROM t AS OF '<time>'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import itemgetter

from repro.catalog.schema import TableSchema
from repro.errors import (
    SnapshotReadOnlyError,
    SqlExecutionError,
)
from repro.obs.export import flatten_snapshot
from repro.sql.parser import (
    STAR,
    Aggregate,
    AlterUndoInterval,
    BackupDatabase,
    Binary,
    Checkpoint,
    ColumnRef,
    CreateDatabase,
    CreateSnapshot,
    CreateTable,
    Delete,
    DropDatabase,
    DropTable,
    Insert,
    IsNull,
    Literal,
    RestoreDatabase,
    Select,
    Show,
    TableRef,
    Trace,
    TxnControl,
    Unary,
    Update,
    Use,
    parse_script,
)


@dataclass
class Result:
    """Outcome of one statement."""

    columns: tuple = ()
    rows: list = field(default_factory=list)
    rowcount: int = 0
    message: str = ""

    def scalar(self):
        """The single value of a 1x1 result."""
        if len(self.rows) != 1 or len(self.rows[0]) != 1:
            raise SqlExecutionError("result is not a single scalar")
        return self.rows[0][0]

    def __repr__(self) -> str:
        if self.columns:
            return f"Result({len(self.rows)} rows, columns={self.columns})"
        return f"Result(rowcount={self.rowcount}, message={self.message!r})"


def _eval(expr, row: dict):
    """Evaluate an expression against a row mapping (None-propagating)."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        if expr.name not in row:
            raise SqlExecutionError(f"unknown column {expr.name!r}")
        return row[expr.name]
    if isinstance(expr, Unary):
        value = _eval(expr.operand, row)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "NOT":
            return None if value is None else (not value)
        raise SqlExecutionError(f"unknown unary operator {expr.op}")
    if isinstance(expr, IsNull):
        value = _eval(expr.operand, row)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, Binary):
        if expr.op == "AND":
            return bool(_eval(expr.left, row)) and bool(_eval(expr.right, row))
        if expr.op == "OR":
            return bool(_eval(expr.left, row)) or bool(_eval(expr.right, row))
        left = _eval(expr.left, row)
        right = _eval(expr.right, row)
        if left is None or right is None:
            return None
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op == "<":
            return left < right
        if expr.op == "<=":
            return left <= right
        if expr.op == ">":
            return left > right
        if expr.op == ">=":
            return left >= right
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/":
            return left / right
        raise SqlExecutionError(f"unknown operator {expr.op}")
    raise SqlExecutionError(f"cannot evaluate {expr!r}")


def _expr_name(expr, alias, index) -> str:
    if alias:
        return alias
    if isinstance(expr, ColumnRef):
        return expr.name
    if isinstance(expr, Aggregate):
        return expr.func.lower()
    return f"col{index}"


class Session:
    """One SQL session against an engine.

    A session can be *pinned* to a point in time (``USE <db> AS OF
    '<time>'``): unqualified reads then run against one pooled snapshot
    across statements until the next ``USE`` (or :meth:`close`) releases
    the lease. Sessions are context managers; use ``with engine.session()
    as s:`` when pinning, so the lease always unwinds.
    """

    def __init__(self, engine, database: str | None = None) -> None:
        self.engine = engine
        self.current = database
        self.txn = None
        #: Pinned pooled snapshot and the pool owning its lease.
        self._pinned = None
        self._pinned_pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the session's pinned snapshot lease and roll back any
        still-open explicit transaction (its write latch must not outlive
        the session)."""
        if self.txn is not None:
            db = self.engine.databases.get(self.current)
            try:
                if db is not None and self.txn.is_active:
                    db.rollback(self.txn)
            finally:
                self.txn = None
                if db is not None:
                    db.write_latch.release()
        self._unpin()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _unpin(self) -> None:
        if self._pinned is not None:
            self._pinned_pool.release(self._pinned)
            self._pinned = None
            self._pinned_pool = None

    # ------------------------------------------------------------------
    # Target resolution
    # ------------------------------------------------------------------

    def _reader_for(self, ref: TableRef, *, for_write: bool = False):
        """Database, snapshot or replica serving reads for ``ref``."""
        name = ref.database or self.current
        if name is None:
            raise SqlExecutionError("no database selected (USE <name>)")
        if ref.database is None and self._pinned is not None:
            return self._pinned
        if name in self.engine.databases:
            db = self.engine.databases[name]
            if not for_write and self.txn is None:
                replica = self.engine.routing_replica(name)
                if replica is not None:
                    return replica.db
            return db
        if name in self.engine.snapshots:
            return self.engine.snapshots[name]
        if name in self.engine.replicas:
            if for_write:
                raise SnapshotReadOnlyError("replicas are read-only")
            return self.engine.replicas[name].db
        raise SqlExecutionError(
            f"unknown database, snapshot or replica {name!r}"
        )

    def _writer_for(self, ref: TableRef):
        if ref.as_of is not None:
            raise SnapshotReadOnlyError("AS OF table references are read-only")
        if ref.database is None and self._pinned is not None:
            raise SnapshotReadOnlyError(
                "session is pinned AS OF a past time and is read-only"
            )
        target = self._reader_for(ref, for_write=True)
        if ref.database is None and self.current in self.engine.snapshots:
            raise SnapshotReadOnlyError("snapshots are read-only")
        if target not in self.engine.databases.values():
            raise SnapshotReadOnlyError("snapshots are read-only")
        return target

    def _schema_of(self, reader, table: str) -> TableSchema:
        handle = reader.table(table)
        return handle.schema

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def execute(self, text: str) -> Result:
        """Execute a script; returns the last statement's result."""
        result = Result()
        for statement in parse_script(text):
            result = self._dispatch(statement)
        return result

    def execute_all(self, text: str) -> list[Result]:
        return [self._dispatch(stmt) for stmt in parse_script(text)]

    def _dispatch(self, stmt) -> Result:
        handler = {
            Select: self._do_select,
            Insert: self._do_insert,
            Update: self._do_update,
            Delete: self._do_delete,
            CreateTable: self._do_create_table,
            DropTable: self._do_drop_table,
            CreateSnapshot: self._do_create_snapshot,
            CreateDatabase: self._do_create_database,
            DropDatabase: self._do_drop_database,
            AlterUndoInterval: self._do_alter,
            BackupDatabase: self._do_backup,
            RestoreDatabase: self._do_restore,
            TxnControl: self._do_txn,
            Checkpoint: self._do_checkpoint,
            Use: self._do_use,
            Show: self._do_show,
            Trace: self._do_trace,
        }.get(type(stmt))
        if handler is None:
            raise SqlExecutionError(f"unsupported statement {type(stmt).__name__}")
        env = self.engine.env
        # Slow-statement capture needs a live trace to retain the span
        # tree — but the tracer is exclusive, so auto-trace only when
        # nothing else (an outer TRACE, a caller's engine.trace) owns it.
        slow_log = self.engine.slow_queries
        capture = (
            slow_log.enabled and not env.tracer.active and type(stmt) is not Trace
        )
        handle = env.tracer.begin("sql.statement") if capture else None
        started = env.clock.now()
        try:
            with env.tracer.span("sql.execute", stmt=type(stmt).__name__) as span:
                result = handler(stmt)
                span.set(rows=result.rowcount)
        finally:
            elapsed = env.clock.now() - started
            if handle is not None:
                env.tracer.finish(handle)
                if elapsed >= slow_log.threshold_s:
                    slow_log.record(
                        t_s=started,
                        statement=type(stmt).__name__,
                        sim_s=elapsed,
                        spans=handle.render(),
                    )
        env.metrics.histogram(
            "sql.execute_sim_s", "sim-seconds per SQL statement"
        ).observe(elapsed)
        self.engine.monitor_tick()
        return result

    # ------------------------------------------------------------------
    # Write transaction plumbing (autocommit unless BEGIN is open)
    # ------------------------------------------------------------------

    def _write(self, db, fn) -> Result:
        if self.txn is not None:
            return fn(self.txn)
        with db.transaction() as txn:
            return fn(txn)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _select_rows(self, stmt: Select):
        ref = stmt.table
        if ref.as_of is not None:
            # Inline point-in-time read: lease an ephemeral snapshot from
            # the engine's pool for the duration of the scan. The target
            # must be a live database — a named snapshot is already a
            # fixed point in time.
            name = ref.database or self.current
            if name is None:
                raise SqlExecutionError("no database selected (USE <name>)")
            if name not in self.engine.databases:
                raise SqlExecutionError(
                    f"AS OF requires a live database, not {name!r}"
                )
            with self.engine.query_as_of(name, ref.as_of) as snapshot:
                return self._filter_rows(snapshot, stmt)
        return self._filter_rows(self._reader_for(ref), stmt)

    def _filter_rows(self, reader, stmt: Select):
        # A multi-page scan of a live database must not observe another
        # session's transaction mid-flight (half-applied b-tree splits),
        # so it holds the database's write latch — reentrant, so reads
        # inside an explicit transaction just re-enter. Snapshots and
        # replicas' point-in-time views have no write latch; their own
        # snapshot latch covers page preparation.
        guard = getattr(reader, "write_latch", None)
        if guard is None:
            return self._filter_rows_unlocked(reader, stmt)
        with guard:
            return self._filter_rows_unlocked(reader, stmt)

    def _filter_rows_unlocked(self, reader, stmt: Select):
        schema = self._schema_of(reader, stmt.table.name)
        names = schema.column_names
        out = []
        for row in reader.scan(stmt.table.name):
            mapping = dict(zip(names, row, strict=True))
            if stmt.where is not None and not _eval(stmt.where, mapping):
                continue
            out.append(mapping)
        return out, schema

    def _do_select(self, stmt: Select) -> Result:
        filtered, schema = self._select_rows(stmt)
        aggregates = [
            item for item, _alias in stmt.items if isinstance(item, Aggregate)
        ]
        if aggregates:
            if len(aggregates) != len(stmt.items):
                raise SqlExecutionError(
                    "aggregate queries cannot mix plain columns (no GROUP BY)"
                )
            values = []
            columns = []
            for index, (agg, alias) in enumerate(stmt.items):
                values.append(self._aggregate(agg, filtered))
                columns.append(_expr_name(agg, alias, index))
            return Result(tuple(columns), [tuple(values)], rowcount=1)

        if stmt.order_by:
            for col, ascending in reversed(stmt.order_by):
                if col not in schema.column_names:
                    raise SqlExecutionError(f"unknown ORDER BY column {col!r}")
                filtered.sort(key=itemgetter(col), reverse=not ascending)

        columns: list[str] = []
        projections = []
        for index, (item, alias) in enumerate(stmt.items):
            if item is STAR:
                columns.extend(schema.column_names)
                projections.append(STAR)
            else:
                columns.append(_expr_name(item, alias, index))
                projections.append(item)
        rows = []
        for mapping in filtered:
            row_out = []
            for item in projections:
                if item is STAR:
                    row_out.extend(mapping[name] for name in schema.column_names)
                else:
                    row_out.append(_eval(item, mapping))
            rows.append(tuple(row_out))
        if stmt.limit is not None:
            rows = rows[: stmt.limit]
        return Result(tuple(columns), rows, rowcount=len(rows))

    @staticmethod
    def _aggregate(agg: Aggregate, mappings: list) -> object:
        if agg.func == "COUNT" and agg.arg is None:
            return len(mappings)
        values = [
            value
            for mapping in mappings
            if (value := _eval(agg.arg, mapping)) is not None
        ]
        if agg.func == "COUNT":
            return len(values)
        if not values:
            return None
        if agg.func == "SUM":
            return sum(values)
        if agg.func == "AVG":
            return sum(values) / len(values)
        if agg.func == "MIN":
            return min(values)
        if agg.func == "MAX":
            return max(values)
        raise SqlExecutionError(f"unknown aggregate {agg.func}")

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _do_insert(self, stmt: Insert) -> Result:
        db = self._writer_for(stmt.table)
        schema = self._schema_of(db, stmt.table.name)
        if stmt.source is not None:
            source_result = self._do_select(stmt.source)
            raw_rows = source_result.rows
        else:
            raw_rows = [
                tuple(_eval(expr, {}) for expr in row) for row in stmt.rows
            ]
        columns = stmt.columns or schema.column_names
        if len(columns) != len(set(columns)):
            raise SqlExecutionError("duplicate column in INSERT list")

        def run(txn) -> Result:
            inserted = 0
            for values in raw_rows:
                if len(values) != len(columns):
                    raise SqlExecutionError(
                        f"INSERT expects {len(columns)} values, got {len(values)}"
                    )
                db.insert(txn, stmt.table.name, dict(zip(columns, values, strict=True)))
                inserted += 1
            return Result(rowcount=inserted, message=f"INSERT {inserted}")

        return self._write(db, run)

    def _do_update(self, stmt: Update) -> Result:
        db = self._writer_for(stmt.table)
        schema = self._schema_of(db, stmt.table.name)
        key_cols = schema.key

        def run(txn) -> Result:
            matched = []
            for row in db.scan(stmt.table.name):
                mapping = dict(zip(schema.column_names, row, strict=True))
                if stmt.where is None or _eval(stmt.where, mapping):
                    matched.append(mapping)
            for mapping in matched:
                changes = {
                    col: _eval(expr, mapping) for col, expr in stmt.assignments
                }
                bad_keys = set(changes) & set(key_cols)
                if bad_keys:
                    raise SqlExecutionError(
                        f"cannot UPDATE key columns {sorted(bad_keys)}"
                    )
                key = tuple(mapping[c] for c in key_cols)
                db.update(txn, stmt.table.name, key, changes)
            return Result(rowcount=len(matched), message=f"UPDATE {len(matched)}")

        return self._write(db, run)

    def _do_delete(self, stmt: Delete) -> Result:
        db = self._writer_for(stmt.table)
        schema = self._schema_of(db, stmt.table.name)

        def run(txn) -> Result:
            keys = []
            for row in db.scan(stmt.table.name):
                mapping = dict(zip(schema.column_names, row, strict=True))
                if stmt.where is None or _eval(stmt.where, mapping):
                    keys.append(tuple(mapping[c] for c in schema.key))
            for key in keys:
                db.delete(txn, stmt.table.name, key)
            return Result(rowcount=len(keys), message=f"DELETE {len(keys)}")

        return self._write(db, run)

    # ------------------------------------------------------------------
    # DDL and control
    # ------------------------------------------------------------------

    def _do_create_table(self, stmt: CreateTable) -> Result:
        db = self._writer_for(TableRef(stmt.name))
        schema = TableSchema(stmt.name, stmt.columns, stmt.key)
        db.create_table(schema, heap=stmt.heap)
        return Result(message=f"CREATE TABLE {stmt.name}")

    def _do_drop_table(self, stmt: DropTable) -> Result:
        db = self._writer_for(TableRef(stmt.name))
        db.drop_table(stmt.name)
        return Result(message=f"DROP TABLE {stmt.name}")

    def _do_create_snapshot(self, stmt: CreateSnapshot) -> Result:
        if stmt.as_of is None:
            self.engine.create_snapshot(stmt.source, stmt.name)
        else:
            self.engine.create_asof_snapshot(stmt.source, stmt.name, stmt.as_of)
        return Result(message=f"CREATE SNAPSHOT {stmt.name}")

    def _do_create_database(self, stmt: CreateDatabase) -> Result:
        self.engine.create_database(stmt.name)
        return Result(message=f"CREATE DATABASE {stmt.name}")

    def _do_drop_database(self, stmt: DropDatabase) -> Result:
        if stmt.name in self.engine.snapshots:
            self.engine.drop_snapshot(stmt.name)
        else:
            self.engine.drop_database(stmt.name)
        if self.current == stmt.name:
            self.current = None
        return Result(message=f"DROP {stmt.name}")

    def _do_backup(self, stmt: BackupDatabase) -> Result:
        backup = self.engine.backup_database(stmt.name, full=stmt.full)
        kind = "full" if not hasattr(backup, "base_lsn") else "incremental"
        return Result(
            message=(
                f"BACKUP DATABASE {stmt.name} ({kind}, "
                f"{len(backup.pages)} pages, lsn={backup.backup_lsn:#x})"
            )
        )

    def _do_restore(self, stmt: RestoreDatabase) -> Result:
        restored = self.engine.restore_from_archive(
            stmt.source, stmt.as_of, stmt.new_name
        )
        return Result(
            message=f"RESTORE DATABASE {restored.name} AS OF {stmt.as_of}"
        )

    def _do_alter(self, stmt: AlterUndoInterval) -> Result:
        db = self.engine.database(stmt.database)
        db.set_undo_interval(stmt.seconds)
        return Result(
            message=f"ALTER DATABASE {stmt.database} UNDO_INTERVAL={stmt.seconds:.0f}s"
        )

    def _do_txn(self, stmt: TxnControl) -> Result:
        if stmt.action in ("SAVEPOINT", "ROLLBACK_TO"):
            if self.txn is None:
                raise SqlExecutionError(f"{stmt.action} without BEGIN")
            db = self.engine.databases[self.current]
            if stmt.action == "SAVEPOINT":
                db.savepoint(self.txn, stmt.savepoint)
                return Result(message=f"SAVEPOINT {stmt.savepoint}")
            db.rollback_to(self.txn, stmt.savepoint)
            return Result(message=f"ROLLBACK TO {stmt.savepoint}")
        if stmt.action == "BEGIN":
            if self.txn is not None:
                raise SqlExecutionError("transaction already open")
            if self._pinned is not None:
                raise SqlExecutionError(
                    "session is pinned AS OF a past time (read-only)"
                )
            if self.current is None or self.current not in self.engine.databases:
                raise SqlExecutionError("BEGIN requires a current database")
            db = self.engine.databases[self.current]
            # An explicit transaction holds the database write latch
            # across statements (released by COMMIT/ROLLBACK below, or
            # by close()): the begin→commit span is one write-serialized
            # unit, exactly like ``db.transaction()``. Non-lexical
            # acquire/release is safe because a session runs wholly on
            # one scheduler worker thread (RLocks are thread-affine).
            db.write_latch.acquire()
            try:
                self.txn = db.begin()
            except BaseException:
                db.write_latch.release()
                raise
            return Result(message="BEGIN")
        if self.txn is None:
            raise SqlExecutionError(f"{stmt.action} without BEGIN")
        db = self.engine.databases[self.current]
        try:
            if stmt.action == "COMMIT":
                db.commit(self.txn)
            else:
                db.rollback(self.txn)
        finally:
            self.txn = None
            db.write_latch.release()
        return Result(message=stmt.action)

    def _do_checkpoint(self, stmt: Checkpoint) -> Result:
        if self.current is None or self.current not in self.engine.databases:
            raise SqlExecutionError("CHECKPOINT requires a current database")
        lsn = self.engine.databases[self.current].checkpoint()
        return Result(message=f"CHECKPOINT {lsn:#x}")

    def _do_use(self, stmt: Use) -> Result:
        known = (
            stmt.name in self.engine.databases
            or stmt.name in self.engine.snapshots
            or stmt.name in self.engine.replicas
        )
        if not known:
            raise SqlExecutionError(
                f"unknown database, snapshot or replica {stmt.name!r}"
            )
        if stmt.as_of is not None and stmt.name not in self.engine.databases:
            raise SqlExecutionError(
                f"USE ... AS OF requires a live database, not {stmt.name!r}"
            )
        if self.txn is not None:
            raise SqlExecutionError("cannot USE while a transaction is open")
        self._unpin()
        self.current = stmt.name
        if stmt.as_of is None:
            return Result(message=f"USE {stmt.name}")
        self._pinned_pool, self._pinned = self.engine.pin_as_of(
            stmt.name, stmt.as_of
        )
        return Result(message=f"USE {stmt.name} AS OF {stmt.as_of}")

    def _do_show(self, stmt: Show) -> Result:
        if stmt.what == "TABLES":
            reader = self._reader_for(TableRef("_"))
            rows = [(name,) for name in sorted(reader.tables())]
            return Result(("name",), rows, rowcount=len(rows))
        if stmt.what == "METRICS":
            snap = self.engine.metrics_snapshot(stmt.like)
            rows = list(flatten_snapshot(snap).items())
            return Result(("name", "value"), rows, rowcount=len(rows))
        if stmt.what == "HEALTH":
            doc = self.engine.health()
            rows = [("overall", doc["overall"], "")]
            for name, entry in doc["subsystems"].items():
                alerts = ", ".join(
                    f"{a['rule']}({a['metric']})" for a in entry["alerts"]
                )
                rows.append((name, entry["verdict"], alerts))
            return Result(("subsystem", "verdict", "alerts"), rows, rowcount=len(rows))
        if stmt.what == "ALERTS":
            monitor = self.engine.monitor
            condition_rows = monitor.alert_rows() if monitor is not None else []
            rows = [
                (
                    row["rule"],
                    row["metric"],
                    row["state"],
                    row["severity"],
                    row["value"],
                    row["fired_at"],
                    row["cleared_at"],
                    row["fired_count"],
                )
                for row in condition_rows
            ]
            return Result(
                (
                    "rule",
                    "metric",
                    "state",
                    "severity",
                    "value",
                    "fired_at",
                    "cleared_at",
                    "fired_count",
                ),
                rows,
                rowcount=len(rows),
            )
        if stmt.what == "FAULTS":
            rows = [
                (
                    row["seq"],
                    row["t"],
                    row["point"],
                    row["kind"],
                    row["target"],
                    row["detail"],
                )
                for row in self.engine.fault_events()
            ]
            return Result(
                ("seq", "t", "point", "kind", "target", "detail"),
                rows,
                rowcount=len(rows),
            )
        if stmt.what == "HISTORY":
            history = self.engine.monitor_history(stmt.like)
            rows = [
                (
                    name,
                    summary["points"],
                    summary["last"],
                    summary["min"],
                    summary["max"],
                    summary["mean"],
                    summary["rate_per_s"],
                )
                for name, summary in history.items()
            ]
            return Result(
                ("metric", "points", "last", "min", "max", "mean", "rate_per_s"),
                rows,
                rowcount=len(rows),
            )
        if stmt.what == "SLOW QUERIES":
            rows = [
                (row["t_s"], row["statement"], row["sim_s"], row["spans"])
                for row in self.engine.slow_queries.rows()
            ]
            return Result(
                ("t_s", "statement", "sim_s", "spans"), rows, rowcount=len(rows)
            )
        rows = [(name,) for name in sorted(self.engine.snapshots)]
        return Result(("name",), rows, rowcount=len(rows))

    def _do_trace(self, stmt: Trace) -> Result:
        with self.engine.trace("sql.trace") as handle:
            self._dispatch(stmt.statement)
        rows = [(line,) for line in handle.render()]
        return Result(("span",), rows, rowcount=len(rows))
