"""Exception hierarchy for the repro database engine.

All engine errors derive from :class:`ReproError` so callers can catch the
whole family with a single ``except`` clause while still being able to
discriminate precise failure modes (corruption vs. retention vs. locking).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class StorageError(ReproError):
    """A problem in the page/file layer (bad page id, out-of-range I/O)."""


class PageCorruptionError(StorageError):
    """A page failed its checksum or structural validation on read."""


class PageFullError(StorageError):
    """A record does not fit on the target page.

    Access methods catch this internally to trigger page splits; it escapes
    only when a single record is larger than a page can ever hold.
    """


class BufferPoolError(StorageError):
    """Buffer pool misuse: unpinning an unpinned page, latch violations."""


class AllocationError(StorageError):
    """Allocation-map inconsistency (double allocation / double free)."""


class WalError(ReproError):
    """A problem in the write-ahead-log layer."""


class LogTruncatedError(WalError):
    """An LSN below the log's retention horizon was requested.

    Raised by the log reader when page-oriented undo walks a ``prevPageLSN``
    chain past the truncation point, and by SplitLSN search when the
    requested wall-clock time precedes the retained log.
    """


class LogRecordDecodeError(WalError):
    """A log record failed to deserialize (torn write / corruption)."""


class MissingUndoInfoError(WalError):
    """A log record on the undo path carries no undo information.

    This happens only when the paper's logging extensions (undo info in
    CLRs and in structure-modification deletes) are disabled — it is the
    precise failure mode the extensions of section 4.2 exist to prevent.
    """


class TransactionError(ReproError):
    """Transaction misuse (operating on a finished transaction, etc.)."""


class TransactionAborted(TransactionError):
    """The transaction was rolled back (by deadlock or explicit abort)."""


class LockError(TransactionError):
    """Lock manager failure."""


class DeadlockError(LockError):
    """A lock request would create a cycle in the wait-for graph."""


class LockTimeoutError(LockError):
    """A lock request waited past its timeout."""


class CatalogError(ReproError):
    """Metadata problem: unknown table, duplicate name, schema mismatch."""


class DuplicateKeyError(ReproError):
    """A unique-key insert collided with an existing row."""


class KeyNotFoundError(ReproError):
    """A point lookup, update or delete referenced a missing key."""


class SnapshotError(ReproError):
    """Snapshot lifecycle problem (duplicate name, unknown snapshot)."""


class SnapshotReadOnlyError(SnapshotError):
    """A write was attempted through a (read-only) snapshot session."""


class RetentionExceededError(SnapshotError):
    """The requested as-of time lies before the retention horizon.

    Mirrors the paper's retention period (section 4.3): the transaction log
    is only retained for ``UNDO_INTERVAL``; earlier points in time are not
    reachable by page-oriented undo.
    """


class ReplicationError(ReproError):
    """Log-shipping replication failure.

    Raised when a shipped frame fails its checksum or arrives out of
    order, when a standby's resume cursor falls below the primary's
    retained log (the replica must be reseeded), or when a replica is
    asked to serve a point it cannot reach.
    """


class ReplicationFaultError(ReplicationError):
    """A typed, resumable fault on the replication stream.

    Wraps the raw stream-layer failures (truncated/torn frames, CRC
    mismatches, out-of-order arrivals) at the receive boundary so callers
    — and the shipper's retry policy — can distinguish a transient fault
    (resend from :attr:`resume_lsn` and the stream heals) from a fatal
    one (reseed required). ``resume_lsn`` is the receiver's durable
    cursor at the moment of the fault: shipping MUST resume exactly
    there, which is what makes retry safe against both skipped and
    double-applied records.
    """

    def __init__(
        self, message: str, *, resume_lsn: int, transient: bool = True
    ) -> None:
        super().__init__(message)
        self.resume_lsn = resume_lsn
        self.transient = transient


class FaultInjectedError(ReproError):
    """An error injected by the chaos layer (``repro.chaos``).

    Carries the injection point, fault kind, and whether the fault is
    transient (retry heals it) so the same retry/backoff machinery that
    handles real stream faults handles injected ones identically.
    """

    def __init__(
        self,
        message: str,
        *,
        point: str = "",
        kind: str = "",
        target: str = "",
        transient: bool = True,
    ) -> None:
        super().__init__(message)
        self.point = point
        self.kind = kind
        self.target = target
        self.transient = transient


class DatabaseUnavailableError(ReproError):
    """The database is down (crashed primary awaiting failover)."""


class BackupError(ReproError):
    """Backup/restore failure (missing log range, bad backup chain)."""


class ArchiveError(ReproError):
    """Archive-tier failure.

    Raised when archived log segments would leave a gap (the archiver's
    cursor and the store's coverage disagree), when a restore target is
    not covered by any archived backup chain + log range, or when an
    archive operation is attempted on a database with no archive enabled.
    """


class RecoveryError(ReproError):
    """ARIES recovery could not complete (missing log, bad checkpoint)."""


class SqlError(ReproError):
    """SQL front-end failure."""


class SqlSyntaxError(SqlError):
    """The SQL text failed to tokenize or parse."""


class SqlExecutionError(SqlError):
    """A parsed statement failed during execution (unknown column, etc.)."""
