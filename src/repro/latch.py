"""The engine's latch primitive (ROADMAP item 1).

A :class:`Latch` is a named, reentrant short-duration lock guarding one
engine-shared structure — the snapshot pool's entry map, the version
store's interval map, the log tail, buffer-pool frames, lock-manager
state, the metrics/monitor registries. Latches are held for the duration
of one method call on the owning structure, never across I/O waits on
other sessions (there are none: lock *waits* are the lock manager's job;
latches only serialize in-memory mutation).

Reentrancy is load-bearing: public methods of a latched structure call
each other (``release`` → ``evict_to_budget``, ``append_and_flush`` →
``append`` + ``flush``) and private helpers re-assert the latch
lexically so reprolint RL005 (strict mode) can verify every mutation
site sits under ``with self.latch:``.

The counters make contention observable without host timing: every
acquisition bumps ``acquisitions``; an acquisition that had to block
because another thread held the latch bumps ``contentions``. The
concurrency bench reports the ratio per latch.
"""

from __future__ import annotations

import threading


class Latch:
    """A named reentrant latch with acquisition/contention counters."""

    __slots__ = ("name", "_rlock", "acquisitions", "contentions")

    def __init__(self, name: str = "latch") -> None:
        self.name = name
        self._rlock = threading.RLock()
        #: Total times the latch was entered.
        self.acquisitions = 0
        #: Entries that had to block on another thread first.
        self.contentions = 0

    def __enter__(self) -> "Latch":
        # Try without blocking first: the common uncontended path costs
        # one atomic attempt; only a genuine collision pays the blocking
        # acquire and is counted as contention. Both counters are bumped
        # while the latch is held, so they never tear.
        if not self._rlock.acquire(blocking=False):
            self._rlock.acquire()
            self.contentions += 1
        self.acquisitions += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._rlock.release()

    # Explicit acquire/release for the rare non-lexical site (the
    # executor's BEGIN/COMMIT spanning statements); prefer ``with``.
    def acquire(self) -> None:
        self.__enter__()

    def release(self) -> None:
        self._rlock.release()

    def contention_ratio(self) -> float:
        """Fraction of acquisitions that blocked (0.0 when idle)."""
        if self.acquisitions == 0:
            return 0.0
        return self.contentions / self.acquisitions

    def stats(self) -> dict:
        return {
            "name": self.name,
            "acquisitions": self.acquisitions,
            "contentions": self.contentions,
        }

    def __repr__(self) -> str:
        return (
            f"Latch({self.name!r}, acquisitions={self.acquisitions}, "
            f"contentions={self.contentions})"
        )
