"""Engine configuration: page geometry, logging extensions, cost model.

The knobs here map directly onto the paper:

* :class:`LoggingExtensions` — section 4.2's log enhancements (preformat
  records, undo info in CLRs and in structure-modification deletes) plus
  section 6.1's optional full page images every Nth page modification.
* ``undo_interval_s`` — section 4.3's retention period
  (``ALTER DATABASE ... SET UNDO_INTERVAL``).
* ``checkpoint_interval_s`` — section 6's 30-second target recovery
  interval, which bounds as-of snapshot creation time (Figures 9/10).
* Device profiles — section 6's SAS-10K and SLC-SSD media.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.sim.device import ZERO_COST, DeviceProfile, SimDevice
from repro.sim.iostats import IoStats


@dataclass(frozen=True)
class LoggingExtensions:
    """Switches for the transaction-log extensions of paper section 4.2.

    With ``enabled=False`` the engine logs exactly what classic ARIES
    needs for crash recovery — and page-oriented undo then fails whenever
    it crosses a CLR or a structure-modification delete, which is the
    ablation the benchmarks demonstrate.
    """

    #: Master switch for the as-of logging extensions.
    enabled: bool = True
    #: Log a preformat record (prior page image) when a page is re-allocated.
    preformat_on_realloc: bool = True
    #: Compensation log records carry undo information (section 4.2 item 2).
    clr_undo_info: bool = True
    #: B-tree split/merge row moves carry undo info in deletes (item 3).
    smo_delete_undo_info: bool = True
    #: Log a full page image after every Nth modification of a page
    #: (section 6.1); 0 disables periodic images.
    page_image_interval: int = 0

    def effective(self) -> "LoggingExtensions":
        """The extension set with the master switch folded in."""
        if self.enabled:
            return self
        return LoggingExtensions(
            enabled=False,
            preformat_on_realloc=False,
            clr_undo_info=False,
            smo_delete_undo_info=False,
            page_image_interval=0,
        )


@dataclass(frozen=True)
class CostModel:
    """CPU-side simulated costs, in seconds.

    The paper observes that throughput tracks the *number* of log records
    (log-manager synchronization per record), not their size — so the
    dominant CPU term here is ``log_record_cpu_s`` charged once per record
    appended, which is what makes Figure 6 come out flat-ish while
    Figure 5's space grows.
    """

    log_record_cpu_s: float = 4e-6
    dml_cpu_s: float = 2.0e-5
    query_row_cpu_s: float = 1.5e-6
    txn_overhead_cpu_s: float = 4e-5
    undo_record_cpu_s: float = 3e-6
    redo_record_cpu_s: float = 3e-6

    @staticmethod
    def free() -> "CostModel":
        """A zero-cost model for logic-only unit tests."""
        return CostModel(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)


class SimEnv:
    """The simulated machine: one clock, shared devices, one stats sheet.

    Every database, snapshot, backup and workload in an
    :class:`~repro.engine.engine.Engine` shares a single ``SimEnv`` — the
    paper's experiments all run on one box, and the concurrent experiment
    (section 6.3) depends on the OLTP workload and the as-of queries
    competing for the same media.
    """

    def __init__(
        self,
        data_profile: DeviceProfile = ZERO_COST,
        log_profile: DeviceProfile = ZERO_COST,
        cost: CostModel | None = None,
        clock: SimClock | None = None,
        stats: IoStats | None = None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.stats = stats if stats is not None else IoStats()
        #: The typed metrics registry (see :mod:`repro.obs`): every
        #: ``io.*`` counter is the IoStats field itself, registered as a
        #: backed counter, so one ``metrics.reset()`` (or the bound
        #: ``stats.reset()``) clears the whole environment's counters.
        self.metrics = MetricsRegistry()
        self.stats.bind_registry(self.metrics)
        #: The span tracer (inactive — cheap no-ops — between traces).
        self.tracer = Tracer(self.clock, self.stats)
        self.data_device = SimDevice(data_profile, self.clock, self.stats)
        self.log_device = SimDevice(log_profile, self.clock, self.stats)
        self.cost = cost if cost is not None else CostModel.free()
        #: Seeded fault injector shared by every component on this machine
        #: (``None`` until :meth:`Engine.enable_chaos` arms it).
        self.chaos = None

    def charge_cpu(self, seconds: float) -> None:
        """Advance the clock for CPU work (no device involved)."""
        if seconds > 0:
            self.clock.advance(seconds)

    @staticmethod
    def for_tests() -> "SimEnv":
        """Free I/O and free CPU: deterministic logic-only environment."""
        return SimEnv(ZERO_COST, ZERO_COST, CostModel.free())


@dataclass(frozen=True)
class MonitorConfig:
    """Knobs for the continuous-monitoring layer (:mod:`repro.obs`).

    Cadence and thresholds are all in *simulated* units: the recorder
    samples on the sim clock from the engine's pump points, so one
    config on one seeded workload yields one byte-identical monitoring
    timeline.
    """

    #: Sim-clock sampling cadence for the metrics recorder; seconds.
    sample_interval_s: float = 1.0
    #: Per-series ring capacity (samples retained).
    history_samples: int = 512
    #: Bounded capacity of the alert firing/cleared event timeline.
    events_capacity: int = 256
    #: ``repl.apply_lag`` fires when a replica's unapplied bytes exceed this.
    apply_lag_bytes: int = 1 << 20
    #: ``repl.apply_lag_s`` fires when a replica trails by this many seconds.
    apply_lag_s: float = 30.0
    #: Debounce: apply-lag breaches must hold this long before firing.
    apply_lag_for_s: float = 0.0
    #: ``archive.cursor_lag`` fires beyond this archiver backlog.
    archive_lag_bytes: int = 4 << 20
    #: ``retention.pin_pressure`` fires when a pin holds back this much log.
    pin_lag_bytes: int = 8 << 20
    #: ``pool.occupancy`` fires above this fraction of the pool budget.
    pool_occupancy: float = 0.95
    #: ``version_store.hit_rate_floor`` fires below this hit rate ...
    version_store_hit_rate_floor: float = 0.10
    #: ... but only after this many lookups (avoids judging a cold cache).
    version_store_min_lookups: int = 100
    #: Statements slower than this (simulated) land in the slow-query
    #: log; 0 disables capture.
    slow_query_sim_s: float = 1.0
    #: Bounded capacity of the slow-query ring.
    slow_query_capacity: int = 32
    #: ``repl.ship_errors`` fires at this many consecutive failed ship
    #: attempts to one subscriber.
    ship_error_streak: int = 3
    #: ``repl.ship_stall`` (absence) fires when a subscription's
    #: ``progress_t`` series has been stale for this long; seconds.
    ship_stall_s: float = 5.0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        if self.history_samples < 2:
            raise ValueError("history_samples must be at least 2")
        if self.events_capacity < 1:
            raise ValueError("events_capacity must be at least 1")
        if not 0.0 <= self.version_store_hit_rate_floor <= 1.0:
            raise ValueError("version_store_hit_rate_floor must be in [0, 1]")
        if not 0.0 < self.pool_occupancy <= 1.0:
            raise ValueError("pool_occupancy must be in (0, 1]")
        if self.slow_query_sim_s < 0:
            raise ValueError("slow_query_sim_s must be >= 0")
        if self.slow_query_capacity < 1:
            raise ValueError("slow_query_capacity must be at least 1")
        if self.ship_error_streak < 1:
            raise ValueError("ship_error_streak must be at least 1")
        if self.ship_stall_s <= 0:
            raise ValueError("ship_stall_s must be positive")


@dataclass(frozen=True)
class DatabaseConfig:
    """Per-database configuration.

    The defaults give a correct, fast engine for tests; benchmarks override
    devices, retention and extension settings per experiment.
    """

    page_size: int = 8192
    buffer_pool_pages: int = 1024
    #: Log reader cache geometry (models the paper's "log cache" whose
    #: misses stall as-of queries).
    log_block_size: int = 65536
    log_cache_blocks: int = 32
    #: Batched undo reads merge needed log blocks separated by at most
    #: this many unneeded blocks into one sequential-priced span
    #: (:meth:`repro.wal.log_manager.LogManager.read_many`); 0 coalesces
    #: only directly adjacent blocks.
    log_coalesce_gap_blocks: int = 4
    #: Retention period for the transaction log (section 4.3); seconds.
    undo_interval_s: float = 24 * 3600.0
    #: Target recovery interval driving periodic checkpoints; seconds.
    checkpoint_interval_s: float = 30.0
    #: Lock wait budget before declaring a timeout; simulated seconds.
    lock_timeout_s: float = 10.0
    extensions: LoggingExtensions = field(default_factory=LoggingExtensions)

    def with_extensions(self, **changes) -> "DatabaseConfig":
        """A copy of this config with logging-extension fields replaced."""
        return replace(self, extensions=replace(self.extensions, **changes))

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.page_size < 512 or self.page_size % 256:
            raise ValueError(f"page_size {self.page_size} must be a multiple of 256 >= 512")
        if self.buffer_pool_pages < 8:
            raise ValueError("buffer_pool_pages must be at least 8")
        if self.undo_interval_s <= 0:
            raise ValueError("undo_interval_s must be positive")
        if self.log_coalesce_gap_blocks < 0:
            raise ValueError("log_coalesce_gap_blocks must be >= 0")
        if self.extensions.page_image_interval < 0:
            raise ValueError("page_image_interval must be >= 0")
