"""Regular (copy-on-write) database snapshots — the feature the paper
extends (section 2.2)."""

from repro.snapshot.base import RegularSnapshot

__all__ = ["RegularSnapshot"]
