"""Regular database snapshots: copy-on-write as of creation time.

This is SQL Server's pre-existing snapshot feature (paper section 2.2),
implemented as a degenerate as-of snapshot whose SplitLSN is "now":

* At creation the primary is checkpointed and a copy-on-write hook is
  registered: the first time any page is modified after creation, its
  current content is pushed to the snapshot's sparse file.
* A page miss on the snapshot therefore reads either the pushed pre-image
  or a primary page that was never modified since the split — in both
  cases ``PreparePageAsOf`` finds ``pageLSN ≤ SplitLSN`` and undoes
  nothing.

Keeping both snapshot flavors on one code path makes the paper's
related-work contrast (proactive copy-on-write versus on-demand log-based
undo, section 7.1) directly measurable: the ablation benchmark compares
the write amplification of the COW hook against the extra logging of the
as-of scheme.
"""

from __future__ import annotations

from repro.core.asof import AsOfSnapshot
from repro.engine.recovery import analyze_log
from repro.storage.page import Page


class RegularSnapshot(AsOfSnapshot):
    """Copy-on-write snapshot as of its creation instant."""

    def __init__(self, db, name: str, split_lsn: int, *, analysis=None) -> None:
        super().__init__(db, name, split_lsn, analysis=analysis)
        self._hook_installed = False

    @classmethod
    def create_now(cls, db, name: str) -> "RegularSnapshot":
        """Create a snapshot of the current committed state."""
        db.checkpoint()
        split = max(db.log.end_lsn - 1, db.log.start_lsn)
        base = db.last_checkpoint_lsn or db.log.start_lsn
        analysis = analyze_log(db.log, base, split + 1)
        snap = cls(db, name, split, analysis=analysis)
        snap._collect_missing_locks()
        snap._install_hook()
        return snap

    def _install_hook(self) -> None:
        if self._hook_installed:
            return
        self.db.modifier.cow_hooks.append(self._cow_push)
        self._hook_installed = True

    def _cow_push(self, page: Page) -> None:
        """Push the pre-modification image on first write (copy-on-write)."""
        if self.dropped:
            return
        if not page.is_formatted():
            return
        page_id = page.page_id
        if page_id in self.sparse:
            return
        if page.page_lsn > self.split_lsn:
            # Already newer than the snapshot (e.g. written while the hook
            # was being installed); the undo path would handle it anyway.
            return
        self.sparse.write(page_id, bytes(page.data))

    def cow_pushed_pages(self) -> int:
        """Pages pushed proactively (the overhead section 7.1 criticizes)."""
        return self.sparse.page_count

    def drop(self) -> None:
        if self._hook_installed:
            try:
                self.db.modifier.cow_hooks.remove(self._cow_push)
            except ValueError:
                pass
            self._hook_installed = False
        super().drop()
