"""The boot page (page 0): durable engine metadata.

Holds the last checkpoint LSN (recovery's starting point and the anchor of
the backward checkpoint chain that SplitLSN search walks) and the
retention period (section 4.3's ``UNDO_INTERVAL``). The boot record is an
ordinary slotted-page record updated through logged page modifications, so
even engine settings are as-of recoverable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.errors import StorageError
from repro.storage.page import Page
from repro.wal.lsn import NULL_LSN

_BOOT = struct.Struct("<Qdd")

#: Page id of the boot page.
BOOT_PAGE_ID = 0
#: Slot of the boot record within the boot page.
BOOT_SLOT = 0


@dataclass(frozen=True)
class BootRecord:
    """Decoded boot-page record."""

    last_checkpoint_lsn: int = NULL_LSN
    undo_interval_s: float = 24 * 3600.0
    created_wall: float = 0.0

    def pack(self) -> bytes:
        return _BOOT.pack(
            self.last_checkpoint_lsn,
            self.undo_interval_s,
            self.created_wall,
        )

    @classmethod
    def unpack(cls, payload: bytes) -> "BootRecord":
        if len(payload) < _BOOT.size:
            raise StorageError("boot record too short")
        last, interval, created = _BOOT.unpack_from(payload, 0)
        return cls(last, interval, created)

    def with_changes(self, **changes) -> "BootRecord":
        return replace(self, **changes)


def read_boot_record(page: Page) -> BootRecord:
    """Parse the boot record from a (formatted) boot page."""
    if not page.is_formatted() or page.slot_count <= BOOT_SLOT:
        raise StorageError("boot page is not initialized")
    return BootRecord.unpack(page.record(BOOT_SLOT))
