"""The Engine: databases and snapshots on one simulated machine."""

from __future__ import annotations

from contextlib import contextmanager
from datetime import datetime

from typing import TYPE_CHECKING, Iterator

from repro.config import DatabaseConfig, SimEnv
from repro.engine.database import Database
from repro.errors import CatalogError, SnapshotError
from repro.sim.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.asof import AsOfSnapshot
    from repro.core.snapshot_pool import SnapshotPool
    from repro.snapshot.base import RegularSnapshot


class Engine:
    """Top-level entry point: owns databases and their snapshots.

    All databases share one :class:`~repro.config.SimEnv` (one simulated
    machine: one clock, shared data/log devices) — the paper's concurrent
    experiment (section 6.3) depends on snapshots and the OLTP workload
    competing for the same media.
    """

    def __init__(
        self,
        env: SimEnv | None = None,
        config: DatabaseConfig | None = None,
        snapshot_pool_budget: int | None = None,
    ) -> None:
        from repro.core.snapshot_pool import DEFAULT_POOL_BUDGET_BYTES, SnapshotPool

        self.env = env if env is not None else SimEnv.for_tests()
        self.default_config = config if config is not None else DatabaseConfig()
        self.databases: dict[str, Database] = {}
        self.snapshots: dict[str, "AsOfSnapshot"] = {}
        #: Ephemeral snapshots backing inline ``AS OF`` reads.
        self.snapshot_pool: "SnapshotPool" = SnapshotPool(
            snapshot_pool_budget
            if snapshot_pool_budget is not None
            else DEFAULT_POOL_BUDGET_BYTES
        )

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def create_database(self, name: str, config: DatabaseConfig | None = None) -> Database:
        if name in self.databases or name in self.snapshots:
            raise CatalogError(f"database {name!r} already exists")
        db = Database(name, config or self.default_config, self.env)
        self.databases[name] = db
        return db

    def database(self, name: str) -> Database:
        db = self.databases.get(name)
        if db is None:
            raise CatalogError(f"no such database: {name!r}")
        return db

    def drop_database(self, name: str) -> None:
        db = self.database(name)
        for snap_name in [n for n, s in self.snapshots.items() if s.db is db]:
            self.drop_snapshot(snap_name)
        self.snapshot_pool.purge_database(name)
        del self.databases[name]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def resolve_as_of(self, as_of) -> float:
        """Normalize an as-of spec (simulated seconds, datetime, or an ISO
        string like the paper's ``'2012-03-22 17:26:25.473'``) to simulated
        seconds."""
        if isinstance(as_of, (int, float)):
            return float(as_of)
        if isinstance(as_of, datetime):
            return SimClock.from_datetime(as_of)
        if isinstance(as_of, str):
            try:
                moment = datetime.fromisoformat(as_of)
            except ValueError as err:
                raise ValueError(
                    f"cannot interpret as-of time {as_of!r}: expected an ISO "
                    f"timestamp like '2012-03-22 17:26:25.473'"
                ) from err
            return SimClock.from_datetime(moment)
        raise ValueError(f"cannot interpret as-of time {as_of!r}")

    def create_asof_snapshot(self, db_name: str, snap_name: str, as_of) -> "AsOfSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db AS OF '...'``."""
        from repro.core.asof import AsOfSnapshot

        if snap_name in self.snapshots or snap_name in self.databases:
            raise SnapshotError(f"name {snap_name!r} already in use")
        db = self.database(db_name)
        snap = AsOfSnapshot.create(db, snap_name, self.resolve_as_of(as_of))
        self.snapshots[snap_name] = snap
        db.snapshots[snap_name] = snap
        return snap

    def create_snapshot(self, db_name: str, snap_name: str) -> "RegularSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db`` (copy-on-write)."""
        from repro.snapshot.base import RegularSnapshot

        if snap_name in self.snapshots or snap_name in self.databases:
            raise SnapshotError(f"name {snap_name!r} already in use")
        db = self.database(db_name)
        snap = RegularSnapshot.create_now(db, snap_name)
        self.snapshots[snap_name] = snap
        db.snapshots[snap_name] = snap
        return snap

    def snapshot(self, name: str) -> "AsOfSnapshot":
        snap = self.snapshots.get(name)
        if snap is None:
            raise SnapshotError(f"no such snapshot: {name!r}")
        return snap

    def drop_snapshot(self, name: str) -> None:
        snap = self.snapshot(name)
        snap.drop()
        snap.db.snapshots.pop(name, None)
        del self.snapshots[name]

    # ------------------------------------------------------------------
    # Inline point-in-time reads (pooled ephemeral snapshots)
    # ------------------------------------------------------------------

    @contextmanager
    def query_as_of(self, db_name: str, as_of) -> Iterator["AsOfSnapshot"]:
        """Lease a read-only view of ``db_name`` as of ``as_of``.

        No DDL, no naming, no manual drop: the view comes from the
        engine's :class:`~repro.core.snapshot_pool.SnapshotPool`, so
        repeated queries at the same point in time share one snapshot and
        its already-prepared pages. ``as_of`` accepts simulated seconds, a
        :class:`datetime.datetime`, or an ISO timestamp string (anything
        :meth:`resolve_as_of` takes).

        ::

            with engine.query_as_of("shop", "2012-03-22 17:26:25") as snap:
                rows = list(snap.scan("items"))
        """
        db = self.database(db_name)
        snapshot = self.snapshot_pool.acquire(db, self.resolve_as_of(as_of))
        try:
            yield snapshot
        finally:
            self.snapshot_pool.release(snapshot)

    # ------------------------------------------------------------------

    def sql(self, text: str, database: str | None = None):
        """Execute SQL against this engine (see :mod:`repro.sql`)."""
        from repro.sql.executor import Session

        session = Session(self, database)
        return session.execute(text)

    def session(self, database: str | None = None):
        """An interactive SQL session bound to this engine."""
        from repro.sql.executor import Session

        return Session(self, database)
