"""The Engine: databases and snapshots on one simulated machine."""

from __future__ import annotations

from contextlib import contextmanager
from datetime import datetime

from typing import TYPE_CHECKING, Iterator

from repro.chaos import FailoverCoordinator, FaultInjector, RetryPolicy
from repro.config import DatabaseConfig, MonitorConfig, SimEnv
from repro.engine.database import Database
from repro.engine.scheduler import DEFAULT_TIMEOUT_S, SessionScheduler
from repro.latch import Latch
from repro.errors import (
    CatalogError,
    FaultInjectedError,
    ReplicationError,
    ReplicationFaultError,
    RetentionExceededError,
    SnapshotError,
)
from repro.obs.install import (
    install_archiver_metrics,
    install_database_metrics,
    install_engine_metrics,
    install_replica_metrics,
    install_shipper_metrics,
    remove_database_metrics,
    remove_replica_metrics,
)
from repro.obs.monitor import EngineMonitor
from repro.obs.slowlog import SlowQueryLog
from repro.sim.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.archive.archiver import LogArchiver
    from repro.core.asof import AsOfSnapshot
    from repro.core.snapshot_pool import SnapshotPool
    from repro.replication.replica import Replica
    from repro.replication.shipper import LogShipper
    from repro.snapshot.base import RegularSnapshot


class _ArchiveLeases:
    """Lease-shaped no-op pool for archive-backed as-of readers.

    The archive fallback serves whole restored database copies cached by
    the engine, not pooled snapshots — releasing the "lease" is a no-op,
    the engine's small per-database cache owns the copies' lifetime.
    """

    def release(self, snapshot) -> None:
        return


class Engine:
    """Top-level entry point: owns databases and their snapshots.

    All databases share one :class:`~repro.config.SimEnv` (one simulated
    machine: one clock, shared data/log devices) — the paper's concurrent
    experiment (section 6.3) depends on snapshots and the OLTP workload
    competing for the same media.
    """

    def __init__(
        self,
        env: SimEnv | None = None,
        config: DatabaseConfig | None = None,
        snapshot_pool_budget: int | None = None,
        version_store_budget: int | None = None,
        monitor_config: MonitorConfig | None = None,
    ) -> None:
        from repro.core.snapshot_pool import DEFAULT_POOL_BUDGET_BYTES, SnapshotPool
        from repro.core.version_store import (
            DEFAULT_VERSION_STORE_BUDGET_BYTES,
            PageVersionStore,
        )

        self.env = env if env is not None else SimEnv.for_tests()
        #: Catalog latch: serializes create/drop/promote of databases,
        #: snapshots, replicas, shippers and archivers against each other
        #: and against sessions resolving names. Top of the engine's
        #: latch order (see docs/concurrency.md) — safe to hold across
        #: any subsystem call.
        self.latch = Latch("engine_catalog")
        self.default_config = config if config is not None else DatabaseConfig()
        self.databases: dict[str, Database] = {}
        self.snapshots: dict[str, "AsOfSnapshot"] = {}
        #: Cross-snapshot page version store: prepared page images keyed
        #: by their validity interval, shared by every database's pooled,
        #: named and replica-side snapshots (``0`` disables it).
        self.version_store = PageVersionStore(
            version_store_budget
            if version_store_budget is not None
            else DEFAULT_VERSION_STORE_BUDGET_BYTES,
            iostats=self.env.stats,
        )
        #: Ephemeral snapshots backing inline ``AS OF`` reads.
        self.snapshot_pool: "SnapshotPool" = SnapshotPool(
            snapshot_pool_budget
            if snapshot_pool_budget is not None
            else DEFAULT_POOL_BUDGET_BYTES
        )
        #: Warm standbys by name (see :mod:`repro.replication`).
        self.replicas: dict[str, "Replica"] = {}
        #: One outbound log shipper per primary database name.
        self._shippers: dict[str, "LogShipper"] = {}
        #: One log archiver per archived database name (see
        #: :mod:`repro.archive`). Entries outlive their database: the
        #: archive can still restore a dropped database's history.
        self.archives: dict[str, "LogArchiver"] = {}
        #: Archive-backed as-of readers: db name -> [(split_lsn, copy)],
        #: LRU-bounded (the ``query_as_of`` past-retention fallback).
        self._archive_reads: dict[str, list] = {}
        self._archive_leases = _ArchiveLeases()
        #: Route read-only SQL SELECTs to caught-up replicas when enabled.
        self.read_offload = False
        #: A replica is routable for current reads only within this lag.
        self.read_offload_max_lag_bytes = 1 << 20
        #: Continuous monitoring (see :mod:`repro.obs.monitor`): ``None``
        #: until :meth:`start_monitor` arms it.
        self.monitor_config = (
            monitor_config if monitor_config is not None else MonitorConfig()
        )
        self.monitor_config.validate()
        self.monitor: "EngineMonitor | None" = None
        #: Always-on slow-statement capture (``SHOW SLOW QUERIES``).
        self.slow_queries = SlowQueryLog(
            self.monitor_config.slow_query_sim_s,
            self.monitor_config.slow_query_capacity,
        )
        #: Seeded fault injector (``None`` until :meth:`enable_chaos`).
        self.chaos: FaultInjector | None = None
        #: Automatic failover (``None`` until :meth:`enable_auto_failover`).
        self.ha: FailoverCoordinator | None = None
        #: The HA timeline: crash / suspect / confirmed_down / failover
        #: events, seq-numbered and sim-timestamped (deterministic).
        self.ha_events: list[dict] = []
        #: Backoff for replica apply retries under injected faults.
        self._apply_retry = RetryPolicy()
        install_engine_metrics(self)

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def _check_name_free(self, name: str) -> None:
        if name in self.databases:
            raise CatalogError(f"database {name!r} already exists")
        if name in self.snapshots:
            raise CatalogError(f"name {name!r} is in use by a snapshot")
        if name in self.replicas:
            raise CatalogError(f"name {name!r} is in use by a replica")

    def create_database(self, name: str, config: DatabaseConfig | None = None) -> Database:
        with self.latch:
            return self._create_database_locked(name, config)

    def _create_database_locked(
        self, name: str, config: DatabaseConfig | None
    ) -> Database:
        self._check_name_free(name)
        # A dropped namesake's archive must not serve (or absorb) the new
        # incarnation's history: its LSN space is unrelated. Reusing the
        # name forfeits the old incarnation's archived restorability.
        self.archives.pop(name, None)
        self._archive_reads.pop(name, None)
        # Same reasoning for stored page versions: the new incarnation's
        # LSN space restarts, so a namesake's intervals would lie.
        self.version_store.purge(name)
        db = Database(name, config or self.default_config, self.env)
        db.version_store = self.version_store
        self._register_pool_pin(db)
        self.databases[name] = db
        install_database_metrics(self, db)
        return db

    def _register_pool_pin(self, db: Database) -> None:
        """Pooled splits pin the database's log against retention."""
        db.add_retention_pin(
            lambda name=db.name: self.snapshot_pool.min_pin_lsn(name)
        )

    def database(self, name: str) -> Database:
        db = self.databases.get(name)
        if db is None:
            raise CatalogError(f"no such database: {name!r}")
        return db

    def drop_database(self, name: str) -> None:
        with self.latch:
            return self._drop_database_locked(name)

    def _drop_database_locked(self, name: str) -> None:
        db = self.database(name)
        for snap_name in [n for n, s in self.snapshots.items() if s.db is db]:
            self.drop_snapshot(snap_name)
        for replica_name in [
            n for n, r in self.replicas.items() if r.primary is db
        ]:
            self.drop_replica(replica_name)
        archiver = self.archives.get(name)
        if archiver is not None and not archiver.closed:
            # Capture the durable tail, then stop following the primary.
            archiver.poll()
            archiver.close()
        shipper = self._shippers.pop(name, None)
        if shipper is not None:
            shipper.remove_metrics()
        self.snapshot_pool.purge_database(name)
        self.version_store.purge(name)
        del self.databases[name]
        remove_database_metrics(self, name)
        self.env.metrics.remove_prefix(f"shipper.{name}.")
        self._purge_monitor(
            f"log.{name}.",
            f"retention.{name}.",
            f"shipper.{name}.",
            f"repl.ship.~archive:{name}.",
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def resolve_as_of(self, as_of) -> float:
        """Normalize an as-of spec (simulated seconds, datetime, or an ISO
        string like the paper's ``'2012-03-22 17:26:25.473'``) to simulated
        seconds."""
        if isinstance(as_of, (int, float)):
            return float(as_of)
        if isinstance(as_of, datetime):
            return SimClock.from_datetime(as_of)
        if isinstance(as_of, str):
            try:
                moment = datetime.fromisoformat(as_of)
            except ValueError as err:
                raise ValueError(
                    f"cannot interpret as-of time {as_of!r}: expected an ISO "
                    f"timestamp like '2012-03-22 17:26:25.473'"
                ) from err
            return SimClock.from_datetime(moment)
        raise ValueError(f"cannot interpret as-of time {as_of!r}")

    def create_asof_snapshot(self, db_name: str, snap_name: str, as_of) -> "AsOfSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db AS OF '...'``."""
        from repro.core.asof import AsOfSnapshot

        with self.latch:
            if snap_name in self.snapshots or snap_name in self.databases:
                raise SnapshotError(f"name {snap_name!r} already in use")
            db = self.database(db_name)
            try:
                snap = AsOfSnapshot.create(
                    db, snap_name, self.resolve_as_of(as_of)
                )
            except RetentionExceededError as err:
                raise self._retention_error(db_name, err) from err
            self.snapshots[snap_name] = snap
            db.snapshots[snap_name] = snap
            return snap

    def create_snapshot(self, db_name: str, snap_name: str) -> "RegularSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db`` (copy-on-write)."""
        from repro.snapshot.base import RegularSnapshot

        with self.latch:
            if snap_name in self.snapshots or snap_name in self.databases:
                raise SnapshotError(f"name {snap_name!r} already in use")
            db = self.database(db_name)
            snap = RegularSnapshot.create_now(db, snap_name)
            self.snapshots[snap_name] = snap
            db.snapshots[snap_name] = snap
            return snap

    def snapshot(self, name: str) -> "AsOfSnapshot":
        snap = self.snapshots.get(name)
        if snap is None:
            raise SnapshotError(f"no such snapshot: {name!r}")
        return snap

    def drop_snapshot(self, name: str) -> None:
        with self.latch:
            snap = self.snapshot(name)
            snap.drop()
            snap.db.snapshots.pop(name, None)
            del self.snapshots[name]

    # ------------------------------------------------------------------
    # Replication (log-shipping standbys)
    # ------------------------------------------------------------------

    def shipper_for(self, db_name: str) -> "LogShipper":
        """The (lazily created) outbound log shipper for ``db_name``."""
        from repro.replication.shipper import LogShipper

        with self.latch:
            shipper = self._shippers.get(db_name)
            if shipper is None:
                shipper = LogShipper(self.database(db_name))
                self._shippers[db_name] = shipper
                install_shipper_metrics(self, shipper)
            return shipper

    def add_replica(
        self,
        db_name: str,
        name: str | None = None,
        *,
        apply_delay_s: float = 0.0,
        apply_slots: int = 4,
        config: DatabaseConfig | None = None,
        seed_from_backup: bool = False,
    ) -> "Replica":
        """Create a warm standby of ``db_name`` and start shipping to it.

        By default the replica is seeded by replaying the primary's log
        from its very first record, so the primary's log must not have
        been truncated yet. With ``seed_from_backup`` the standby instead
        starts from the archive's newest backup chain: its pages are laid
        down, any gap between the chain's end and the primary's retained
        log is filled from archived segments, and the ship stream resumes
        from the end-of-restore LSN — a standby can attach long after the
        primary truncated. ``apply_delay_s`` holds received frames for
        that long before applying — the delayed-apply error-recovery
        window.
        """
        from repro.replication.replica import Replica
        from repro.wal.lsn import FIRST_LSN

        with self.latch:
            return self._add_replica_locked(
                Replica,
                FIRST_LSN,
                db_name,
                name,
                apply_delay_s,
                apply_slots,
                config,
                seed_from_backup,
            )

    def _add_replica_locked(
        self,
        Replica,
        FIRST_LSN,
        db_name,
        name,
        apply_delay_s,
        apply_slots,
        config,
        seed_from_backup,
    ) -> "Replica":
        db = self.database(db_name)
        if name is None:
            suffix = 1
            while True:
                name = f"{db_name}_replica{suffix}"
                try:
                    self._check_name_free(name)
                    break
                except CatalogError:
                    suffix += 1
        self._check_name_free(name)
        if db.log.start_lsn != FIRST_LSN and not seed_from_backup:
            raise ReplicationError(
                f"primary {db_name!r} log already truncated at "
                f"{db.log.start_lsn:#x}; a replica cannot be seeded from "
                f"the log alone — use add_replica(seed_from_backup=True) "
                f"with an archived backup chain"
            )
        replica = Replica(
            db,
            name,
            apply_delay_s=apply_delay_s,
            apply_slots=apply_slots,
            config=config,
        )
        # The standby replays the primary's exact log, so its prepared
        # page images are byte-identical to the primary's: both sides
        # share one version store under the primary's key (one budget,
        # mutual reuse across the primary pool and every replica pool).
        replica.db.version_store = self.version_store
        replica.db.version_store_key = db_name
        if seed_from_backup:
            archiver = self.archives.get(db_name)
            if archiver is None or not archiver.store.backups(db_name):
                raise ReplicationError(
                    f"seed_from_backup needs an archived backup of "
                    f"{db_name!r}: call engine.backup_database({db_name!r}) "
                    f"(which enables archiving) first"
                )
            archiver.poll()
            store = archiver.store
            chain = store.newest_chain(db_name)
            replica.seed(store.read_backup_pages(chain), chain[-1].backup_lsn)
            # Fill the gap between the chain's end and whatever the
            # primary still retains from archived segments; the shipper
            # takes over at the archive's edge.
            for blob in store.frames_from(db_name, replica.received_lsn):
                replica.receive(blob)
        shipper = self.shipper_for(db_name)
        # Attach before registering: if the stream cannot resume (a stale
        # chain whose end the primary no longer retains), the engine must
        # not be left tracking a dead, never-attached standby.
        shipper.attach(replica)
        self.replicas[name] = replica
        install_replica_metrics(self, replica)
        shipper.poll()
        replica.apply_ready()
        return replica

    def replica(self, name: str) -> "Replica":
        replica = self.replicas.get(name)
        if replica is None:
            raise CatalogError(f"no such replica: {name!r}")
        return replica

    def drop_replica(self, name: str) -> None:
        with self.latch:
            return self._drop_replica_locked(name)

    def _drop_replica_locked(self, name: str) -> None:
        replica = self.replica(name)
        shipper = self._shippers.get(replica.primary.name)
        if shipper is not None:
            shipper.detach(name)
        replica.drop()
        del self.replicas[name]
        remove_replica_metrics(self, name)
        self._purge_monitor(
            f"replica.{name}.", f"pool.{name}.", f"repl.ship.{name}."
        )

    def replicas_of(self, db_name: str) -> list["Replica"]:
        return [
            r
            for r in self.replicas.values()
            if r.primary.name == db_name and not r.dropped
        ]

    def promote_replica(self, name: str, up_to=None) -> Database:
        """Promote a standby to a writable database registered under its
        own name (failover, or delayed-apply error recovery when ``up_to``
        stops the timeline just before the error)."""
        with self.latch:
            return self._promote_replica_locked(name, up_to)

    def _promote_replica_locked(self, name: str, up_to) -> Database:
        replica = self.replica(name)
        up_to_wall = None if up_to is None else self.resolve_as_of(up_to)
        # Promote first: if it refuses (unreachable point, already-applied
        # guard), the replica stays subscribed and keeps following.
        db = replica.promote(up_to_wall)
        shipper = self._shippers.get(replica.primary.name)
        if shipper is not None:
            shipper.detach(name)
        del self.replicas[name]
        remove_replica_metrics(self, name)
        self._purge_monitor(
            f"replica.{name}.", f"pool.{name}.", f"repl.ship.{name}."
        )
        self._register_pool_pin(db)
        self.databases[name] = db
        install_database_metrics(self, db)
        return db

    def replication_tick(self) -> int:
        """Pump replication once: ship pending log, apply what's eligible.

        Returns the number of records applied across all replicas. The
        workload driver calls this between transactions (the simulated
        stand-in for the shipper/apply daemons of a real deployment).

        Under chaos this is also the engine's survival loop: scheduled
        primary crashes land here, a transient fault in one replica's
        apply is contained to that replica (recorded and retried under
        backoff — every other subscription keeps flowing), and the HA
        coordinator gets its detection/failover tick after the monitor
        has observed the settled state.
        """
        if self.chaos is not None:
            for target in self.chaos.due_crashes(self.env.clock.now()):
                if target in self.databases and not self.databases[target].crashed:
                    self.crash_database(target)
        for shipper in list(self._shippers.values()):
            shipper.poll()
        applied = 0
        now = self.env.clock.now()
        for replica in list(self.replicas.values()):
            if replica.dropped or now < replica.apply_retry_s:
                continue
            try:
                applied += replica.apply_ready()
            except (ReplicationFaultError, FaultInjectedError) as err:
                if not err.transient:
                    raise
                replica.note_apply_fault(err, now, self._apply_retry)
            else:
                replica.note_apply_ok()
        # Tick after shipping/applying: the monitor observes the settled
        # post-pump state, not the transient mid-poll lag.
        self.monitor_tick()
        if self.ha is not None:
            self.ha.tick()
        return applied

    def routing_replica(self, db_name: str) -> "Replica | None":
        """The replica current reads should be offloaded to, if any.

        Only non-delayed replicas within ``read_offload_max_lag_bytes`` of
        the primary qualify; among those, the most caught-up wins. Returns
        ``None`` when reads must stay on the primary.
        """
        if not self.read_offload:
            return None
        from repro.wal.lsn import NULL_LSN

        best = None
        for replica in self.replicas_of(db_name):
            if replica.apply_delay_s > 0:
                continue
            if replica.is_faulted():
                continue  # degrade: route around a standby stuck in apply
            if replica.applied_commit_lsn == NULL_LSN:
                continue
            if replica.lag_bytes() > self.read_offload_max_lag_bytes:
                continue
            if best is None or replica.applied_lsn > best.applied_lsn:
                best = replica
        return best

    def enable_read_offload(self, max_lag_bytes: int | None = None) -> None:
        """Route read-only SQL SELECTs to caught-up replicas."""
        self.read_offload = True
        if max_lag_bytes is not None:
            self.read_offload_max_lag_bytes = max_lag_bytes

    # ------------------------------------------------------------------
    # Chaos & high availability (see repro.chaos and docs/ha.md)
    # ------------------------------------------------------------------

    def enable_chaos(self, seed: int = 0, rules=()) -> FaultInjector:
        """Arm deterministic fault injection across the whole machine.

        One seeded :class:`~repro.chaos.injector.FaultInjector` is shared
        by every component (shippers, replicas, archivers, devices,
        backup/restore) through ``env.chaos``; ``rules`` are
        :class:`~repro.chaos.injector.FaultRule` schedules to start with
        (more can be added on the returned injector). Idempotent — a
        second call adds rules to the existing injector.
        """
        if self.chaos is None:
            self.chaos = FaultInjector(self.env.clock, seed=seed)
            self.env.chaos = self.chaos
            self.env.data_device.chaos = self.chaos
            self.env.log_device.chaos = self.chaos
            for archiver in self.archives.values():
                archiver.store.device.chaos = self.chaos
        for rule in rules:
            self.chaos.add_rule(rule)
        return self.chaos

    def fault_events(self) -> list[dict]:
        """The injector's deterministic fault log (``SHOW FAULTS``)."""
        if self.chaos is None:
            return []
        return self.chaos.events()

    def _record_ha(self, event: str, db: str, detail: str) -> None:
        with self.latch:
            self._record_ha_locked(event, db, detail)

    def _record_ha_locked(self, event: str, db: str, detail: str) -> None:
        self.ha_events.append(
            {
                "seq": len(self.ha_events),
                "t": self.env.clock.now(),
                "event": event,
                "db": db,
                "detail": detail,
            }
        )

    def crash_database(self, name: str) -> None:
        """Halt ``name``: the process dies, durable media survive.

        The durable log tail is drained to subscribers first — the
        tail-log-backup step every failover story starts with; it carries
        no volatile state, only what the dead primary's log device already
        held. The volatile (unflushed) tail is lost, which costs no
        committed work: every commit flushes the log, so committed ⇒
        durable. From here every write raises
        :class:`~repro.errors.DatabaseUnavailableError` and ship polls
        fail until :meth:`failover_to_replica` (or the auto-failover
        coordinator) promotes a survivor.
        """
        with self.latch:
            db = self.database(name)
            if db.crashed:
                return
            shipper = self._shippers.get(name)
            if shipper is not None:
                shipper.poll()
            db.crashed = True
        self._record_ha(
            "crash", name, "primary halted; durable tail drained to subscribers"
        )

    def shipper_errors(self, db_name: str) -> dict[str, int]:
        """Consecutive ship-failure streak per subscriber of ``db_name``'s
        outbound stream (empty when it ships to nobody) — the failure
        detector's liveness read."""
        shipper = self._shippers.get(db_name)
        if shipper is None:
            return {}
        return shipper.subscriber_errors()

    def enable_auto_failover(self, confirm_s: float = 2.0) -> FailoverCoordinator:
        """Arm automatic failover: a failure detector on the monitor's
        ship-health alerts confirms primary death after ``confirm_s``
        sim-seconds of sustained no-progress, then the coordinator
        promotes the most-caught-up healthy replica and re-points the
        surviving topology (see :meth:`failover_to_replica`). Starts the
        monitor if it is not running. Idempotent."""
        if self.ha is not None:
            return self.ha
        if self.monitor is None:
            self.start_monitor()
        self.ha = FailoverCoordinator(self, confirm_s=confirm_s)
        return self.ha

    def failover_to_replica(
        self, db_name: str, replica_name: str | None = None
    ) -> Database:
        """Promote a survivor of ``db_name`` and re-point the topology.

        The winner is ``replica_name`` if given, else the most-caught-up
        (highest received LSN, name as deterministic tie-break) replica
        that is not itself faulted — falling back to faulted survivors
        when nothing healthy remains. Every *other* surviving replica is
        re-attached to the promoted primary's shipper (cursors resume
        LSN-checked — the shipped history is byte-identical), the
        archiver continues onto the same store under the new primary's
        name, the old primary is decommissioned, and read offload
        naturally follows the re-pointed replicas.
        """
        with self.latch:
            return self._failover_locked(db_name, replica_name)

    def _failover_locked(
        self, db_name: str, replica_name: str | None
    ) -> Database:
        survivors = self.replicas_of(db_name)
        if not survivors:
            raise ReplicationError(
                f"cannot fail over {db_name!r}: no surviving replica"
            )
        if replica_name is not None:
            winner = self.replica(replica_name)
            if winner.primary.name != db_name:
                raise ReplicationError(
                    f"replica {replica_name!r} replicates "
                    f"{winner.primary.name!r}, not {db_name!r}"
                )
        else:
            healthy = [r for r in survivors if not r.is_faulted()] or survivors
            winner = max(healthy, key=lambda r: (r.received_lsn, r.name))
        others = [r for r in survivors if r is not winner]
        old_shipper = self._shippers.get(db_name)
        archiver = self.archives.get(db_name)
        promoted = self.promote_replica(winner.name)
        new_shipper = self.shipper_for(promoted.name)
        for rep in others:
            if old_shipper is not None:
                old_shipper.detach(rep.name)
            rep.primary = promoted
            rep.db.version_store_key = promoted.name
            new_shipper.attach(rep)
        rearchived = False
        if archiver is not None and not archiver.closed:
            archiver.close()
            self.enable_archiving(promoted.name, store=archiver.store)
            rearchived = True
        self._decommission(db_name)
        self._record_ha(
            "failover",
            db_name,
            f"promoted {promoted.name}; re-pointed {len(others)} standby(s)"
            + ("; archiving continued" if rearchived else ""),
        )
        new_shipper.poll()
        return promoted

    def _decommission(self, name: str) -> None:
        """Retire a crashed, failed-over primary: every subscription was
        re-pointed already, so this only unhooks the corpse's metrics,
        monitor series and pooled state, then forgets the database."""
        with self.latch:
            return self._decommission_locked(name)

    def _decommission_locked(self, name: str) -> None:
        db = self.databases.get(name)
        if db is None:
            return
        for snap_name in [n for n, s in self.snapshots.items() if s.db is db]:
            self.drop_snapshot(snap_name)
        shipper = self._shippers.pop(name, None)
        if shipper is not None:
            shipper.remove_metrics()
        self.snapshot_pool.purge_database(name)
        self.version_store.purge(name)
        del self.databases[name]
        remove_database_metrics(self, name)
        self.env.metrics.remove_prefix(f"shipper.{name}.")
        self.env.metrics.remove_prefix(f"archive.{name}.")
        self._purge_monitor(
            f"log.{name}.",
            f"retention.{name}.",
            f"shipper.{name}.",
            f"archive.{name}.",
            f"repl.ship.~archive:{name}.",
        )

    # ------------------------------------------------------------------
    # Archive tier (continuous log archiving + backup chains)
    # ------------------------------------------------------------------

    def enable_archiving(
        self,
        db_name: str,
        *,
        store=None,
        directory: str | None = None,
        profile=None,
    ) -> "LogArchiver":
        """Start continuously archiving ``db_name``'s log.

        The archiver subscribes to the database's log shipper, so every
        ``replication_tick`` (or explicit ``poll``) moves durable log into
        the archive *before* retention can truncate it — the subscription
        cursor pins the log until each segment is durably archived.
        ``store`` reuses an existing :class:`~repro.archive.store
        .ArchiveStore`; otherwise one is created (``directory`` persists
        segments as real files, ``profile`` prices the archive media).
        """
        from repro.archive.archiver import LogArchiver
        from repro.archive.store import ArchiveStore
        from repro.errors import ArchiveError

        with self.latch:
            return self._enable_archiving_locked(
                LogArchiver, ArchiveStore, ArchiveError,
                db_name, store, directory, profile,
            )

    def _enable_archiving_locked(
        self, LogArchiver, ArchiveStore, ArchiveError,
        db_name, store, directory, profile,
    ) -> "LogArchiver":
        existing = self.archives.get(db_name)
        if existing is not None and not existing.closed:
            # Idempotent re-enable is fine; a *different* requested store
            # configuration is not.
            same_store = store is None or store is existing.store
            same_dir = directory is None or directory == existing.store.directory
            same_profile = (
                profile is None or profile is existing.store.device.profile
            )
            if not (same_store and same_dir and same_profile):
                raise ArchiveError(
                    f"archiving is already enabled for {db_name!r} with a "
                    f"different store configuration; disable_archiving first"
                )
            return existing
        db = self.database(db_name)
        if store is None:
            # Resume the previous store only when no explicit store
            # configuration was requested; silently dropping a directory/
            # profile argument would fake persistence the caller asked for.
            if existing is not None and directory is None and profile is None:
                store = existing.store
            else:
                store = ArchiveStore(self.env, directory=directory, profile=profile)
        archiver = LogArchiver(db, store, self.shipper_for(db_name))
        self.archives[db_name] = archiver
        install_archiver_metrics(self, archiver)
        archiver.poll()
        return archiver

    def disable_archiving(self, db_name: str) -> None:
        """Stop archiving ``db_name`` (its retention hold is released).

        The archive store itself is kept: already-archived history stays
        restorable, and re-enabling resumes at the archive's edge.
        """
        with self.latch:
            archiver = self.archives.get(db_name)
            if archiver is not None and not archiver.closed:
                archiver.poll()
                archiver.close()
                # The detached subscription's recorded progress series
                # would otherwise go stale and read as a ship stall.
                self._purge_monitor(f"repl.ship.{archiver.name}.")

    def backup_database(self, db_name: str, *, full: bool = False):
        """``BACKUP DATABASE``: archive a backup chained onto the newest.

        The first backup of a database is always full; later ones copy
        only pages modified since the chain's last member (``full=True``
        forces a new full baseline). Enables archiving implicitly — a
        backup chain without the log to roll it forward is not
        restorable to arbitrary points.
        """
        from repro.archive.backup import take_incremental_backup
        from repro.backup.backup import take_full_backup

        archiver = self.enable_archiving(db_name)
        db = self.database(db_name)
        chain = archiver.store.newest_chain(db_name)
        with self.env.tracer.span(
            "backup.database", db=db_name, full=bool(full or not chain)
        ):
            if self.chaos is not None:
                self.chaos.hit("backup.page_copy", target=db_name)
            # The backup media here IS the archive store (put_backup
            # charges the archive device), so the generic media charge
            # is off.
            if full or not chain:
                backup = take_full_backup(db, charge_media=False)
            else:
                backup = take_incremental_backup(db, chain[-1], charge_media=False)
            archiver.store.put_backup(backup)
            # The backup's checkpoint records are in the log now; archive
            # them promptly so the chain is immediately restorable.
            archiver.poll()
        return backup

    def restore_from_archive(
        self, db_name: str, as_of, new_name: str | None = None
    ) -> Database:
        """Materialize ``db_name`` as of ``as_of`` from the archive.

        Works for any time the archive covers — including times older
        than the primary's retention horizon, and databases that no
        longer exist. Returns a read-only database registered under
        ``new_name`` (default ``<db>_restored<N>``).
        """
        from repro.archive.restore import restore_from_archive
        from repro.errors import ArchiveError

        archiver = self.archives.get(db_name)
        if archiver is None:
            raise ArchiveError(
                f"no archive for {db_name!r}: call "
                f"engine.backup_database({db_name!r}) (or enable_archiving) "
                f"while the history you need is still retained"
            )
        if not archiver.closed:
            archiver.poll()
        if new_name is None:
            suffix = 1
            while True:
                new_name = f"{db_name}_restored{suffix}"
                try:
                    self._check_name_free(new_name)
                    break
                except CatalogError:
                    suffix += 1
        self._check_name_free(new_name)
        with self.env.tracer.span("archive.restore", db=db_name, target=new_name):
            if self.chaos is not None:
                self.chaos.hit("restore.page_copy", target=db_name)
            return restore_from_archive(
                self, archiver.store, db_name, self.resolve_as_of(as_of), new_name
            )

    def _retention_error(
        self, db_name: str, err, archive_failure=None
    ) -> RetentionExceededError:
        """Rebuild a retention failure so it names the ways out.

        ``archive_failure`` is the exception an attempted archive fallback
        died with — recommending ``restore_from_archive`` would then be a
        dead end, so the actual cause is surfaced instead.
        """
        if archive_failure is not None:
            archive_part = (
                f"the archive could not serve this time ({archive_failure})"
            )
        elif db_name in self.archives:
            archive_part = (
                f"restore from the archive (engine.restore_from_archive"
                f"({db_name!r}, t))"
            )
        else:
            archive_part = (
                f"an archive restore (engine.backup_database({db_name!r}) "
                f"ahead of time, then engine.restore_from_archive)"
            )
        return RetentionExceededError(
            f"{err}; options past the retention horizon: {archive_part}"
            f" or a delayed-apply replica (engine.add_replica({db_name!r}, "
            f"apply_delay_s=...), then read_as_of/promote within its window)"
        )

    def _archive_fallback_reader(self, db_name: str, wall: float, err):
        """An archive-backed read-only copy covering ``wall``, or raise.

        Backs ``query_as_of``/``pin_as_of`` once the pool's split crosses
        the retention horizon: the engine keeps a tiny LRU of restored
        copies keyed by SplitLSN, so repeated reads at one past time pay
        for one restore. Raises the enriched retention error when no
        archive can serve the time.
        """
        from repro.errors import ArchiveError, BackupError

        archive_failure = None
        archiver = self.archives.get(db_name)
        if archiver is not None:
            try:
                if not archiver.closed:
                    archiver.poll()
                from repro.archive.restore import plan_restore, restore_from_archive

                # One plan serves both the cache key (its SplitLSN) and,
                # on a miss, the restore itself.
                plan = plan_restore(archiver.store, db_name, wall)
                split = plan.split_lsn
                cached = self._archive_reads.setdefault(db_name, [])
                for index, (cached_split, reader) in enumerate(cached):
                    if cached_split == split:
                        cached.append(cached.pop(index))
                        return reader
                reader = restore_from_archive(
                    self,
                    archiver.store,
                    db_name,
                    wall,
                    f"~archive:{db_name}@{split:#x}",
                    register=False,
                    plan=plan,
                )
                cached.append((split, reader))
                del cached[:-2]
                return reader
            except (ArchiveError, BackupError, RetentionExceededError) as caught:
                archive_failure = caught
        raise self._retention_error(db_name, err, archive_failure) from err

    # ------------------------------------------------------------------
    # Inline point-in-time reads (pooled ephemeral snapshots)
    # ------------------------------------------------------------------

    def _route_as_of(self, db_name: str, wall: float) -> "Replica | None":
        """A replica that can serve ``wall`` without advancing its apply
        cursor (delayed replicas keep their safety window intact).

        Coverage needs the replica to have applied every commit at or
        before ``wall``: guaranteed when its last applied commit is
        strictly newer, or when it is fully caught up with the primary's
        durable log (commits *at* ``wall`` may tie on the timestamp).
        """
        from repro.wal.lsn import NULL_LSN

        best = None
        for replica in self.replicas_of(db_name):
            if replica.is_faulted():
                continue  # degrade: route around a standby stuck in apply
            if replica.applied_commit_lsn == NULL_LSN:
                continue
            if replica.applied_wall <= wall and replica.lag_bytes() > 0:
                continue
            if best is None or replica.applied_lsn > best.applied_lsn:
                best = replica
        return best

    def pin_as_of(self, db_name: str, as_of):
        """Acquire a pooled as-of lease; returns ``(pool, snapshot)``.

        Prefers a caught-up standby's pool (read scale-out: the primary's
        media never sees the snapshot's page preparation); falls back to
        the engine pool over the primary. When the requested time lies
        past the retention horizon and the database is archived, the
        lease is an archive-backed read-only copy instead (released as a
        no-op — the engine caches those copies). Callers must release the
        snapshot back to the returned pool (``USE ... AS OF`` sessions
        hold the lease across statements; :meth:`query_as_of` scopes it).
        """
        wall = self.resolve_as_of(as_of)
        tracer = self.env.tracer
        started = self.env.clock.now()
        with tracer.span("asof.pin", db=db_name) as span:
            try:
                replica = self._route_as_of(db_name, wall)
                if replica is not None:
                    span.set(route=replica.name)
                    return replica.snapshot_pool, replica.snapshot_pool.acquire(
                        replica.db, wall
                    )
                db = self.database(db_name)
                span.set(route="primary")
                return self.snapshot_pool, self.snapshot_pool.acquire(db, wall)
            except RetentionExceededError as err:
                span.set(route="archive")
                with tracer.span("asof.archive_fallback", db=db_name):
                    reader = self._archive_fallback_reader(db_name, wall, err)
                return self._archive_leases, reader
            finally:
                self.env.metrics.histogram(
                    "asof.pin_sim_s", "sim-seconds to lease an AS OF view"
                ).observe(self.env.clock.now() - started)

    @contextmanager
    def query_as_of(
        self, db_name: str, as_of, *, replica: str | None = None
    ) -> Iterator["AsOfSnapshot"]:
        """Lease a read-only view of ``db_name`` as of ``as_of``.

        No DDL, no naming, no manual drop: the view comes from a
        :class:`~repro.core.snapshot_pool.SnapshotPool`, so repeated
        queries at the same point in time share one snapshot and its
        already-prepared pages. When a caught-up standby exists the lease
        comes from *its* pool, offloading the point-in-time read entirely.
        A time past the retention horizon is served from an archive-backed
        restored copy when the database is archived (the yielded reader is
        then a read-only :class:`~repro.engine.database.Database`).
        ``replica`` forces a specific standby (the delayed-recovery path:
        it applies forward as needed to cover ``as_of``). ``as_of``
        accepts simulated seconds, a :class:`datetime.datetime`, or an ISO
        timestamp string (anything :meth:`resolve_as_of` takes).

        ::

            with engine.query_as_of("shop", "2012-03-22 17:26:25") as snap:
                rows = list(snap.scan("items"))
        """
        if replica is not None:
            rep = self.replica(replica)
            if rep.primary.name != db_name:
                raise CatalogError(
                    f"replica {replica!r} replicates "
                    f"{rep.primary.name!r}, not {db_name!r}"
                )
            with rep.read_as_of(self.resolve_as_of(as_of)) as snapshot:
                yield snapshot
            return
        pool, snapshot = self.pin_as_of(db_name, as_of)
        try:
            yield snapshot
        finally:
            pool.release(snapshot)

    def drain_snapshot_pools(self, max_txns: int | None = None) -> int:
        """Drive pending background undo on pooled snapshots (engine pool
        and every replica pool); returns transactions drained."""
        drained = self.snapshot_pool.drain(max_txns)
        for replica in self.replicas.values():
            if replica.dropped:
                continue
            budget = None if max_txns is None else max_txns - drained
            if budget is not None and budget <= 0:
                break
            drained += replica.snapshot_pool.drain(budget)
        return drained

    def version_store_stats(self) -> dict:
        """The cross-snapshot version store's counters, as a plain dict
        (hit/miss/publish/eviction/invalidation plus byte occupancy) —
        the observability surface benchmarks and the CI perf gate read."""
        return self.version_store.as_dict()

    # ------------------------------------------------------------------
    # Observability (see repro.obs and docs/observability.md)
    # ------------------------------------------------------------------

    @property
    def metrics(self):
        """The env-wide :class:`~repro.obs.registry.MetricsRegistry`."""
        return self.env.metrics

    def metrics_snapshot(self, like: str | None = None) -> dict:
        """The canonical metrics document: counters, derived gauges and
        histograms for every subsystem, optionally filtered by the same
        glob ``SHOW METRICS LIKE`` accepts. Deterministic for seeded
        runs — timing is simulated, keys are sorted."""
        return self.env.metrics.snapshot(like)

    def reset_metrics(self) -> None:
        """Zero every counter and histogram (gauges are derived)."""
        self.env.metrics.reset()

    @contextmanager
    def trace(self, name: str = "trace"):
        """``with engine.trace() as t:`` — span-trace the block.

        While the block runs, every instrumented boundary (SQL execute,
        AS OF pin/resolve/prepare, pool acquire, version-store probe,
        chain walk, batched log reads, shipping/apply, archive) opens a
        nested span; after the block, ``t.root`` is the finished span
        tree (``t.render()`` for text, ``t.as_dict()`` for JSON). Spans
        carry simulated elapsed time and per-span I/O-counter deltas.
        """
        handle = self.env.tracer.begin(name)
        try:
            yield handle
        finally:
            self.env.tracer.finish(handle)

    def set_version_store_budget(self, budget_bytes: int) -> None:
        """Resize (or, with ``0``, disable) the shared version store."""
        self.version_store.set_budget(budget_bytes)

    # ------------------------------------------------------------------
    # Continuous monitoring (see repro.obs.monitor)
    # ------------------------------------------------------------------

    def start_monitor(
        self,
        *,
        config: MonitorConfig | None = None,
        rules=None,
        like: str | None = None,
    ) -> "EngineMonitor":
        """Arm continuous monitoring: the recorder takes its first sample
        now and further samples on its sim-clock cadence from the
        engine's pump points (every SQL statement, every
        ``replication_tick``). Idempotent unless ``config``/``rules``
        ask for a different setup while a monitor is live."""
        if self.monitor is not None:
            if config is not None or rules is not None or like is not None:
                raise ValueError(
                    "monitor already started; stop_monitor() before "
                    "reconfiguring"
                )
            return self.monitor
        if config is not None:
            config.validate()
            self.monitor_config = config
        self.monitor = EngineMonitor(
            self.env.metrics,
            self.env.clock,
            self.monitor_config,
            rules=rules,
            like=like,
        )
        self.monitor.start()
        return self.monitor

    def stop_monitor(self) -> None:
        """Disarm monitoring; recorded history and alert state are
        discarded."""
        self.monitor = None

    def monitor_tick(self) -> bool:
        """One pump-point tick (no-op when the monitor is off); returns
        whether a sample+evaluation ran."""
        if self.monitor is None:
            return False
        return self.monitor.tick()

    def monitor_history(
        self, like: str | None = None, window_s: float | None = None
    ) -> dict:
        """Windowed per-series summaries from the recorder (empty when
        the monitor is off)."""
        if self.monitor is None:
            return {}
        return self.monitor.history(like, window_s)

    def active_alerts(self) -> list[dict]:
        """Currently-firing alert conditions (empty when the monitor is
        off)."""
        if self.monitor is None:
            return []
        return self.monitor.active_alerts()

    def alert_events(self) -> list[dict]:
        """The bounded firing/cleared event timeline, oldest first."""
        if self.monitor is None:
            return []
        return self.monitor.events()

    def health(self) -> dict:
        """Per-subsystem OK/DEGRADED/CRITICAL rollup of active alerts.

        With the monitor off this degrades gracefully to an overall OK
        with ``monitoring: False`` — callers can always read it.
        """
        from repro.obs.health import HEALTH_SCHEMA, OK

        if self.monitor is None:
            return {
                "schema": HEALTH_SCHEMA,
                "overall": OK,
                "monitoring": False,
                "subsystems": {},
            }
        doc = self.monitor.health()
        doc["monitoring"] = True
        return doc

    def on_alert(self, pattern: str, callback) -> None:
        """Subscribe ``callback(event)`` to firing/cleared transitions of
        rules matching ``pattern`` — the hook HA failover logic uses to
        react to ``repl.apply_lag``. Requires a started monitor."""
        if self.monitor is None:
            raise ValueError("start_monitor() before subscribing to alerts")
        self.monitor.on_alert(pattern, callback)

    def _purge_monitor(self, *prefixes: str) -> None:
        """Drop a dead subsystem's series and alert conditions (ghost
        alerts must not outlive a DROP/promote)."""
        if self.monitor is None:
            return
        for prefix in prefixes:
            self.monitor.remove_prefix(prefix)

    # ------------------------------------------------------------------
    # Concurrent sessions (see repro.engine.scheduler)
    # ------------------------------------------------------------------

    def run_sessions(
        self,
        tasks,
        workers: int = 4,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> list:
        """Run session tasks concurrently against this engine.

        ``tasks`` is an iterable of callables — each one a whole session
        (open a SQL session, run a transaction mix, sweep AS OF reads,
        pump replication) executed entirely on one of ``workers`` threads.
        Results return in task order; the first task exception re-raises
        after all workers drain; a batch that outlives ``timeout_s``
        dumps every thread's stack and raises
        :class:`~repro.engine.scheduler.SchedulerTimeout` (the
        deadlock-fails-fast contract the stress suite relies on).

        Tasks taking an argument receive the engine::

            engine.run_sessions([
                lambda: engine.sql("INSERT ..."),
                lambda: engine.replication_tick(),
            ], workers=2)
        """
        return SessionScheduler(workers).run(tasks, timeout_s)

    # ------------------------------------------------------------------

    def sql(self, text: str, database: str | None = None):
        """Execute SQL against this engine (see :mod:`repro.sql`)."""
        from repro.sql.executor import Session

        session = Session(self, database)
        try:
            return session.execute(text)
        finally:
            # One-shot sessions release any AS OF pin immediately.
            session.close()

    def session(self, database: str | None = None):
        """An interactive SQL session bound to this engine.

        Sessions are context managers; ``USE <db> AS OF '<time>'`` pins a
        pooled snapshot for the session's lifetime, released by the next
        ``USE``, :meth:`~repro.sql.executor.Session.close`, or the
        ``with`` block's exit.
        """
        from repro.sql.executor import Session

        return Session(self, database)
