"""The Engine: databases and snapshots on one simulated machine."""

from __future__ import annotations

from datetime import datetime

from typing import TYPE_CHECKING

from repro.config import DatabaseConfig, SimEnv
from repro.engine.database import Database
from repro.errors import CatalogError, SnapshotError
from repro.sim.clock import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.asof import AsOfSnapshot
    from repro.snapshot.base import RegularSnapshot


class Engine:
    """Top-level entry point: owns databases and their snapshots.

    All databases share one :class:`~repro.config.SimEnv` (one simulated
    machine: one clock, shared data/log devices) — the paper's concurrent
    experiment (section 6.3) depends on snapshots and the OLTP workload
    competing for the same media.
    """

    def __init__(self, env: SimEnv | None = None, config: DatabaseConfig | None = None) -> None:
        self.env = env if env is not None else SimEnv.for_tests()
        self.default_config = config if config is not None else DatabaseConfig()
        self.databases: dict[str, Database] = {}
        self.snapshots: dict[str, "AsOfSnapshot"] = {}

    # ------------------------------------------------------------------
    # Databases
    # ------------------------------------------------------------------

    def create_database(self, name: str, config: DatabaseConfig | None = None) -> Database:
        if name in self.databases or name in self.snapshots:
            raise CatalogError(f"database {name!r} already exists")
        db = Database(name, config or self.default_config, self.env)
        self.databases[name] = db
        return db

    def database(self, name: str) -> Database:
        db = self.databases.get(name)
        if db is None:
            raise CatalogError(f"no such database: {name!r}")
        return db

    def drop_database(self, name: str) -> None:
        db = self.database(name)
        for snap_name in [n for n, s in self.snapshots.items() if s.db is db]:
            self.drop_snapshot(snap_name)
        del self.databases[name]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def resolve_as_of(self, as_of) -> float:
        """Normalize an as-of spec (simulated seconds, datetime, or an ISO
        string like the paper's ``'2012-03-22 17:26:25.473'``) to simulated
        seconds."""
        if isinstance(as_of, (int, float)):
            return float(as_of)
        if isinstance(as_of, datetime):
            return SimClock.from_datetime(as_of)
        if isinstance(as_of, str):
            moment = datetime.fromisoformat(as_of)
            return SimClock.from_datetime(moment)
        raise ValueError(f"cannot interpret as-of time {as_of!r}")

    def create_asof_snapshot(self, db_name: str, snap_name: str, as_of) -> "AsOfSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db AS OF '...'``."""
        from repro.core.asof import AsOfSnapshot

        if snap_name in self.snapshots or snap_name in self.databases:
            raise SnapshotError(f"name {snap_name!r} already in use")
        db = self.database(db_name)
        snap = AsOfSnapshot.create(db, snap_name, self.resolve_as_of(as_of))
        self.snapshots[snap_name] = snap
        db.snapshots[snap_name] = snap
        return snap

    def create_snapshot(self, db_name: str, snap_name: str) -> "RegularSnapshot":
        """``CREATE DATABASE snap AS SNAPSHOT OF db`` (copy-on-write)."""
        from repro.snapshot.base import RegularSnapshot

        if snap_name in self.snapshots or snap_name in self.databases:
            raise SnapshotError(f"name {snap_name!r} already in use")
        db = self.database(db_name)
        snap = RegularSnapshot.create_now(db, snap_name)
        self.snapshots[snap_name] = snap
        db.snapshots[snap_name] = snap
        return snap

    def snapshot(self, name: str) -> "AsOfSnapshot":
        snap = self.snapshots.get(name)
        if snap is None:
            raise SnapshotError(f"no such snapshot: {name!r}")
        return snap

    def drop_snapshot(self, name: str) -> None:
        snap = self.snapshot(name)
        snap.drop()
        snap.db.snapshots.pop(name, None)
        del self.snapshots[name]

    # ------------------------------------------------------------------

    def sql(self, text: str, database: str | None = None):
        """Execute SQL against this engine (see :mod:`repro.sql`)."""
        from repro.sql.executor import Session

        session = Session(self, database)
        return session.execute(text)

    def session(self, database: str | None = None):
        """An interactive SQL session bound to this engine."""
        from repro.sql.executor import Session

        return Session(self, database)
