"""Engine assembly: databases, checkpoints, crash recovery, the engine."""

from repro.engine.database import Database, Table
from repro.engine.engine import Engine

__all__ = ["Database", "Table", "Engine"]
