"""Engine-level session scheduler (ROADMAP item 1).

Dispatches a batch of session tasks — SQL sessions, replication ticks,
AS OF sweeps — across a pool of worker threads against one engine.
``Engine.run_sessions`` is the public surface; this module owns the
thread plumbing.

Design constraints:

* **Tasks are callables**, each run entirely on one worker thread, so a
  task may open a SQL session, BEGIN/COMMIT explicit transactions, and
  hold the per-database write latch across statements (RLocks are
  thread-affine).
* **Results come back in task order**, exceptions included: the first
  task exception is re-raised on the caller's thread after every worker
  drains, so a stress run can't silently swallow a torn invariant.
* **Deadlocks fail fast.** The join takes a wall-clock timeout; on
  expiry the scheduler dumps every thread's stack via :mod:`faulthandler`
  and raises, instead of hanging the runner. (No polling sleeps — the
  engine's replay-determinism lint bans ``time.sleep`` engine-wide;
  blocking queue gets and joins do the waiting.)
"""

from __future__ import annotations

import faulthandler
import queue
import sys
import threading

#: Default per-run wall-clock budget before the scheduler declares a
#: hang, dumps stacks, and raises (seconds, host clock — failure path
#: only, never part of simulated results).
DEFAULT_TIMEOUT_S = 120.0


class SchedulerTimeout(RuntimeError):
    """A session batch did not finish inside the wall-clock budget."""


class SessionScheduler:
    """Runs batches of callables on ``workers`` threads."""

    def __init__(self, workers: int, name: str = "session") -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.name = name

    def run(self, tasks, timeout_s: float = DEFAULT_TIMEOUT_S) -> list:
        """Run every task; return their results in task order.

        Tasks start in submission order and run concurrently, up to
        ``workers`` at a time. If any task raised, the first (by task
        index) exception is re-raised after all workers finish.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        work: queue.Queue = queue.Queue()
        for idx, task in enumerate(tasks):
            work.put((idx, task))
        results: list = [None] * len(tasks)
        failures: list = [None] * len(tasks)

        def worker() -> None:
            while True:
                try:
                    idx, task = work.get_nowait()
                except queue.Empty:
                    return
                try:
                    results[idx] = task()
                except BaseException as exc:  # noqa: BLE001 — re-raised below
                    failures[idx] = exc

        threads = [
            threading.Thread(
                target=worker, name=f"{self.name}-{i}", daemon=True
            )
            for i in range(min(self.workers, len(tasks)))
        ]
        for thread in threads:
            thread.start()
        self._join(threads, timeout_s)
        for exc in failures:
            if exc is not None:
                raise exc
        return results

    def _join(self, threads, timeout_s: float) -> None:
        for thread in threads:
            thread.join(timeout_s)
        stuck = [thread.name for thread in threads if thread.is_alive()]
        if stuck:
            # A worker is wedged — almost certainly a latch-ordering
            # deadlock. Dump every thread's stack so CI shows *where*
            # instead of timing out silently, then raise.
            faulthandler.dump_traceback(file=sys.stderr)
            raise SchedulerTimeout(
                f"session workers still running after {timeout_s:.0f}s: "
                f"{', '.join(stuck)}"
            )
