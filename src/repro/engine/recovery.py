"""ARIES crash recovery: analysis, redo, undo.

Standard three-pass recovery over the durable log tail:

* **Analysis** scans from the last checkpoint, rebuilding the active
  transaction table (seeded from the checkpoint record) and the dirty page
  table (first-modifier LSN per page).
* **Redo** repeats history from the oldest first-modifier LSN, gated by
  each page's ``pageLSN``.
* **Undo** rolls back loser transactions with the same logical-undo
  machinery live rollback uses, logging CLRs; a crash during recovery
  resumes exactly where it left off (CLR ``undo_next`` chains).

The as-of snapshot recovery of paper section 5.2 is a variant of the
analysis pass (bounded at the SplitLSN, collecting locks instead of a
DPT); it lives in :mod:`repro.core.asof` but shares
:func:`analyze_log` below.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.boot import BOOT_PAGE_ID, read_boot_record
from repro.errors import RecoveryError
from repro.txn.transaction import RecoveredTransaction
from repro.txn.undo import LogicalUndo
from repro.wal.apply import RedoApplier
from repro.wal.lsn import FIRST_LSN, NULL_LSN
from repro.wal.records import (
    AbortRecord,
    BeginRecord,
    CheckpointBeginRecord,
    CommitRecord,
)


@dataclass
class AnalysisResult:
    """Outcome of the analysis pass."""

    #: txn_id -> last seen LSN for transactions with no commit/abort.
    losers: dict[int, int] = field(default_factory=dict)
    #: page_id -> first modifying LSN since the scan start.
    dirty_pages: dict[int, int] = field(default_factory=dict)
    #: Highest transaction id observed (to re-seed the id generator).
    max_txn_id: int = 0
    #: txn_id -> list of (object_id, key_bytes) touched by in-flight txns
    #: (used by as-of snapshot recovery to re-acquire locks).
    loser_locks: dict[int, list] = field(default_factory=dict)
    #: Loser txn ids seeded from the starting checkpoint's active table —
    #: their log chains may reach below the scan window (as-of snapshots
    #: walk them for lock collection and retention pinning).
    checkpoint_seeded: set = field(default_factory=set)
    #: LSN the scan actually stopped at.
    end_lsn: int = NULL_LSN


def analyze_log(log, start_lsn: int, to_lsn: int | None = None) -> AnalysisResult:
    """Scan ``[start_lsn, to_lsn)`` rebuilding transaction and page state."""
    result = AnalysisResult()
    for rec in log.scan(start_lsn, to_lsn, stop_on_torn_tail=True):
        result.end_lsn = rec.lsn
        if isinstance(rec, CheckpointBeginRecord) and rec.lsn == start_lsn:
            for txn_id, last_lsn in rec.active_txns:
                result.losers[txn_id] = last_lsn
                result.checkpoint_seeded.add(txn_id)
                result.max_txn_id = max(result.max_txn_id, txn_id)
            continue
        if rec.txn_id:
            result.max_txn_id = max(result.max_txn_id, rec.txn_id)
        if isinstance(rec, BeginRecord):
            result.losers[rec.txn_id] = rec.lsn
        elif isinstance(rec, (CommitRecord, AbortRecord)):
            result.losers.pop(rec.txn_id, None)
            result.loser_locks.pop(rec.txn_id, None)
        elif rec.IS_PAGE_MOD:
            if rec.txn_id in result.losers:
                result.losers[rec.txn_id] = rec.lsn
                key_bytes = getattr(rec, "key_bytes", b"")
                if key_bytes and not rec.is_smo:
                    result.loser_locks.setdefault(rec.txn_id, []).append(
                        (rec.object_id, key_bytes)
                    )
            result.dirty_pages.setdefault(rec.page_id, rec.lsn)
    return result


def redo_pass(db, analysis: AnalysisResult, to_lsn: int | None = None) -> int:
    """Repeat history; returns the number of records replayed.

    Delegates to the :class:`~repro.wal.apply.RedoApplier` shared with
    log-shipping replication: same gating, same page-batched apply loop.
    """
    if not analysis.dirty_pages:
        return 0
    redo_start = min(analysis.dirty_pages.values())

    def gate(rec) -> bool:
        first_lsn = analysis.dirty_pages.get(rec.page_id)
        return first_lsn is not None and rec.lsn >= first_lsn

    applier = RedoApplier(db)
    return applier.apply(
        db.log.scan(redo_start, to_lsn, stop_on_torn_tail=True), gate=gate
    )


def undo_pass(db, analysis: AnalysisResult) -> int:
    """Roll back loser transactions; returns how many were undone."""
    undo = LogicalUndo(db)
    undone = 0
    for txn_id, last_lsn in sorted(
        analysis.losers.items(), key=lambda item: item[1], reverse=True
    ):
        loser = RecoveredTransaction(txn_id)
        loser.last_lsn = last_lsn
        undo.rollback_chain(loser, last_lsn)
        db.log.append(AbortRecord(txn_id=txn_id, prev_txn_lsn=loser.last_lsn))
        undone += 1
    if undone:
        db.log.flush()
    return undone


def run_crash_recovery(db) -> AnalysisResult:
    """Full ARIES restart for ``db``; returns the analysis result."""
    # The boot page tells us where the last checkpoint was. A database
    # that never completed bootstrap is unrecoverable by construction.
    with db.fetch_page(BOOT_PAGE_ID) as guard:
        if not guard.page.is_formatted():
            raise RecoveryError(
                f"database {db.name!r}: boot page missing; nothing to recover"
            )
        boot = read_boot_record(guard.page)
    start = boot.last_checkpoint_lsn or FIRST_LSN
    analysis = analyze_log(db.log, start)
    redo_pass(db, analysis)
    undo_pass(db, analysis)
    db.txns.adopt_txn_id_floor(analysis.max_txn_id)
    db.last_checkpoint_lsn = boot.last_checkpoint_lsn
    db.checkpoint()
    return analysis
