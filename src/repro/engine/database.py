"""The Database: storage, WAL, transactions, catalog and API assembled.

One :class:`Database` owns one data file, one log, one buffer pool and one
catalog. It implements the *undo context* protocol (``env``, ``log``,
``modifier``, ``fetch_page``, ``tree_for_object``) consumed by
:mod:`repro.txn.undo`, and the *reader* protocol (``get``/``scan``/
``tables``) shared with snapshots so queries and workloads run unchanged
against either.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.access.btree import BTree, BTreeServices
from repro.access.heap import Heap
from repro.catalog.catalog import (
    KIND_HEAP,
    KIND_TABLE,
    Catalog,
    ObjectInfo,
)
from repro.catalog.schema import TableSchema
from repro.config import DatabaseConfig, SimEnv
from repro.engine.boot import BOOT_PAGE_ID, BOOT_SLOT, BootRecord, read_boot_record
from repro.latch import Latch
from repro.errors import (
    CatalogError,
    SnapshotReadOnlyError,
)
from repro.storage.allocation import AllocationManager
from repro.storage.buffer import BufferPool
from repro.storage.datafile import FileManager, MemoryDataFile
from repro.storage.page import PageType
from repro.txn.locks import LockManager, LockMode
from repro.txn.manager import TransactionManager
from repro.txn.transaction import Transaction
from repro.wal.apply import PageModifier
from repro.wal.log_manager import LogManager
from repro.wal.lsn import FIRST_LSN, NULL_LSN
from repro.wal.records import InsertRowRecord, UpdateRowRecord


class Table:
    """Handle for one user table (B-tree) or heap."""

    def __init__(self, db: "Database", info: ObjectInfo, schema: TableSchema) -> None:
        self.db = db
        self.info = info
        self.schema = schema
        if info.is_heap:
            self.accessor = Heap(
                object_id=info.object_id,
                first_page_id=info.root_page,
                schema=schema,
                services=db.services,
            )
        else:
            self.accessor = BTree(
                object_id=info.object_id,
                root_page_id=info.root_page,
                schema=schema,
                services=db.services,
            )

    @property
    def name(self) -> str:
        return self.info.name

    def _row(self, row) -> tuple:
        if isinstance(row, dict):
            return self.schema.row_from_dict(row)
        return tuple(row)

    def _lock_key(self, key: tuple) -> tuple:
        if self.info.is_heap:
            return (self.info.object_id,)
        return (self.info.object_id, self.accessor.key_codec.encode(key))

    # -- writes ---------------------------------------------------------

    def insert(self, txn: Transaction, row) -> None:
        self.db.require_writable()
        txn.require_active()
        values = self._row(row)
        if self.info.is_heap:
            # Heap appends never conflict: slots are stable (rollback
            # tombstones in place) and heaps enforce no uniqueness.
            self.accessor.insert(txn, values)
            return
        key = self.schema.key_of(values)
        self.db.locks.acquire(txn, self._lock_key(key), LockMode.EXCLUSIVE, self.db.env.stats)
        self.accessor.insert(txn, values)

    def update(self, txn: Transaction, key: tuple, changes: dict) -> tuple:
        """Update non-key columns of the row at ``key``; returns new row."""
        self.db.require_writable()
        txn.require_active()
        if self.info.is_heap:
            raise CatalogError(f"heap {self.name!r} does not support update")
        key = tuple(key)
        self.db.locks.acquire(txn, self._lock_key(key), LockMode.EXCLUSIVE, self.db.env.stats)
        current = self.accessor.get(key)
        if current is None:
            from repro.errors import KeyNotFoundError

            raise KeyNotFoundError(f"{self.name}: no row with key {key!r}")
        merged = dict(self.schema.row_as_dict(current))
        merged.update(changes)
        new_row = self.schema.row_from_dict(merged)
        self.accessor.update(txn, key, new_row)
        return new_row

    def delete(self, txn: Transaction, key: tuple) -> tuple:
        self.db.require_writable()
        txn.require_active()
        if self.info.is_heap:
            raise CatalogError(f"heap {self.name!r} does not support delete")
        key = tuple(key)
        self.db.locks.acquire(txn, self._lock_key(key), LockMode.EXCLUSIVE, self.db.env.stats)
        return self.accessor.delete(txn, key)

    # -- reads ----------------------------------------------------------

    def get(self, key: tuple, txn: Transaction | None = None) -> tuple | None:
        if self.info.is_heap:
            raise CatalogError(f"heap {self.name!r} has no key access")
        key = tuple(key)
        if txn is not None:
            self.db.locks.acquire(txn, self._lock_key(key), LockMode.SHARED, self.db.env.stats)
        return self.accessor.get(key)

    def scan(self, lo: tuple | None = None, hi: tuple | None = None):
        if self.info.is_heap:
            yield from self.accessor.scan()
        else:
            yield from self.accessor.scan(lo, hi)

    def count(self) -> int:
        return self.accessor.count()


class Database:
    """A single primary database."""

    def __init__(
        self,
        name: str,
        config: DatabaseConfig | None = None,
        env: SimEnv | None = None,
        datafile=None,
        *,
        bootstrap: bool = True,
    ) -> None:
        self.name = name
        #: Per-database write latch: one writing transaction at a time.
        #: ``transaction()`` and ``run_system_txn`` take it for their
        #: whole begin→commit span (reentrant, so system transactions
        #: nested inside a user transaction just re-enter); the SQL
        #: executor's explicit BEGIN/COMMIT holds it across statements.
        #: Reads (current and AS OF) never take it.
        self.write_latch = Latch(f"db:{name}:write")
        self.config = config if config is not None else DatabaseConfig()
        self.config.validate()
        self.env = env if env is not None else SimEnv.for_tests()
        if datafile is None:
            datafile = MemoryDataFile(self.config.page_size)
        self.file_manager = FileManager(datafile, self.env.data_device, self.env.stats)
        self.log = LogManager(
            self.env,
            block_size=self.config.log_block_size,
            cache_blocks=self.config.log_cache_blocks,
            coalesce_gap_blocks=self.config.log_coalesce_gap_blocks,
        )
        self.buffer = BufferPool(
            self.file_manager,
            self.config.buffer_pool_pages,
            self.env.stats,
            self.log,
        )
        self.locks = LockManager()
        self.txns = TransactionManager(self.env, self.log, self.locks)
        self.txns.undo_context = self
        self.modifier = PageModifier(self.log, self.config.extensions, self.env)
        self.alloc = AllocationManager(self.buffer, self.modifier, self.run_system_txn)
        self.services = BTreeServices(
            env=self.env,
            fetch=self.fetch_page,
            modifier=self.modifier,
            alloc=self.alloc,
            system_txn=self.run_system_txn,
        )
        self.catalog = Catalog(self.services)
        self.read_only = False
        #: Set when chaos halts this primary (engine.crash_database): the
        #: write path refuses service until failover retires the node.
        self.crashed = False
        self.last_checkpoint_lsn = NULL_LSN
        self._boot_cache: BootRecord | None = None
        self._table_cache: dict[str, Table] = {}
        self._tree_cache: dict[int, BTree] = {}
        #: Registered snapshot objects (engine wires these).
        self.snapshots: dict[str, object] = {}
        #: Callables returning an LSN the log must retain (or ``NULL_LSN``
        #: / ``None`` for "no pin"). Registered by the engine's snapshot
        #: pool and by log shippers with lagging standbys; consulted by
        #: :func:`repro.core.retention.enforce_retention`.
        self.retention_pins: list = []
        #: When set, overrides the boot record's ``undo_interval_s`` for
        #: retention checks. Replicas retain their whole shipped log, so
        #: they set this to ``inf`` — reachability is then bounded by the
        #: log itself, not the primary's configured window.
        self.retention_override_s: float | None = None
        #: Engine-owned cross-snapshot page version store (wired by the
        #: engine; ``None`` for standalone/restored databases).
        self.version_store = None
        #: Store key identifying this database's *log history*. Replicas
        #: publish under their primary's key — their shipped log is
        #: byte-identical, so their prepared pages are too.
        self.version_store_key: str = name
        #: Upper bound for open-ended published intervals; replicas set
        #: it to their applied LSN (their pages trail the shipped log).
        self.publish_horizon_lsn: int | None = None
        #: Memoized checkpoint back-chain entries (lsn -> (wall, prev)),
        #: consumed by :func:`repro.core.split_lsn.checkpoint_chain`.
        self._ckpt_chain_cache: dict[int, tuple[float, int]] = {}
        if not bootstrap:
            # A shell for log-shipping replication: state materializes by
            # replaying the primary's log from its very first record (the
            # primary's own bootstrap is logged, so the boot page, catalog
            # and allocation map all arrive through redo).
            return
        if self._is_fresh():
            self._bootstrap()
        else:
            self.reload_boot()

    # ------------------------------------------------------------------
    # Bootstrap / boot page
    # ------------------------------------------------------------------

    def _is_fresh(self) -> bool:
        return (
            self.log.end_lsn == FIRST_LSN
            and self.file_manager.page_count == 0
        )

    def _bootstrap(self) -> None:
        """Create the boot page, allocation map, and system catalog."""
        from repro.catalog.catalog import (
            KIND_SYSTEM,
            SYS_COLUMNS_ID,
            SYS_COLUMNS_ROOT,
            SYS_COLUMNS_SCHEMA,
            SYS_OBJECTS_ID,
            SYS_OBJECTS_ROOT,
            SYS_OBJECTS_SCHEMA,
        )

        txn = self.txns.begin(system=True)
        with self.fetch_page(BOOT_PAGE_ID, create=True) as guard:
            self.modifier.format_page(txn, guard, PageType.BOOT)
            boot = BootRecord(
                last_checkpoint_lsn=NULL_LSN,
                undo_interval_s=self.config.undo_interval_s,
                created_wall=self.env.clock.now(),
            )
            rec = InsertRowRecord(
                slot=BOOT_SLOT,
                row=boot.pack(),
                page_id=BOOT_PAGE_ID,
                object_id=0,
            )
            self.modifier.apply(txn, guard, rec)
        for expected_root in (SYS_OBJECTS_ROOT, SYS_COLUMNS_ROOT):
            pid, was_ever = self.alloc.allocate(txn, None)
            if pid != expected_root:
                raise CatalogError(
                    f"bootstrap allocated page {pid}, expected {expected_root}"
                )
            guard = self.fetch_page(pid, create=True)
            with guard:
                self.modifier.format_page(
                    txn,
                    guard,
                    PageType.BTREE,
                    object_id=SYS_OBJECTS_ID if pid == SYS_OBJECTS_ROOT else SYS_COLUMNS_ID,
                    level=0,
                    was_ever_allocated=was_ever,
                )
        self.catalog.sys_objects.insert(
            txn, (SYS_OBJECTS_ID, "sys_objects", KIND_SYSTEM, SYS_OBJECTS_ROOT)
        )
        self.catalog.sys_objects.insert(
            txn, (SYS_COLUMNS_ID, "sys_columns", KIND_SYSTEM, SYS_COLUMNS_ROOT)
        )
        for object_id, schema in (
            (SYS_OBJECTS_ID, SYS_OBJECTS_SCHEMA),
            (SYS_COLUMNS_ID, SYS_COLUMNS_SCHEMA),
        ):
            key_order = {name: pos for pos, name in enumerate(schema.key)}
            for pos, col in enumerate(schema.columns):
                self.catalog.sys_columns.insert(
                    txn,
                    (
                        object_id,
                        pos,
                        col.name,
                        col.ctype.value,
                        col.max_len,
                        col.nullable,
                        col.name in key_order,
                        key_order.get(col.name, 0),
                    ),
                )
        self.txns.commit(txn)
        self.checkpoint()

    def reload_boot(self) -> None:
        """(Re)read the boot page into the metadata cache.

        Replicas and restore paths call this after materializing or
        replaying the boot page; it is the public counterpart of
        :meth:`invalidate_caches` for state that must be *eagerly*
        refreshed (``last_checkpoint_lsn`` feeds recovery decisions).
        """
        with self.fetch_page(BOOT_PAGE_ID) as guard:
            boot = read_boot_record(guard.page)
        self._boot_cache = boot
        self.last_checkpoint_lsn = boot.last_checkpoint_lsn

    def boot_record(self) -> BootRecord:
        if self._boot_cache is None:
            self.reload_boot()
        return self._boot_cache

    def update_boot(self, **changes) -> None:
        """Apply changes to the boot record (logged, system transaction)."""

        def work(txn) -> None:
            with self.fetch_page(BOOT_PAGE_ID) as guard:
                old = read_boot_record(guard.page)
                new = old.with_changes(**changes)
                rec = UpdateRowRecord(
                    slot=BOOT_SLOT,
                    old=old.pack(),
                    new=new.pack(),
                    page_id=BOOT_PAGE_ID,
                    object_id=0,
                )
                self.modifier.apply(txn, guard, rec)
                self._boot_cache = new

        self.run_system_txn(work)

    # ------------------------------------------------------------------
    # Undo-context protocol
    # ------------------------------------------------------------------

    def fetch_page(self, page_id: int, create: bool = False):
        return self.buffer.fetch(page_id, create=create)

    def tree_for_object(self, object_id: int) -> BTree | None:
        from repro.catalog.catalog import SYS_COLUMNS_ID, SYS_OBJECTS_ID

        if object_id == SYS_OBJECTS_ID:
            return self.catalog.sys_objects
        if object_id == SYS_COLUMNS_ID:
            return self.catalog.sys_columns
        tree = self._tree_cache.get(object_id)
        if tree is not None:
            return tree
        info = self.catalog.get_by_id(object_id)
        if info is None or info.is_heap:
            return None
        schema = self.catalog.load_schema(info)
        tree = BTree(
            object_id=object_id,
            root_page_id=info.root_page,
            schema=schema,
            services=self.services,
        )
        self._tree_cache[object_id] = tree
        return tree

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def require_writable(self) -> None:
        if self.crashed:
            from repro.errors import DatabaseUnavailableError

            raise DatabaseUnavailableError(
                f"database {self.name!r} is down (crashed primary); "
                f"fail over to a replica"
            )
        if self.read_only:
            raise SnapshotReadOnlyError(f"database {self.name!r} is read-only")

    def begin(self) -> Transaction:
        self.require_writable()
        return self.txns.begin()

    def commit(self, txn: Transaction) -> None:
        self.txns.commit(txn)

    def rollback(self, txn: Transaction) -> None:
        self.txns.rollback(txn)

    def savepoint(self, txn: Transaction, name: str) -> None:
        self.txns.savepoint(txn, name)

    def rollback_to(self, txn: Transaction, name: str) -> None:
        self.txns.rollback_to_savepoint(txn, name)

    @contextmanager
    def transaction(self):
        """``with db.transaction() as txn:`` — commit on success, roll back
        on exception."""
        with self.write_latch:
            txn = self.begin()
            try:
                yield txn
            except BaseException:
                if txn.is_active:
                    self.rollback(txn)
                raise
            else:
                if txn.is_active:
                    self.commit(txn)

    def run_system_txn(self, fn):
        """Run ``fn(txn)`` in an immediately-committed system transaction."""
        with self.write_latch:
            txn = self.txns.begin(system=True)
            try:
                result = fn(txn)
            except BaseException:
                if txn.is_active:
                    self.txns.rollback(txn)
                raise
            self.txns.commit(txn)
            return result

    # ------------------------------------------------------------------
    # DDL and table access
    # ------------------------------------------------------------------

    def create_table(self, schema: TableSchema, txn: Transaction | None = None, *, heap: bool = False) -> Table:
        self.require_writable()
        kind = KIND_HEAP if heap else KIND_TABLE
        if txn is None:
            with self.transaction() as auto_txn:
                self.catalog.create_table(auto_txn, schema, kind=kind)
        else:
            self.catalog.create_table(txn, schema, kind=kind)
        self._table_cache.pop(schema.name, None)
        return self.table(schema.name)

    def drop_table(self, name: str, txn: Transaction | None = None) -> None:
        self.require_writable()
        if txn is None:
            with self.transaction() as auto_txn:
                info = self.catalog.drop_table(auto_txn, name)
        else:
            info = self.catalog.drop_table(txn, name)
        self._table_cache.pop(name, None)
        self._tree_cache.pop(info.object_id, None)

    def table(self, name: str) -> Table:
        cached = self._table_cache.get(name)
        if cached is not None:
            return cached
        info = self.catalog.require(name)
        schema = self.catalog.load_schema(info)
        handle = Table(self, info, schema)
        self._table_cache[name] = handle
        return handle

    def tables(self) -> list[str]:
        return [obj.name for obj in self.catalog.list_objects()]

    # -- reader protocol (shared with snapshots) -------------------------

    def get(self, table: str, key: tuple, txn: Transaction | None = None):
        return self.table(table).get(tuple(key), txn)

    def scan(self, table: str, lo: tuple | None = None, hi: tuple | None = None):
        return self.table(table).scan(lo, hi)

    def insert(self, txn: Transaction, table: str, row) -> None:
        self.table(table).insert(txn, row)

    def update(self, txn: Transaction, table: str, key: tuple, changes: dict):
        return self.table(table).update(txn, key, changes)

    def delete(self, txn: Transaction, table: str, key: tuple):
        return self.table(table).delete(txn, key)

    # ------------------------------------------------------------------
    # Checkpoints, retention, crash/recovery
    # ------------------------------------------------------------------

    def checkpoint(self) -> int:
        """Take a checkpoint; returns the checkpoint-begin LSN."""
        from repro.engine.checkpoint import take_checkpoint

        return take_checkpoint(self)

    def set_undo_interval(self, seconds: float) -> None:
        """``ALTER DATABASE ... SET UNDO_INTERVAL`` (section 4.3)."""
        if seconds <= 0:
            raise ValueError("undo interval must be positive")
        self.update_boot(undo_interval_s=float(seconds))

    @property
    def undo_interval_s(self) -> float:
        if self.retention_override_s is not None:
            return self.retention_override_s
        return self.boot_record().undo_interval_s

    def invalidate_caches(self) -> None:
        """Drop derived metadata caches (boot, tables, trees).

        The replica apply loop calls this after replaying records that
        touch the boot page or the system catalog — the caches would
        otherwise serve the pre-replay metadata. Assigns fresh containers
        (rather than clearing) so restore shells built via ``__new__``
        can also use it to create the caches in the first place.
        """
        self._boot_cache = None
        self._table_cache = {}
        self._tree_cache = {}
        self._ckpt_chain_cache = {}

    def add_retention_pin(self, pin) -> None:
        """Register a retention pin: a callable returning an LSN the log
        must retain (or ``NULL_LSN``/``None`` for "no pin")."""
        self.retention_pins.append(pin)

    def reset_retention_pins(self) -> None:
        """Drop every registered retention pin (restore shells)."""
        self.retention_pins = []

    def enforce_retention(self) -> int:
        """Truncate log outside the retention window; returns new start LSN."""
        from repro.core.retention import enforce_retention

        return enforce_retention(self)

    def crash(self) -> None:
        """Simulate an abrupt stop: volatile state disappears."""
        self.buffer.crash()
        self.log.crash()
        self.locks = LockManager()
        self.txns = TransactionManager(self.env, self.log, self.locks)
        self.txns.undo_context = self
        self.invalidate_caches()
        self.alloc.clear_hints()
        self.snapshots.clear()
        if self.version_store is not None:
            # The volatile log tail is gone; recovery will write *new*
            # records at those LSNs, so stored versions reaching into the
            # discarded range describe history that no longer exists.
            self.version_store.invalidate_from(
                self.version_store_key, self.log.durable_lsn
            )

    def recover(self) -> None:
        """ARIES crash recovery (analysis, redo, undo)."""
        from repro.engine.recovery import run_crash_recovery

        run_crash_recovery(self)
        self.reload_boot()

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Database({self.name!r}, pages={self.file_manager.page_count})"
