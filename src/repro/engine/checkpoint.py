"""Checkpoints: bounded recovery and the wall-clock anchors of time travel.

A checkpoint here flushes all dirty pages (SQL Server style), so redo
never reaches behind the latest checkpoint. Checkpoint-begin records carry
the simulated wall-clock time and a back-pointer to the previous
checkpoint — the chain SplitLSN search narrows by (section 5.1) — and the
active-transaction table that as-of snapshot recovery's analysis pass
starts from (section 5.2).

:class:`Checkpointer` adds cadence: the paper's evaluation uses a
30-second target recovery interval, which is what bounds as-of snapshot
creation time in Figures 9/10.
"""

from __future__ import annotations

from repro.wal.records import CheckpointBeginRecord, CheckpointEndRecord


def take_checkpoint(db) -> int:
    """Checkpoint ``db``; returns the checkpoint-begin LSN."""
    begin = CheckpointBeginRecord(
        wall_clock=db.env.clock.now(),
        prev_checkpoint_lsn=db.last_checkpoint_lsn,
        active_txns=db.txns.active_table(),
    )
    begin_lsn = db.log.append(begin)
    db.log.append(CheckpointEndRecord(begin_lsn=begin_lsn))
    db.update_boot(last_checkpoint_lsn=begin_lsn)
    db.log.flush()
    db.buffer.flush_all()
    db.last_checkpoint_lsn = begin_lsn
    db.env.stats.checkpoints_taken += 1
    return begin_lsn


class Checkpointer:
    """Periodic checkpoint driver keyed to the simulated clock.

    Call :meth:`tick` between transactions (the workload driver does);
    a checkpoint is taken when the configured interval has elapsed.
    Retention is enforced opportunistically right after each checkpoint.
    """

    def __init__(self, db, interval_s: float | None = None, *, enforce_retention: bool = True) -> None:
        self.db = db
        self.interval_s = (
            interval_s if interval_s is not None else db.config.checkpoint_interval_s
        )
        self.enforce_retention = enforce_retention
        self._last_wall = db.env.clock.now()

    def tick(self) -> bool:
        """Checkpoint if the interval elapsed; returns True when taken."""
        now = self.db.env.clock.now()
        if now - self._last_wall < self.interval_s:
            return False
        self.db.checkpoint()
        if self.enforce_retention:
            self.db.enforce_retention()
        self._last_wall = now
        return True
