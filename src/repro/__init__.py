"""repro — Transaction Log Based Application Error Recovery and
Point-In-Time Query.

A from-scratch Python reproduction of Talius, Dhamankar, Dumitrache &
Kodavalla (VLDB 2012): a miniature ARIES storage engine extended with
page-oriented physical undo over the transaction log, as-of database
snapshots backed by sparse side files, retention-bounded time travel, and
the backup/restore baseline the paper compares against.

Quickstart::

    from repro import Engine, TableSchema, Column, ColumnType

    engine = Engine()
    db = engine.create_database("shop")
    schema = TableSchema(
        "items",
        (Column("id", ColumnType.INT), Column("name", ColumnType.STR)),
        key=("id",),
    )
    db.create_table(schema)
    with db.transaction() as txn:
        db.insert(txn, "items", (1, "anvil"))
    before_oops = engine.env.clock.now()
    engine.env.clock.advance(60)
    db.drop_table("items")                       # the application error
    snap = engine.create_asof_snapshot("shop", "shop_past", before_oops)
    rows = list(snap.scan("items"))              # the table is back
"""

from repro.archive import ArchiveStore, IncrementalBackup, LogArchiver
from repro.catalog.schema import Column, ColumnType, TableSchema
from repro.chaos import (
    FailoverCoordinator,
    FailureDetector,
    FaultInjector,
    FaultRule,
    RetryPolicy,
)
from repro.config import CostModel, DatabaseConfig, LoggingExtensions, SimEnv
from repro.core.asof import AsOfSnapshot
from repro.core.page_undo import prepare_page_as_of, prepare_page_version
from repro.core.split_lsn import find_split_lsn
from repro.core.version_store import PageVersionStore
from repro.engine.database import Database, Table
from repro.engine.engine import Engine
from repro.errors import (
    ArchiveError,
    DatabaseUnavailableError,
    DeadlockError,
    DuplicateKeyError,
    FaultInjectedError,
    KeyNotFoundError,
    LogTruncatedError,
    MissingUndoInfoError,
    ReplicationError,
    ReplicationFaultError,
    ReproError,
    RetentionExceededError,
    SnapshotError,
    TransactionError,
)
from repro.replication import LogShipper, Replica
from repro.sim.clock import SimClock
from repro.sim.device import SAS_10K, SLC_SSD, DeviceProfile
from repro.snapshot.base import RegularSnapshot

__version__ = "1.0.0"

__all__ = [
    "Engine",
    "Database",
    "Table",
    "AsOfSnapshot",
    "RegularSnapshot",
    "TableSchema",
    "Column",
    "ColumnType",
    "DatabaseConfig",
    "LoggingExtensions",
    "CostModel",
    "SimEnv",
    "SimClock",
    "DeviceProfile",
    "SAS_10K",
    "SLC_SSD",
    "prepare_page_as_of",
    "prepare_page_version",
    "PageVersionStore",
    "find_split_lsn",
    "Replica",
    "LogShipper",
    "ArchiveStore",
    "LogArchiver",
    "IncrementalBackup",
    "FaultInjector",
    "FaultRule",
    "RetryPolicy",
    "FailureDetector",
    "FailoverCoordinator",
    "ReproError",
    "ReplicationError",
    "ReplicationFaultError",
    "FaultInjectedError",
    "DatabaseUnavailableError",
    "ArchiveError",
    "RetentionExceededError",
    "MissingUndoInfoError",
    "LogTruncatedError",
    "SnapshotError",
    "TransactionError",
    "DuplicateKeyError",
    "KeyNotFoundError",
    "DeadlockError",
    "__version__",
]
