"""Backup and restore: the traditional baseline the paper argues against.

Full backups copy every allocated page; point-in-time restore copies them
back and rolls the log forward to the target time, then undoes in-flight
transactions. Its cost is proportional to the *database size*, regardless
of how little data the user actually needs — the exact asymmetry Figures
7/8 of the paper quantify against as-of queries.
"""

from repro.backup.backup import FullBackup, take_full_backup
from repro.backup.restore import restore_point_in_time

__all__ = ["FullBackup", "take_full_backup", "restore_point_in_time"]
