"""Full database backups.

A full backup is a checkpoint-consistent copy of every allocated page
(boot and allocation maps included), stamped with the checkpoint LSN the
roll-forward must start from. Reading the pages is priced as sequential
I/O on the data device and writing the backup as sequential I/O too —
the paper's point that "the process of generating backups of large
databases can impact the user workload" falls straight out of the
device-time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FullBackup:
    """A checkpoint-consistent page-level copy of one database."""

    source_name: str
    page_size: int
    #: Checkpoint LSN the backup is consistent with; roll-forward replays
    #: the log from here.
    backup_lsn: int
    taken_wall: float
    pages: dict[int, bytes] = field(default_factory=dict, repr=False)
    #: Source database configuration, so an archive restore can rebuild a
    #: shell even when the source database no longer exists.
    config: object | None = field(default=None, repr=False)

    @property
    def size_bytes(self) -> int:
        return len(self.pages) * self.page_size

    def __repr__(self) -> str:
        return (
            f"FullBackup(of={self.source_name!r}, pages={len(self.pages)}, "
            f"lsn={self.backup_lsn:#x})"
        )


def take_full_backup(db, *, charge_media: bool = True) -> FullBackup:
    """Take a full backup of ``db``.

    Checkpoints first (making the on-disk state consistent with
    ``backup_lsn``), then streams every allocated page out and the backup
    copy in. ``charge_media=False`` skips the backup-media write charge —
    used when the caller lands the backup on its own priced medium (the
    archive store), which would otherwise be billed twice.
    """
    backup_lsn = db.checkpoint()
    page_ids = db.alloc.allocated_page_ids()
    backup = FullBackup(
        source_name=db.name,
        page_size=db.config.page_size,
        backup_lsn=backup_lsn,
        taken_wall=db.env.clock.now(),
        config=db.config,
    )
    pages = db.file_manager.read_sequential(page_ids)
    for page_id, data in zip(page_ids, pages, strict=True):
        backup.pages[page_id] = bytes(data)
    # Writing the backup media is a sequential stream of the same volume.
    if charge_media:
        db.env.data_device.write_seq(backup.size_bytes)
        db.env.stats.backup_write_bytes += backup.size_bytes
    return backup
