"""Point-in-time restore: copy the backup back, roll the log forward.

This is the workflow the paper's introduction describes as the only
traditional way to recover from a user error: restore the full baseline
backup, replay the retained transaction log up to a point just before the
mistake, undo transactions in flight at that point, then extract the data.
Every step's cost is charged (sequential page copy, sequential log scan,
random page fetches during redo), so the restore curve in Figures 7/8 —
flat with respect to the target time, huge with respect to the data
needed — emerges from the same accounting as the as-of numbers.

The building blocks (:func:`init_restored_shell`, :func:`roll_forward`,
:func:`undo_in_flight`) are shared with the archive tier's restore
planner (:mod:`repro.archive.restore`), which runs the same recipe
against an *archived* log + incremental backup chain instead of the
primary's retained log.
"""

from __future__ import annotations

from repro.backup.backup import FullBackup
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.engine.database import Database
from repro.engine.recovery import analyze_log
from repro.errors import BackupError
from repro.storage.datafile import MemoryDataFile
from repro.txn.transaction import RecoveredTransaction
from repro.txn.undo import LogicalUndo
from repro.wal.lsn import NULL_LSN
from repro.wal.records import FormatPageRecord, PageImageRecord


class _RestoreUndoContext:
    """Undo context stitching the restored database to the *source* log.

    Loser chains live in the source database's log; compensations apply to
    the restored database's pages (and are logged into its fresh log,
    which is harmless — the restored copy is handed out read-only).
    """

    def __init__(self, restored: Database, source_log) -> None:
        self.env = restored.env
        self.log = source_log
        self.modifier = restored.modifier
        self.fetch_page = restored.fetch_page
        self.tree_for_object = restored.tree_for_object


def roll_forward(restored: Database, log, from_lsn: int, split: int) -> int:
    """Replay ``log``'s page modifications in ``[from_lsn, split]`` onto
    ``restored``, gated by each page's pageLSN; returns records replayed.

    A format record is the first record of a page's (new) incarnation and
    erases whatever was there, so its redo never needs to read the
    restored file — pages born after the backup cost no I/O to
    materialize.
    """
    replayed = 0
    for rec in log.scan(from_lsn, split + 1):
        if not rec.IS_PAGE_MOD:
            continue
        create = isinstance(rec, FormatPageRecord)
        with restored.fetch_page(rec.page_id, create=create) as guard:
            page = guard.page
            if page.is_formatted() and page.page_lsn >= rec.lsn:
                continue
            rec.redo(page, fetch=log.undo_fetch)
            page.page_lsn = rec.lsn
            if isinstance(rec, PageImageRecord):
                page.last_image_lsn = rec.lsn
            guard.mark_dirty()
        restored.env.charge_cpu(restored.env.cost.redo_record_cpu_s)
        replayed += 1
    return replayed


def undo_in_flight(restored: Database, log, base: int, split: int) -> int:
    """Undo transactions in flight at ``split`` (standard restore undo).

    ``base`` is a checkpoint LSN at or before ``split`` (or the oldest
    covered LSN when no checkpoint qualifies) — the analysis scan starts
    there. Returns the number of transactions rolled back.
    """
    analysis = analyze_log(log, base, split + 1)
    ctx = _RestoreUndoContext(restored, log)
    undo = LogicalUndo(ctx)
    for txn_id, last_lsn in sorted(
        analysis.losers.items(), key=lambda item: item[1], reverse=True
    ):
        loser = RecoveredTransaction(txn_id)
        loser.last_lsn = last_lsn
        undo.rollback_chain(loser, last_lsn)
    return len(analysis.losers)


def restore_point_in_time(
    engine,
    backup: FullBackup,
    source_db: Database,
    target_wall: float,
    new_name: str,
) -> Database:
    """Restore ``backup`` as ``new_name`` rolled forward to ``target_wall``.

    Requires the source database's log to still cover the range from
    ``backup.backup_lsn`` to the target (otherwise the "log backup chain"
    is broken and :class:`BackupError` is raised). Returns a read-only
    database registered with the engine.
    """
    log = source_db.log
    if backup.backup_lsn < log.start_lsn:
        raise BackupError(
            f"log no longer covers backup LSN {backup.backup_lsn:#x} "
            f"(retained from {log.start_lsn:#x}); log backup chain broken"
        )
    split = find_split_lsn(source_db, target_wall)
    if split < backup.backup_lsn:
        raise BackupError(
            f"target time precedes the backup "
            f"(split {split:#x} < backup {backup.backup_lsn:#x})"
        )

    # 1. Lay the backup pages down as the new database files.
    restored = init_restored_shell(
        engine, new_name, source_db.config, backup.backup_lsn
    )
    restored.file_manager.write_sequential(backup.pages)
    restored.reload_boot()

    # 2. Roll forward: replay the source log from the backup LSN to the
    #    split.
    roll_forward(restored, log, backup.backup_lsn, split)

    # 3. Undo transactions in flight at the split.
    base = NULL_LSN
    for lsn, _wall, _prev in checkpoint_chain(source_db):
        if lsn <= split:
            base = lsn
            break
    if base == NULL_LSN:
        base = max(backup.backup_lsn, log.start_lsn)
    undo_in_flight(restored, log, base, split)

    # Initialization of the unused log portion: the restored database's
    # log file spans the full retained range, and the part past the
    # restore point must still be formatted. The paper names this cost as
    # one reason restore time is flat regardless of the restore point
    # (section 6.2).
    unused = max(0, log.end_lsn - split)
    if unused:
        restored.env.log_device.write_seq(unused)

    restored.buffer.flush_all()
    restored.read_only = True
    engine.databases[new_name] = restored
    return restored


def init_restored_shell(engine, name: str, config, backup_lsn: int) -> Database:
    """Hand-assemble a Database shell ready to adopt backup page content.

    ``Database.__init__`` would bootstrap a fresh catalog; a restore must
    adopt the backup's pages instead, so the shell is wired field by field
    (same components, no bootstrap).
    """
    from repro.access.btree import BTreeServices
    from repro.catalog.catalog import Catalog
    from repro.storage.allocation import AllocationManager
    from repro.storage.buffer import BufferPool
    from repro.storage.datafile import FileManager
    from repro.txn.locks import LockManager
    from repro.txn.manager import TransactionManager
    from repro.wal.apply import PageModifier
    from repro.wal.log_manager import LogManager

    restored = Database.__new__(Database)
    datafile = MemoryDataFile(config.page_size)
    restored.name = name
    restored.config = config
    restored.env = engine.env
    restored.file_manager = FileManager(datafile, engine.env.data_device, engine.env.stats)
    restored.log = LogManager(
        engine.env,
        block_size=config.log_block_size,
        cache_blocks=config.log_cache_blocks,
    )
    restored.buffer = BufferPool(
        restored.file_manager,
        config.buffer_pool_pages,
        engine.env.stats,
        restored.log,
    )
    restored.locks = LockManager()
    restored.txns = TransactionManager(engine.env, restored.log, restored.locks)
    restored.txns.undo_context = restored
    restored.modifier = PageModifier(restored.log, config.extensions, engine.env)
    restored.alloc = AllocationManager(restored.buffer, restored.modifier, restored.run_system_txn)
    restored.services = BTreeServices(
        env=engine.env,
        fetch=restored.fetch_page,
        modifier=restored.modifier,
        alloc=restored.alloc,
        system_txn=restored.run_system_txn,
    )
    restored.catalog = Catalog(restored.services)
    restored.read_only = False
    restored.crashed = False
    restored.last_checkpoint_lsn = backup_lsn
    restored.invalidate_caches()
    restored.snapshots = {}
    restored.reset_retention_pins()
    restored.retention_override_s = None
    return restored
