"""Pooled ephemeral as-of snapshots: point-in-time query as a primitive.

The paper exposes point-in-time reads through named-snapshot DDL the user
creates, ``USE``\\ s and drops by hand. That ceremony makes time travel an
operator action; production systems want it to be a routinely exercised
read-path primitive (compare the fast-recovery line of work: the win
comes from making the recovery path cheap and ordinary). The
:class:`SnapshotPool` makes any ``AS OF`` read self-service:

* **Resolution** — the requested wall-clock time is translated to a
  SplitLSN first, so two queries phrased differently but landing on the
  same commit boundary share one snapshot.
* **Reuse** — entries are keyed ``(database, split_lsn)``; an acquire that
  hits skips snapshot creation entirely (no checkpoint, no analysis scan,
  no new side file) and benefits from every page the earlier queries
  already prepared.
* **Refcounting** — concurrent sessions lease the same entry; an entry is
  only evictable once every lease is released.
* **Eviction** — the pool tracks total sparse side-file bytes across its
  entries and drops least-recently-used idle entries once the configured
  byte budget is exceeded.

The pool is owned by the :class:`~repro.engine.engine.Engine`; users reach
it through ``engine.query_as_of(db, t)`` or inline SQL
(``SELECT ... FROM t AS OF '...'``). Named-snapshot DDL still works and
bypasses the pool — those snapshots have user-controlled lifetimes.

Concurrency: ``self.latch`` serializes the entry map, orphan map, stats
and LRU clock (reprolint RL005 enforces the guard on every mutation).
Snapshot *creation* deliberately happens outside the latch: it
checkpoints the primary (taking the database write latch) and scans the
log, so holding the pool latch across it would both invert the
database→pool latch order and stall every concurrent lease behind one
build. Racing creators for the same split are reconciled under the
latch — the loser adopts the winner's entry and drops its own build.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.core.asof import AsOfSnapshot
from repro.errors import RetentionExceededError, SnapshotError
from repro.latch import Latch

#: Default side-file byte budget across all pooled snapshots (64 MiB).
DEFAULT_POOL_BUDGET_BYTES = 64 * 1024 * 1024


@dataclass
class PoolStats:
    """Observable pool behavior (asserted on by tests and benchmarks)."""

    #: Acquires served by an existing pooled snapshot.
    hits: int = 0
    #: Acquires that had to create a new snapshot (== snapshots created).
    misses: int = 0
    #: Idle entries dropped to get back under the byte budget.
    evictions: int = 0
    #: Leases returned (every acquire is eventually released).
    releases: int = 0
    #: High-water mark of total pooled side-file bytes.
    peak_bytes: int = 0

    @property
    def snapshots_created(self) -> int:
        return self.misses


class _PoolEntry:
    """One pooled snapshot plus its lease bookkeeping."""

    __slots__ = ("snapshot", "refcount", "last_used")

    def __init__(self, snapshot: AsOfSnapshot) -> None:
        self.snapshot = snapshot
        self.refcount = 0
        #: Monotonic acquire stamp for LRU ordering.
        self.last_used = 0


class SnapshotPool:
    """Refcounted LRU pool of ephemeral :class:`AsOfSnapshot` instances.

    Keyed by ``(database name, split_lsn)``: all wall-clock times that
    resolve to the same SplitLSN share one snapshot, one sparse side file
    and one set of already-prepared pages.
    """

    def __init__(self, budget_bytes: int = DEFAULT_POOL_BUDGET_BYTES) -> None:
        if budget_bytes <= 0:
            raise ValueError("snapshot pool budget must be positive")
        self.latch = Latch("snapshot_pool")
        self.budget_bytes = budget_bytes
        self.stats = PoolStats()
        self._entries: dict[tuple[str, int], _PoolEntry] = {}
        #: Entries force-dropped (purge/clear) while still leased, kept by
        #: snapshot identity so the outstanding releases stay balanced.
        self._orphans: dict[int, _PoolEntry] = {}
        self._clock = 0

    # ------------------------------------------------------------------
    # Leasing
    # ------------------------------------------------------------------

    def acquire(self, db, as_of_wall: float) -> AsOfSnapshot:
        """Lease a snapshot of ``db`` as of ``as_of_wall``.

        Resolves the time to a SplitLSN, reuses a pooled snapshot for that
        ``(database, split_lsn)`` when one exists, and creates (and pools)
        one otherwise. Pair every acquire with :meth:`release`, or use
        :meth:`lease`.

        A pooled entry outlives the retention *window*: its pin keeps the
        log retained (see :meth:`min_pin_lsn`), so a reuse whose wall-clock
        time has aged past ``UNDO_INTERVAL`` is still served as long as it
        maps onto a pooled split. Only snapshot *creation* stays bounded by
        the window.
        """
        tracer = db.env.tracer
        with tracer.span("pool.acquire", db=db.name) as pool_span:
            with tracer.span("asof.resolve_split"):
                try:
                    split = AsOfSnapshot.resolve_split(db, as_of_wall)
                except RetentionExceededError:
                    from repro.core.split_lsn import find_split_lsn

                    # The window has closed, but a pooled split may have
                    # pinned the log; serve the reuse if the time still
                    # resolves.
                    split = find_split_lsn(db, as_of_wall)
                    with self.latch:
                        entry = self._entries.get((db.name, split))
                        if (
                            entry is None
                            or entry.snapshot.dropped
                            or entry.snapshot.db is not db
                        ):
                            raise
            key = (db.name, split)
            snapshot = self._lease_pooled(key, db)
            pool_span.set(split=split, hit=snapshot is not None)
            if snapshot is not None:
                return snapshot
            # Miss: build outside the latch. Creation checkpoints the
            # primary (database write latch) and runs the analysis scan;
            # concurrent leases of other entries proceed meanwhile, and
            # the database→pool latch order stays acyclic.
            with tracer.span("asof.create_at_split", split=split):
                built = AsOfSnapshot.create_at_split(
                    db, f"~pool:{db.name}@{split:#x}", split
                )
            loser = None
            with self.latch:
                entry = self._entries.get(key)
                if entry is not None and not (
                    entry.snapshot.dropped or entry.snapshot.db is not db
                ):
                    # Another session built the same split concurrently;
                    # adopt the pooled winner and discard our build.
                    loser = built
                else:
                    entry = _PoolEntry(built)
                    self._entries[key] = entry
                self.stats.misses += 1
                entry.refcount += 1
                self._clock += 1
                entry.last_used = self._clock
                snapshot = entry.snapshot
            if loser is not None:
                loser.drop()
            self._note_peak()
            return snapshot

    def _lease_pooled(self, key: tuple[str, int], db) -> AsOfSnapshot | None:
        """Bump and return the pooled entry for ``key``, or ``None`` on a
        miss (stale/dropped entries are removed and count as misses)."""
        with self.latch:
            entry = self._entries.get(key)
            if entry is not None and (
                entry.snapshot.dropped or entry.snapshot.db is not db
            ):
                # A dropped or stale entry (its database object was
                # replaced) cannot serve reads; rebuild it.
                del self._entries[key]
                entry = None
            if entry is None:
                return None
            self.stats.hits += 1
            entry.refcount += 1
            self._clock += 1
            entry.last_used = self._clock
            return entry.snapshot

    def release(self, snapshot: AsOfSnapshot) -> None:
        """Return a lease obtained from :meth:`acquire`."""
        with self.latch:
            orphan = self._orphans.get(id(snapshot))
            if orphan is not None:
                # The entry was force-dropped (purge/clear) while leased;
                # the lease still has to unwind without raising.
                orphan.refcount -= 1
                if orphan.refcount <= 0:
                    del self._orphans[id(snapshot)]
                self.stats.releases += 1
                return
            key = (snapshot.db.name, snapshot.split_lsn)
            entry = self._entries.get(key)
            if entry is None or entry.snapshot is not snapshot:
                raise SnapshotError(
                    f"snapshot {snapshot.name!r} is not leased from this pool"
                )
            if entry.refcount <= 0:
                raise SnapshotError(f"snapshot {snapshot.name!r} released twice")
            entry.refcount -= 1
            self.stats.releases += 1
            self.evict_to_budget()

    @contextmanager
    def lease(self, db, as_of_wall: float) -> Iterator[AsOfSnapshot]:
        """``with pool.lease(db, t) as snap:`` — acquire/release pairing."""
        snapshot = self.acquire(db, as_of_wall)
        try:
            yield snapshot
        finally:
            self.release(snapshot)

    # ------------------------------------------------------------------
    # Budget / eviction
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Sparse side-file bytes across all pooled snapshots.

        Recomputed on demand: side files grow lazily as queries touch
        pages, so a cached sum would go stale.
        """
        with self.latch:
            return sum(
                entry.snapshot.side_file_bytes()
                for entry in self._entries.values()
            )

    def _note_peak(self) -> None:
        with self.latch:
            total = self.total_bytes()
            if total > self.stats.peak_bytes:
                self.stats.peak_bytes = total

    def evict_to_budget(self) -> int:
        """Drop idle least-recently-used entries until the total side-file
        footprint fits the budget; returns how many were evicted.

        Entries with live leases are never evicted — the pool may
        transiently exceed its budget while every entry is in use.
        """
        with self.latch:
            self._note_peak()
            evicted = 0
            while self.total_bytes() > self.budget_bytes:
                idle = [
                    (entry.last_used, key)
                    for key, entry in self._entries.items()
                    if entry.refcount == 0
                ]
                if not idle:
                    break
                _stamp, key = min(idle)
                self._drop_entry(key)
                self.stats.evictions += 1
                evicted += 1
            return evicted

    def set_budget(self, budget_bytes: int) -> None:
        """Change the byte budget and evict immediately if now over it."""
        if budget_bytes <= 0:
            raise ValueError("snapshot pool budget must be positive")
        with self.latch:
            self.budget_bytes = budget_bytes
            self.evict_to_budget()

    def _drop_entry(self, key: tuple[str, int]) -> None:
        # Dropping an entry releases its retention pin; the next
        # enforce_retention truncates past the evicted split and GCs the
        # version-store intervals only that pin kept reachable (see
        # repro.core.retention). Versions covering splits still pooled
        # always end above the log floor — their pins kept truncation at
        # or below the split — so they survive: exactly the
        # cross-snapshot reuse the store exists for.
        with self.latch:
            entry = self._entries.pop(key)
            if entry.refcount > 0:
                self._orphans[id(entry.snapshot)] = entry
            entry.snapshot.drop()

    # ------------------------------------------------------------------
    # Retention pinning / background undo drain
    # ------------------------------------------------------------------

    def min_pin_lsn(self, db_name: str) -> int | None:
        """Oldest LSN any pooled snapshot of ``db_name`` still needs.

        Registered as a retention pin on the database (see
        :func:`repro.core.retention.enforce_retention`): retention then
        works around live pooled splits the same way it works around
        active transactions, instead of entries failing at first use after
        a truncation. ``None`` when nothing is pooled for the database.
        """
        with self.latch:
            pins = [
                entry.snapshot.retention_pin_lsn
                for (name, _split), entry in self._entries.items()
                if name == db_name and not entry.snapshot.dropped
            ]
            return min(pins) if pins else None

    def drain(self, max_txns: int | None = None) -> int:
        """Drive pending background undo on pooled entries; returns how
        many in-flight transactions were undone.

        The paper admits queries immediately and lets reads pay for
        conflicting undo lazily; draining between queries moves that cost
        off the first reader's latency. ``max_txns`` bounds one call (the
        pacing knob for callers draining inside a workload loop).

        Draining also *publishes*: every page an undo chain touches is
        materialized through ``fetch_page``, whose freshly prepared
        (pre-undo) images land in the cross-snapshot version store with
        their proven intervals — so a background drain warms the store
        for every later snapshot in the neighborhood, not just this
        entry's sparse file.
        """
        # Snapshot the entry list under the latch, then undo outside it:
        # undo walks log chains and fetches pages (log/buffer latches far
        # below the pool in the lock order, but potentially slow).
        with self.latch:
            entries = list(self._entries.values())
        drained = 0
        for entry in entries:
            snapshot = entry.snapshot
            if snapshot.dropped or not snapshot.pending_undo_count:
                continue
            if max_txns is None:
                drained += snapshot.run_background_undo()
                continue
            budget = max_txns - drained
            if budget <= 0:
                break
            pending = list(snapshot._pending_undo)[:budget]
            drained += snapshot.run_background_undo(pending)
        return drained

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def purge_database(self, db_name: str) -> int:
        """Drop every pooled snapshot of ``db_name`` (the database is
        being dropped); returns how many entries were purged.

        Entries with live leases are dropped too — the database is going
        away — but their outstanding releases remain balanced: in-flight
        readers see :class:`SnapshotError` on their next page access, not
        on release.
        """
        with self.latch:
            keys = [key for key in self._entries if key[0] == db_name]
            for key in keys:
                self._drop_entry(key)
            return len(keys)

    def clear(self) -> None:
        """Drop every pooled snapshot."""
        with self.latch:
            for key in list(self._entries):
                self._drop_entry(key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self.latch:
            return len(self._entries)

    def __contains__(self, key: tuple[str, int]) -> bool:
        with self.latch:
            return key in self._entries

    def entries(self) -> list[tuple[str, int, int, int]]:
        """``(db_name, split_lsn, refcount, side_file_bytes)`` per entry."""
        with self.latch:
            return [
                (key[0], key[1], entry.refcount, entry.snapshot.side_file_bytes())
                for key, entry in sorted(
                    self._entries.items(), key=lambda item: item[1].last_used
                )
            ]

    def active_leases(self) -> int:
        with self.latch:
            return sum(entry.refcount for entry in self._entries.values())

    def __repr__(self) -> str:
        return (
            f"SnapshotPool(entries={len(self._entries)}, "
            f"bytes={self.total_bytes()}/{self.budget_bytes}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"evictions={self.stats.evictions})"
        )
