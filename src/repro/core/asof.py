"""As-of database snapshots (paper section 5).

An :class:`AsOfSnapshot` presents a transactionally consistent, read-only
view of a database as of an arbitrary past point in time:

* **Creation** (section 5.1): translate the wall-clock time to the
  SplitLSN, create the sparse side file, and checkpoint the primary so
  every page with LSN ≤ SplitLSN is durable.
* **Recovery** (section 5.2): run the analysis pass from the checkpoint
  preceding the SplitLSN up to the SplitLSN to find transactions in flight
  at that point; the redo pass does **no page I/O** — it only re-acquires
  those transactions' locks. Their logical undo runs lazily ("in the
  background"): queries are admitted immediately, and a read that touches
  a locked row drives the conflicting transaction's undo to completion
  first.
* **Page access** (section 5.3): sparse-file hit → serve; miss → probe
  the engine's cross-snapshot
  :class:`~repro.core.version_store.PageVersionStore` for a prepared
  image whose validity interval covers the SplitLSN (skipping the whole
  chain walk — the cost Figure 11 shows dominating as-of reads); store
  miss → read the current page from the primary,
  ``PreparePageAsOf(page, SplitLSN)``, publish the result's interval to
  the store, and cache it in the sparse file. Previous versions are
  generated only for pages queries actually touch.

The snapshot exposes the same reader protocol as a live database (catalog,
``get``, ``scan``), because to "all the other components in the database
engine" a snapshot is just a read-only database (section 2.2).
"""

from __future__ import annotations

from repro.access.btree import BTree, BTreeServices
from repro.access.heap import Heap
from repro.catalog.catalog import (
    SYS_COLUMNS_ID,
    SYS_OBJECTS_ID,
    Catalog,
    ObjectInfo,
)
from repro.core.page_undo import prepare_page_version
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.engine.recovery import analyze_log
from repro.latch import Latch
from repro.errors import (
    CatalogError,
    LogTruncatedError,
    RetentionExceededError,
    SnapshotError,
)
from repro.storage.buffer import Frame
from repro.storage.page import Page
from repro.storage.sparsefile import SparseFile
from repro.txn.transaction import RecoveredTransaction
from repro.txn.undo import LogicalUndo
from repro.wal.apply import UnloggedModifier
from repro.wal.lsn import NULL_LSN
from repro.wal.records import BeginRecord, ClrRecord

#: Virtual page ids (snapshot-only splits during undo) start here.
_VIRTUAL_PAGE_BASE = 1 << 28


class SnapshotAllocator:
    """Hands out virtual page ids for snapshot-side page splits.

    Background logical undo occasionally has to *re-insert* a row whose
    page filled up with other committed data before the SplitLSN; the
    resulting split lives only in the sparse file, so page ids are virtual
    and never ever-allocated.
    """

    def __init__(self, base: int = _VIRTUAL_PAGE_BASE) -> None:
        self._next = base

    def allocate(self, txn, hint=None) -> tuple[int, bool]:
        pid = self._next
        self._next += 1
        return pid, False

    def deallocate(self, txn, page_id: int) -> None:
        """Virtual pages are throwaway; nothing to do."""


class _SnapshotGuard:
    """Pin guard that writes dirty snapshot pages through to the sparse
    file on release (paper section 5.3's write-back of undone pages)."""

    __slots__ = ("_snap", "frame")

    def __init__(self, snap: "AsOfSnapshot", frame: Frame) -> None:
        self._snap = snap
        self.frame = frame
        with snap.latch:
            frame.pin_count += 1

    @property
    def page(self) -> Page:
        return self.frame.page

    @property
    def page_id(self) -> int:
        return self.frame.page_id

    def mark_dirty(self) -> None:
        self.frame.mark_dirty()

    def __enter__(self) -> "_SnapshotGuard":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        with self._snap.latch:
            self.frame.pin_count -= 1
            if self.frame.dirty:
                self._snap.sparse.write(
                    self.frame.page_id, bytes(self.frame.page.data)
                )
                self.frame.dirty = False


class SnapshotTable:
    """Read-only table handle over a snapshot."""

    def __init__(self, snap: "AsOfSnapshot", info: ObjectInfo, schema) -> None:
        self.snap = snap
        self.info = info
        self.schema = schema
        if info.is_heap:
            self.accessor = Heap(
                object_id=info.object_id,
                first_page_id=info.root_page,
                schema=schema,
                services=snap.services,
            )
        else:
            self.accessor = BTree(
                object_id=info.object_id,
                root_page_id=info.root_page,
                schema=schema,
                services=snap.services,
            )

    @property
    def name(self) -> str:
        return self.info.name

    def get(self, key: tuple, txn=None):
        if self.info.is_heap:
            raise CatalogError(f"heap {self.name!r} has no key access")
        key = tuple(key)
        key_bytes = self.accessor.key_codec.encode(key)
        self.snap.ensure_readable(self.info.object_id, key_bytes)
        return self.accessor.get(key)

    def scan(self, lo: tuple | None = None, hi: tuple | None = None):
        self.snap.ensure_readable(self.info.object_id)
        if self.info.is_heap:
            yield from self.accessor.scan()
        else:
            yield from self.accessor.scan(lo, hi)

    def count(self) -> int:
        return sum(1 for _row in self.scan())


class AsOfSnapshot:
    """A read-only replica of ``db`` as of a past SplitLSN."""

    def __init__(self, db, name: str, split_lsn: int, *, analysis=None) -> None:
        self.db = db
        self.name = name
        self.split_lsn = split_lsn
        #: Serializes the frame cache, sparse file, table/tree caches and
        #: pending-undo state: pooled snapshots are leased by many
        #: sessions at once (refcount > 1).
        self.latch = Latch(f"asof:{name}")
        self.env = db.env
        self.log = db.log
        self.sparse = SparseFile(
            db.config.page_size, db.env.data_device, db.env.stats
        )
        self.modifier = UnloggedModifier(db.env)
        self.alloc = SnapshotAllocator()
        self.services = BTreeServices(
            env=db.env,
            fetch=self.fetch_page,
            modifier=self.modifier,
            alloc=self.alloc,
            system_txn=None,
        )
        self.catalog = Catalog(self.services)
        self._frames: dict[int, Frame] = {}
        self._table_cache: dict[str, SnapshotTable] = {}
        self._tree_cache: dict[int, BTree] = {}
        self.dropped = False
        #: Oldest LSN this snapshot may still need from the primary's log
        #: (analysis base and in-flight undo chains); pooled snapshots
        #: report it to retention enforcement so the log is not truncated
        #: out from under a cached entry.
        self.retention_pin_lsn = split_lsn
        #: In-flight transactions at the SplitLSN, pending logical undo:
        #: txn_id -> last LSN (≤ split).
        self._pending_undo: dict[int, int] = {}
        #: Re-acquired lock sets: txn_id -> [(object_id, key_bytes), ...].
        self._pending_locks: dict[int, list] = {}
        #: Losers whose chains may reach below the analysis window.
        self._checkpoint_seeded: set = set()
        if analysis is not None:
            self._pending_undo = dict(analysis.losers)
            self._pending_locks = {
                txn_id: list(keys) for txn_id, keys in analysis.loser_locks.items()
            }
            self._checkpoint_seeded = set(analysis.checkpoint_seeded) & set(
                self._pending_undo
            )

    # ------------------------------------------------------------------
    # Creation (paper section 5.1 / 5.2)
    # ------------------------------------------------------------------

    @classmethod
    def resolve_split(cls, db, as_of_wall: float) -> int:
        """Translate a wall-clock as-of time to a SplitLSN, enforcing the
        retention window (section 4.3) first."""
        now = db.env.clock.now()
        if as_of_wall < now - db.undo_interval_s:
            raise RetentionExceededError(
                f"as-of time {as_of_wall:.3f}s is outside the retention "
                f"window of {db.undo_interval_s:.0f}s"
            )
        return find_split_lsn(db, as_of_wall)

    @classmethod
    def create(cls, db, name: str, as_of_wall: float) -> "AsOfSnapshot":
        """Create an as-of snapshot of ``db`` at simulated time
        ``as_of_wall``."""
        split = cls.resolve_split(db, as_of_wall)
        return cls.create_at_split(db, name, split)

    @classmethod
    def create_at_split(cls, db, name: str, split: int) -> "AsOfSnapshot":
        """Create an as-of snapshot at an already-resolved SplitLSN.

        The wall-clock retention check can pass while the checkpoint chain
        or the analysis window still crosses the retention horizon (e.g.
        the log was truncated more aggressively than the undo interval
        implies, or an in-flight transaction's chain reaches below the
        horizon) — surface that as :class:`RetentionExceededError` rather
        than leaking the storage-level :class:`LogTruncatedError`.
        """
        try:
            # Make every page with LSN <= split durable in the primary
            # files. A read-only target (a replication standby) cannot —
            # and need not — checkpoint: its pages are only ever written
            # by redo apply, so its buffered state already covers the
            # split, and appending to its log would corrupt the shipped
            # stream's LSN space.
            if not db.read_only:
                db.checkpoint()
            # Analysis from the checkpoint preceding the split, bounded at
            # the split: yields the transactions in flight at that point
            # plus the row locks the redo pass re-acquires (no page reads
            # happen).
            base = NULL_LSN
            for lsn, _wall, _prev in checkpoint_chain(db):
                if lsn <= split:
                    base = lsn
                    break
            if base == NULL_LSN:
                base = db.log.start_lsn
            analysis = analyze_log(db.log, base, split + 1)
            snap = cls(db, name, split, analysis=analysis)
            snap.retention_pin_lsn = min(base, split)
            snap._collect_missing_locks()
        except LogTruncatedError as err:
            raise RetentionExceededError(
                f"snapshot at split {split:#x} needs log below the "
                f"retention horizon (truncated at "
                f"{db.log.start_lsn:#x}): {err}"
            ) from err
        return snap

    def _collect_missing_locks(self) -> None:
        """Walk chains of in-flight transactions whose modifications may
        precede the analysis window: re-acquire their locks and deepen the
        retention pin to the oldest chained LSN.

        Transactions discovered *inside* the window whose locks analysis
        already collected begin at or after the window base, so they need
        no walk; checkpoint-seeded ones can chain arbitrarily far back and
        are always walked (their depth is what the pin must cover).
        """
        pin = self.retention_pin_lsn
        for txn_id, last_lsn in self._pending_undo.items():
            have_locks = txn_id in self._pending_locks
            if have_locks and txn_id not in self._checkpoint_seeded:
                continue
            keys = []
            cur = last_lsn
            while cur != NULL_LSN:
                pin = min(pin, cur)
                rec = self.log.read(cur)
                if isinstance(rec, BeginRecord):
                    break
                if isinstance(rec, ClrRecord):
                    cur = rec.undo_next_lsn
                    continue
                if not have_locks:
                    key_bytes = getattr(rec, "key_bytes", b"")
                    if key_bytes and not rec.is_smo:
                        keys.append((rec.object_id, key_bytes))
                cur = rec.prev_txn_lsn
            if keys and not have_locks:
                self._pending_locks[txn_id] = keys
        self.retention_pin_lsn = pin

    # ------------------------------------------------------------------
    # Page access (paper section 5.3)
    # ------------------------------------------------------------------

    def fetch_page(self, page_id: int, create: bool = False):
        """Serve a page as of the SplitLSN.

        Order: snapshot frame cache → sparse file → cross-snapshot
        version store → primary + physical undo (published to the store,
        cached back into the sparse file).
        """
        with self.latch:
            self._check_alive()
            frame = self._frames.get(page_id)
            if frame is not None:
                return _SnapshotGuard(self, frame)
            if page_id in self.sparse:
                data = self.sparse.read(page_id)
            elif create or page_id >= _VIRTUAL_PAGE_BASE:
                data = bytearray(self.db.config.page_size)
            else:
                data = self._prepare_page(page_id)
                self.sparse.write(page_id, bytes(data))
            frame = Frame(Page(data), page_id)
            self._frames[page_id] = frame
            # Keep the frame cache bounded; sparse is the durable tier.
            if len(self._frames) > 256:
                for pid in list(self._frames):
                    candidate = self._frames[pid]
                    if (
                        candidate.pin_count == 0
                        and not candidate.dirty
                        and pid != page_id
                    ):
                        del self._frames[pid]
                    if len(self._frames) <= 128:
                        break
            return _SnapshotGuard(self, frame)

    def _prepare_page(self, page_id: int) -> bytearray:
        """Materialize the page image as of the SplitLSN.

        Probes the engine-wide version store first — a hit is a memory
        copy that skips the chain walk entirely. On a miss the page is
        prepared from the primary's current image and the walk's proven
        validity interval is published back, so the *next* snapshot whose
        split lands inside the interval (a nearby audit read, a replica's
        pool, a recreated pooled entry) hits.
        """
        tracer = self.env.tracer
        with tracer.span("asof.prepare_page", page=page_id) as prep_span:
            store = getattr(self.db, "version_store", None)
            store_key = getattr(self.db, "version_store_key", self.db.name)
            if store is not None:
                with tracer.span("version_store.lookup", page=page_id) as probe:
                    cached = store.lookup(store_key, page_id, self.split_lsn)
                    probe.set(hit=cached is not None)
                if cached is not None:
                    return bytearray(cached)
            with self.db.buffer.fetch(page_id) as guard:
                data = bytearray(guard.page.data)
            page = Page(data)
            with tracer.span("asof.chain_walk", page=page_id):
                version = prepare_page_version(
                    page, self.split_lsn, self.log, self.env
                )
            if store is not None and version is not None:
                limit = version.limit_lsn
                if limit is None:
                    # The walk proved no modification above the split in
                    # the page's current state: the image stays valid for
                    # every split up to the present log end (clamped to
                    # the applied prefix on a replica, whose pages trail
                    # its shipped log; a crash discarding the volatile
                    # tail invalidates).
                    horizon = getattr(self.db, "publish_horizon_lsn", None)
                    limit = horizon if horizon is not None else self.log.end_lsn
                if limit > self.split_lsn:
                    store.publish(
                        store_key, page_id, version.version_lsn, limit, bytes(data)
                    )
                    prep_span.set(published=True)
            return data

    # ------------------------------------------------------------------
    # Background logical undo (paper section 5.2)
    # ------------------------------------------------------------------

    @property
    def pending_undo_count(self) -> int:
        return len(self._pending_undo)

    def run_background_undo(self, txn_ids=None) -> int:
        """Undo in-flight transactions on the snapshot; returns how many.

        With ``txn_ids=None`` undoes all pending transactions (driving the
        "background" pass to completion); otherwise only the given ones
        (used when a query blocks on their locks).
        """
        with self.latch:
            return self._run_background_undo_locked(txn_ids)

    def _run_background_undo_locked(self, txn_ids=None) -> int:
        if txn_ids is None:
            txn_ids = list(self._pending_undo)
        undo = LogicalUndo(self)
        done = 0
        for txn_id in sorted(
            txn_ids, key=lambda t: self._pending_undo.get(t, 0), reverse=True
        ):
            last_lsn = self._pending_undo.pop(txn_id, None)
            if last_lsn is None:
                continue
            pseudo = RecoveredTransaction(txn_id)
            pseudo.last_lsn = last_lsn
            undo.rollback_chain(pseudo, last_lsn)
            self._pending_locks.pop(txn_id, None)
            done += 1
        return done

    def ensure_readable(self, object_id: int, key_bytes: bytes | None = None) -> None:
        """Block-equivalent of lock acquisition: a read touching data locked
        by a pending in-flight transaction completes that transaction's
        undo first, so queries only ever see committed-as-of-split data."""
        if not self._pending_undo:
            return
        with self.latch:
            conflicting = [
                txn_id
                for txn_id, keys in self._pending_locks.items()
                if any(
                    obj == object_id and (key_bytes is None or kb == key_bytes)
                    for obj, kb in keys
                )
            ]
            if conflicting:
                self.env.stats.lock_waits += len(conflicting)
                self.run_background_undo(conflicting)

    # ------------------------------------------------------------------
    # Undo-context protocol (consumed by LogicalUndo)
    # ------------------------------------------------------------------

    def tree_for_object(self, object_id: int) -> BTree | None:
        if object_id == SYS_OBJECTS_ID:
            return self.catalog.sys_objects
        if object_id == SYS_COLUMNS_ID:
            return self.catalog.sys_columns
        with self.latch:
            tree = self._tree_cache.get(object_id)
            if tree is not None:
                return tree
            info = self.catalog.get_by_id(object_id)
            if info is None or info.is_heap:
                return None
            schema = self.catalog.load_schema(info)
            tree = BTree(
                object_id=object_id,
                root_page_id=info.root_page,
                schema=schema,
                services=self.services,
            )
            self._tree_cache[object_id] = tree
            return tree

    # ------------------------------------------------------------------
    # Reader protocol
    # ------------------------------------------------------------------

    def _check_alive(self) -> None:
        if self.dropped:
            raise SnapshotError(f"snapshot {self.name!r} was dropped")

    def table(self, name: str) -> SnapshotTable:
        self._check_alive()
        with self.latch:
            cached = self._table_cache.get(name)
            if cached is not None:
                return cached
            # Catalog reads respect pending DDL undo.
            self.ensure_readable(SYS_OBJECTS_ID)
            self.ensure_readable(SYS_COLUMNS_ID)
            info = self.catalog.require(name)
            schema = self.catalog.load_schema(info)
            handle = SnapshotTable(self, info, schema)
            self._table_cache[name] = handle
            return handle

    def table_exists(self, name: str) -> bool:
        self._check_alive()
        self.ensure_readable(SYS_OBJECTS_ID)
        return self.catalog.get_by_name(name) is not None

    def tables(self) -> list[str]:
        self._check_alive()
        self.ensure_readable(SYS_OBJECTS_ID)
        return [obj.name for obj in self.catalog.list_objects()]

    def get(self, table: str, key: tuple, txn=None):
        return self.table(table).get(tuple(key))

    def scan(self, table: str, lo: tuple | None = None, hi: tuple | None = None):
        return self.table(table).scan(lo, hi)

    def schema(self, table: str):
        return self.table(table).schema

    # ------------------------------------------------------------------

    def side_file_bytes(self) -> int:
        """Sparse-file space consumed (the paper's space-efficiency metric)."""
        with self.latch:
            return self.sparse.bytes_used()

    def drop(self) -> None:
        """Discard the snapshot and its side file."""
        with self.latch:
            self.dropped = True
            self._frames.clear()
            self._table_cache.clear()
            self._tree_cache.clear()
            self.sparse.clear()

    def __repr__(self) -> str:
        return (
            f"AsOfSnapshot({self.name!r} of {self.db.name!r}, "
            f"split={self.split_lsn:#x}, sparse_pages={self.sparse.page_count}, "
            f"pending_undo={len(self._pending_undo)})"
        )
