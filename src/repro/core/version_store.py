"""Cross-snapshot page version store: interval-keyed prepared pages.

The paper's measurements (Figure 11, section 6) show point-in-time query
cost dominated by the log I/O of ``PreparePageAsOf`` chain walks, and
section 5 pitches snapshots as cheap precisely because most pages need
little or no undo. But every snapshot still pays the walk *per snapshot*:
two nearby SplitLSNs that bracket zero modifications of a page re-derive
byte-identical images from the same chain records. This module is the
multi-version fix (the Postgres/HANA/Hekaton version-store insight applied
to the paper's log-only design): one engine-owned, byte-budgeted
:class:`PageVersionStore` shared by **all** of a database's snapshots —
the engine pool, named snapshots, and every replica's pool (a replica's
shipped log is byte-identical to the primary's, so its prepared pages are
too, and both sides publish under the primary's key).

The key is the validity *interval* the chain walk itself proves
(:class:`~repro.core.page_undo.PreparedVersion`): when a snapshot at
split ``S`` finishes preparing page ``P``, the image is published under
``(db, P, [version_lsn, limit_lsn))``; a later snapshot at split ``S'``
probes the store first and, when ``version_lsn <= S' < limit_lsn``, skips
the entire chain walk — no header reads, no undo log reads, no undo CPU.
Repeated and nearby AS OF reads (audit loops, dashboards) become fast by
construction instead of fast by luck.

Invalidation keeps the intervals honest:

* **history rewrite** — a crash discards the volatile log tail, replica
  promotion discards shipped records past the split:
  :meth:`invalidate_from` drops versions at or above the rewrite point
  and clamps intervals that reached past it.
* **name reuse / divergence** — dropping a database and reusing its name
  restarts the LSN space; a promoted replica's timeline diverges from its
  primary's: :meth:`purge` forgets the key.
* **retention GC** — :meth:`gc` (run by ``enforce_retention`` after each
  truncation) drops versions whose whole interval fell below the
  retained log: evicting a pooled entry releases its retention pin, the
  next enforcement truncates past the evicted split, and the versions
  only that pin kept reachable follow. Versions serving a still-pooled
  split always end above the log start — the pooled entry's pin
  guarantees it — so GC never drops a reachable version.
* **byte budget** — least-recently-used versions are evicted once the
  configured budget is exceeded (:meth:`evict_to_budget`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.latch import Latch

#: Default byte budget across all stored page versions (32 MiB).
DEFAULT_VERSION_STORE_BUDGET_BYTES = 32 * 1024 * 1024


@dataclass
class VersionStoreStats:
    """Observable store behavior (asserted on by tests and the CI gate)."""

    #: Lookups served by a stored interval (chain walk skipped).
    hits: int = 0
    #: Lookups finding no covering interval.
    misses: int = 0
    #: Prepared images published (new or interval-extending).
    publishes: int = 0
    #: Versions dropped to get back under the byte budget.
    evictions: int = 0
    #: Versions dropped by history-rewrite / purge / GC invalidation.
    invalidations: int = 0
    #: High-water mark of stored bytes.
    peak_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _Version:
    """One stored page image and the split interval it serves."""

    __slots__ = ("version_lsn", "limit_lsn", "data", "last_used")

    def __init__(self, version_lsn: int, limit_lsn: int, data: bytes) -> None:
        self.version_lsn = version_lsn
        self.limit_lsn = limit_lsn
        self.data = data
        self.last_used = 0

    def covers(self, split_lsn: int) -> bool:
        return self.version_lsn <= split_lsn < self.limit_lsn


class PageVersionStore:
    """Byte-budgeted, interval-keyed cache of prepared page images.

    Keys are ``(store_key, page_id)`` where ``store_key`` identifies a
    *log history*, not a database object: replicas publish and probe
    under their primary's key because they replay the primary's exact
    log. A budget of ``0`` disables the store (every lookup misses,
    nothing is published) — the ablation/baseline configuration.
    """

    def __init__(
        self,
        budget_bytes: int = DEFAULT_VERSION_STORE_BUDGET_BYTES,
        iostats=None,
    ) -> None:
        if budget_bytes < 0:
            raise ValueError("version store budget must be >= 0")
        self.latch = Latch("version_store")
        self.budget_bytes = budget_bytes
        self.stats = VersionStoreStats()
        #: Mirror counters into the engine-wide IoStats sheet when given.
        self.iostats = iostats
        self._versions: dict[tuple[str, int], list[_Version]] = {}
        self._bytes = 0
        self._clock = 0

    @property
    def enabled(self) -> bool:
        return self.budget_bytes > 0

    # ------------------------------------------------------------------
    # Probe / publish
    # ------------------------------------------------------------------

    def lookup(self, store_key: str, page_id: int, split_lsn: int) -> bytes | None:
        """The prepared image of ``page_id`` valid at ``split_lsn``, or
        ``None``. A hit is a pure memory copy: the caller skips the whole
        chain walk (header discovery, undo reads, undo CPU)."""
        if not self.enabled:
            return None
        with self.latch:
            for version in self._versions.get((store_key, page_id), ()):
                if version.covers(split_lsn):
                    self._clock += 1
                    version.last_used = self._clock
                    self.stats.hits += 1
                    if self.iostats is not None:
                        self.iostats.version_store_hits += 1
                    return version.data
            self.stats.misses += 1
            if self.iostats is not None:
                self.iostats.version_store_misses += 1
            return None

    def publish(
        self,
        store_key: str,
        page_id: int,
        version_lsn: int,
        limit_lsn: int,
        data: bytes,
    ) -> None:
        """Store a prepared image for ``[version_lsn, limit_lsn)``.

        A version with the same ``version_lsn`` already present has its
        interval *extended* (the image is identical by construction —
        same page state, later-proven quiescence); overlapping is
        otherwise left alone: intervals from real chain walks never
        disagree on content inside their overlap.
        """
        if not self.enabled or limit_lsn <= version_lsn:
            return
        with self.latch:
            versions = self._versions.setdefault((store_key, page_id), [])
            self._clock += 1
            for version in versions:
                if version.version_lsn == version_lsn:
                    version.limit_lsn = max(version.limit_lsn, limit_lsn)
                    version.last_used = self._clock
                    self._note_publish()
                    return
            version = _Version(version_lsn, limit_lsn, bytes(data))
            version.last_used = self._clock
            versions.append(version)
            self._bytes += len(version.data)
            self._note_publish()
            if self._bytes > self.stats.peak_bytes:
                self.stats.peak_bytes = self._bytes
            self.evict_to_budget()

    def _note_publish(self) -> None:
        self.stats.publishes += 1
        if self.iostats is not None:
            self.iostats.version_store_publishes += 1

    # ------------------------------------------------------------------
    # Budget
    # ------------------------------------------------------------------

    def total_bytes(self) -> int:
        with self.latch:
            return self._bytes

    def set_budget(self, budget_bytes: int) -> None:
        """Change the byte budget; evicts immediately when now over it."""
        if budget_bytes < 0:
            raise ValueError("version store budget must be >= 0")
        with self.latch:
            self.budget_bytes = budget_bytes
            if not self.enabled:
                self.clear()
            else:
                self.evict_to_budget()

    def evict_to_budget(self) -> int:
        """Drop least-recently-used versions until under budget.

        One pass: candidates are sorted by recency once and evicted in
        order, so a large budget cut costs O(V log V), not O(V^2).
        """
        with self.latch:
            if self._bytes <= self.budget_bytes or not self._versions:
                return 0
            candidates = sorted(
                (
                    (version.last_used, key, version)
                    for key, versions in self._versions.items()
                    for version in versions
                ),
                key=lambda item: item[0],
            )
            evicted = 0
            for _stamp, key, version in candidates:
                if self._bytes <= self.budget_bytes:
                    break
                versions = self._versions[key]
                versions.remove(version)
                self._bytes -= len(version.data)
                if not versions:
                    del self._versions[key]
                self.stats.evictions += 1
                if self.iostats is not None:
                    self.iostats.version_store_evictions += 1
                evicted += 1
            return evicted

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def _drop_where(self, store_key: str, predicate) -> int:
        with self.latch:
            dropped = 0
            for key in [k for k in self._versions if k[0] == store_key]:
                versions = self._versions[key]
                kept = []
                for version in versions:
                    if predicate(version):
                        self._bytes -= len(version.data)
                        dropped += 1
                    else:
                        kept.append(version)
                if kept:
                    self._versions[key] = kept
                else:
                    del self._versions[key]
            if dropped:
                self.stats.invalidations += dropped
                if self.iostats is not None:
                    self.iostats.version_store_invalidations += dropped
            return dropped

    def invalidate_from(self, store_key: str, lsn: int) -> int:
        """History at or above ``lsn`` was rewritten (crash discarded the
        volatile tail; promotion discarded shipped records): drop versions
        whose state no longer exists and clamp intervals that reached into
        the rewritten range. Returns versions dropped."""
        with self.latch:
            for key, versions in self._versions.items():
                if key[0] != store_key:
                    continue
                for version in versions:
                    if version.limit_lsn > lsn:
                        version.limit_lsn = lsn
            return self._drop_where(
                store_key,
                lambda v: v.version_lsn >= lsn or v.limit_lsn <= v.version_lsn,
            )

    def gc(self, store_key: str, floor_lsn: int) -> int:
        """Drop versions whose whole interval fell below the retained log.

        A future pool acquire resolves to a split at or above the log
        start — except splits already pooled, whose retention pins keep
        ``floor_lsn`` at or below them (so their serving versions always
        end above the floor and survive). Called by retention enforcement
        after each truncation — including the one that follows a pool
        eviction releasing its pin. Returns versions dropped.
        """
        with self.latch:
            return self._drop_where(store_key, lambda v: v.limit_lsn <= floor_lsn)

    def purge(self, store_key: str) -> int:
        """Forget every version under ``store_key`` (database dropped, its
        name reused, or a promoted replica's timeline diverged)."""
        with self.latch:
            return self._drop_where(store_key, lambda v: True)

    def clear(self) -> None:
        """Drop every stored version."""
        with self.latch:
            for store_key in {key[0] for key in self._versions}:
                self.purge(store_key)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def versions(self, store_key: str, page_id: int) -> list[tuple[int, int]]:
        """``(version_lsn, limit_lsn)`` intervals stored for a page."""
        with self.latch:
            return [
                (v.version_lsn, v.limit_lsn)
                for v in self._versions.get((store_key, page_id), ())
            ]

    def version_count(self, store_key: str | None = None) -> int:
        with self.latch:
            return sum(
                len(versions)
                for key, versions in self._versions.items()
                if store_key is None or key[0] == store_key
            )

    def as_dict(self) -> dict:
        """Stats surface for benchmarks and the engine API."""
        with self.latch:
            return self._as_dict_locked()

    def _as_dict_locked(self) -> dict:
        return {
            "budget_bytes": self.budget_bytes,
            "bytes": self._bytes,
            "versions": self.version_count(),
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "hit_rate": self.stats.hit_rate,
            "publishes": self.stats.publishes,
            "evictions": self.stats.evictions,
            "invalidations": self.stats.invalidations,
            "peak_bytes": self.stats.peak_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"PageVersionStore(versions={self.version_count()}, "
            f"bytes={self._bytes}/{self.budget_bytes}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
