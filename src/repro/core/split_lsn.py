"""Wall-clock time → SplitLSN translation (paper section 5.1).

The search first narrows the log region using the backward chain of
checkpoint records (which carry wall-clock stamps), then scans forward
reading transaction commit records to find the last commit at or before
the requested time. The SplitLSN is that commit's LSN: the snapshot's
state is "every record with LSN ≤ SplitLSN applied, minus transactions
still in flight at that point" — the in-flight ones are what snapshot
recovery's logical undo removes.
"""

from __future__ import annotations

from repro.errors import RetentionExceededError
from repro.wal.lsn import FIRST_LSN, NULL_LSN
from repro.wal.records import CheckpointBeginRecord, CommitRecord


def checkpoint_chain(db, *, max_entries: int | None = None):
    """Yield (lsn, wall_clock, prev_lsn) for checkpoints, newest first.

    Walks the ``prev_checkpoint_lsn`` back-chain starting at the boot
    page's last checkpoint. Stops at the retention horizon.

    Entries are memoized per database (``db._ckpt_chain_cache``, keyed by
    checkpoint LSN): the chain is immutable once written — a new
    checkpoint only *prepends* an anchor, so cached entries stay valid —
    and every ``find_split_lsn`` / snapshot creation / retention pass
    re-walks it, each uncached hop costing a random-priced log read. The
    cache is invalidated wholesale when history can be rewritten (crash
    discarding the volatile tail, replica promotion discarding shipped
    records — both run ``invalidate_caches``) and pruned below the
    horizon on truncation. Databases without the cache attribute
    (ephemeral restore views) walk uncached.
    """
    lsn = db.last_checkpoint_lsn
    cache = getattr(db, "_ckpt_chain_cache", None)
    count = 0
    while lsn != NULL_LSN and lsn >= db.log.start_lsn:
        entry = cache.get(lsn) if cache is not None else None
        if entry is None:
            rec = db.log.read(lsn)
            if not isinstance(rec, CheckpointBeginRecord):
                break
            entry = (rec.wall_clock, rec.prev_checkpoint_lsn)
            if cache is not None:
                cache[lsn] = entry
        wall, prev = entry
        yield lsn, wall, prev
        lsn = prev
        count += 1
        if max_entries is not None and count >= max_entries:
            break


def _last_commit_lsn(db) -> int:
    """The LSN of the last commit record in the retained log.

    The common case is O(1): the log manager tracks the last appended
    commit. The scan fallback covers logs where the tracker is unset
    (freshly restored files, post-crash before any commit). With no
    commit anywhere the last appended record's start LSN is returned, so
    the result is always a readable record boundary.
    """
    tracked = getattr(db.log, "last_commit_lsn", NULL_LSN)
    if tracked != NULL_LSN and tracked >= db.log.start_lsn:
        return tracked
    base = db.last_checkpoint_lsn
    if base == NULL_LSN or base < db.log.start_lsn:
        base = db.log.start_lsn
    for start in dict.fromkeys((base, db.log.start_lsn)):
        last_commit = NULL_LSN
        last_record = NULL_LSN
        for rec in db.log.scan(start):
            last_record = rec.lsn
            if isinstance(rec, CommitRecord):
                last_commit = rec.lsn
        if last_commit != NULL_LSN:
            return last_commit
    if last_record != NULL_LSN:
        return last_record
    return FIRST_LSN


def find_split_lsn(db, target_wall: float) -> int:
    """The SplitLSN for a snapshot as of ``target_wall`` (simulated time).

    Raises :class:`RetentionExceededError` when the target precedes the
    retained log (section 4.3's retention period).
    """
    now = db.env.clock.now()
    if target_wall >= now:
        # "As of now" (or future): everything committed so far. The split
        # must be a real record LSN (callers read it back and the analysis
        # window is bounded at split + 1), so return the last commit
        # record's LSN — not a raw byte offset into the log tail.
        return _last_commit_lsn(db)

    # Narrow using the checkpoint chain: newest checkpoint at/before target.
    base_lsn = NULL_LSN
    oldest_seen = None
    for lsn, wall, _prev in checkpoint_chain(db):
        oldest_seen = (lsn, wall)
        if wall <= target_wall:
            base_lsn = lsn
            break
    if base_lsn == NULL_LSN:
        if oldest_seen is not None and oldest_seen[0] == db.log.start_lsn:
            # The whole retained log is newer than the target only if even
            # the oldest retained checkpoint is newer.
            base_lsn = oldest_seen[0]
            if oldest_seen[1] > target_wall:
                raise RetentionExceededError(
                    f"as-of time {target_wall:.3f}s precedes the retained "
                    f"log (oldest checkpoint at {oldest_seen[1]:.3f}s)"
                )
        else:
            raise RetentionExceededError(
                f"as-of time {target_wall:.3f}s precedes the retained log"
            )

    # Scan forward for the last commit at or before the target.
    split = base_lsn
    for rec in db.log.scan(base_lsn):
        if isinstance(rec, CommitRecord):
            if rec.wall_clock <= target_wall:
                split = rec.lsn
            else:
                break
    return split
