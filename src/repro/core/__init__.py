"""The paper's contribution: page-oriented undo and as-of snapshots.

* :func:`~repro.core.page_undo.prepare_page_as_of` — section 4's
  ``PreparePageAsOf(page, asOfLSN)`` primitive.
* :func:`~repro.core.split_lsn.find_split_lsn` — section 5.1's wall-clock
  to SplitLSN translation.
* :class:`~repro.core.asof.AsOfSnapshot` — section 5's as-of database
  snapshots (creation, recovery, lazy page access).
* :class:`~repro.core.snapshot_pool.SnapshotPool` — pooled ephemeral
  snapshots backing inline ``SELECT ... AS OF`` queries and
  ``engine.query_as_of``: snapshots keyed by ``(database, split_lsn)``
  are reused across queries and sessions (refcounted) and evicted LRU
  under a side-file byte budget.
* :class:`~repro.core.version_store.PageVersionStore` — the
  cross-snapshot page version store: prepared page images keyed by the
  validity interval their chain walk proved, shared engine-wide so
  nearby/repeated AS OF reads skip the Figure 11 undo I/O entirely.
* :mod:`~repro.core.retention` — section 4.3's retention period.
* :mod:`~repro.core.recovery_tools` — the user-facing error-recovery
  workflows the paper's introduction walks through.
"""

from repro.core.asof import AsOfSnapshot
from repro.core.page_undo import PreparedVersion, prepare_page_as_of, prepare_page_version
from repro.core.recovery_tools import (
    diff_table,
    find_when_table_existed,
    recover_dropped_table,
    restore_rows,
)
from repro.core.retention import enforce_retention, retention_horizon
from repro.core.snapshot_pool import PoolStats, SnapshotPool
from repro.core.split_lsn import checkpoint_chain, find_split_lsn
from repro.core.txn_undo import undo_transaction
from repro.core.version_store import PageVersionStore, VersionStoreStats

__all__ = [
    "prepare_page_as_of",
    "prepare_page_version",
    "PreparedVersion",
    "find_split_lsn",
    "checkpoint_chain",
    "AsOfSnapshot",
    "SnapshotPool",
    "PoolStats",
    "PageVersionStore",
    "VersionStoreStats",
    "enforce_retention",
    "retention_horizon",
    "find_when_table_existed",
    "recover_dropped_table",
    "diff_table",
    "restore_rows",
    "undo_transaction",
]
