"""``PreparePageAsOf`` — the paper's core primitive (section 4).

Given the current content of a page and a target LSN, walk the page's
modification chain backwards (``pageLSN`` → each record's
``prevPageLSN``), applying each record's exact physical inverse, until the
page's state is as of the target. Pages are undone independently of each
other — the property that makes the whole scheme's cost proportional to
the data actually accessed.

When periodic full page images are logged (section 6.1), the image chain
(``lastImageLSN`` → each image's ``prevImageLSN``) is walked first: the
earliest image past the target is applied and only the few modifications
between the target and that image are undone, skipping whole regions of
the log.

The paper's own measurements (Figure 11, section 6) put the cost of this
walk at roughly one random log read per chain record — the term that
dominates as-of query latency on high-latency media. Two things attack
that cost here:

* **Batched chain walks** — :func:`prepare_page_version` discovers the
  chain with header-only reads first (``prev_page_lsn`` lives in the
  fixed-size record header), then fetches the full records through
  :meth:`~repro.wal.log_manager.LogManager.read_many`, which sorts the
  LSNs by log block and coalesces nearby blocks into sequential-priced
  spans instead of N random undo reads.
* **Validity intervals** — the walk itself proves for which SplitLSNs the
  prepared image is byte-identical: every split in
  ``[version_lsn, limit_lsn)`` (the page's LSN after the rewind, and the
  first chain record above the target) yields the same bytes. The
  returned :class:`PreparedVersion` is what the cross-snapshot
  :class:`~repro.core.version_store.PageVersionStore` keys on, so nearby
  as-of reads skip the walk entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimEnv
from repro.errors import MissingUndoInfoError, StorageError
from repro.storage.page import Page
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN, format_lsn
from repro.wal.records import PageImageRecord


@dataclass(frozen=True)
class PreparedVersion:
    """Validity interval of a prepared page image.

    ``version_lsn`` is the page's LSN in the prepared state (the last
    modification at or below the target). ``limit_lsn`` is the first
    chain record *above* the target — the modification that ends the
    interval — or ``None`` when the walk proved no modification above the
    target exists in the page's current state (the image is then valid
    for every split up to the log position current when it was taken).
    Preparing the page for any SplitLSN inside
    ``[version_lsn, limit_lsn)`` produces byte-identical content, which is
    the reuse invariant the cross-snapshot version store relies on.
    """

    version_lsn: int
    limit_lsn: int | None


def prepare_page_as_of(
    page: Page,
    asof_lsn: int,
    log: LogManager,
    env: SimEnv,
    *,
    use_images: bool = True,
) -> Page:
    """Rewind ``page`` (in place) to its state as of ``asof_lsn``.

    Mirrors the paper's Figure 3 pseudo code, plus the image fast path.
    Raises :class:`~repro.errors.LogTruncatedError` when the chain leaves
    the retention window and
    :class:`~repro.errors.MissingUndoInfoError` when a record on the path
    cannot be inverted (extensions disabled and derivation impossible).
    """
    prepare_page_version(page, asof_lsn, log, env, use_images=use_images)
    return page


def prepare_page_version(
    page: Page,
    asof_lsn: int,
    log: LogManager,
    env: SimEnv,
    *,
    use_images: bool = True,
    batched: bool = True,
) -> PreparedVersion | None:
    """Rewind ``page`` to ``asof_lsn`` and report the validity interval.

    With ``batched`` (the default) the chain is discovered first via
    header-only reads and the records are fetched in one coalesced
    :meth:`~repro.wal.log_manager.LogManager.read_many` pass; otherwise
    each record is fetched with its own random block read — the paper's
    Figure 11 access pattern, kept as the reference implementation (the
    equivalence test pins both paths to identical pages and intervals).
    Returns ``None`` for a page whose history cannot be stated
    (unformatted with no chain to walk).
    """
    env.stats.pages_prepared_asof += 1
    fetch = log.undo_fetch
    if not page.is_formatted():
        return None
    current = page.page_lsn
    limit: int | None = None

    if use_images and page.last_image_lsn > asof_lsn and current > asof_lsn:
        best = _earliest_image_after(page, asof_lsn, log)
        if best is not None and best.lsn < current:
            page.restore(best.image)
            env.stats.undo_images_applied += 1
            # The image record sits on the chain above the target; until
            # the loop below finds an earlier boundary, it ends the
            # interval.
            limit = best.lsn
            current = best.prev_page_lsn

    if batched and current > asof_lsn:
        chain: list[int] = []
        while current > asof_lsn:
            header = log.read_header(current)
            chain.append(current)
            current = header.prev_page_lsn
        records = log.read_many(chain, for_undo=True)
        for lsn in chain:
            rec = records[lsn]
            env.charge_cpu(env.cost.undo_record_cpu_s)
            _apply_inverse(rec, page, fetch, lsn)
            env.stats.undo_records_applied += 1
            limit = lsn
    else:
        while current > asof_lsn:
            rec = fetch(current)
            env.charge_cpu(env.cost.undo_record_cpu_s)
            _apply_inverse(rec, page, fetch, current)
            env.stats.undo_records_applied += 1
            limit = current
            current = rec.prev_page_lsn

    if page.is_formatted():
        page.page_lsn = current
    return PreparedVersion(version_lsn=current, limit_lsn=limit)


def _apply_inverse(rec, page: Page, fetch, lsn: int) -> None:
    """Apply one record's physical inverse, naming broken chains."""
    try:
        rec.physical_undo(page, fetch)
    except StorageError as exc:
        # A physical inverse applied to an unformatted page means the
        # chain crossed an in-place format with no preformat record —
        # the paper's Figure 1 broken-chain scenario.
        raise MissingUndoInfoError(
            f"page {rec.page_id}: chain broken at {format_lsn(lsn)} "
            f"({exc})"
        ) from exc


def _earliest_image_after(page: Page, asof_lsn: int, log: LogManager) -> PageImageRecord | None:
    """Walk the image chain back to the first image past ``asof_lsn``."""
    best: PageImageRecord | None = None
    image_lsn = page.last_image_lsn
    while image_lsn > asof_lsn and image_lsn != NULL_LSN:
        rec = log.undo_fetch(image_lsn)
        if not isinstance(rec, PageImageRecord):
            raise MissingUndoInfoError(
                f"page {page.page_id}: image chain hit "
                f"{type(rec).__name__} at {format_lsn(image_lsn)}"
            )
        best = rec
        image_lsn = rec.prev_image_lsn
    return best


def undo_io_estimate(env_stats_before, env_stats_after) -> int:
    """Undo log *device* reads between two stats snapshots (Figure 11).

    Counts every random I/O the undo path issued: coalesced span reads
    plus header-only discovery reads (both stall on the log device; the
    batched walk trades N block reads for N cheap header reads and a few
    spans, and this metric keeps that trade visible).
    """
    return (
        env_stats_after.undo_log_reads
        - env_stats_before.undo_log_reads
        + env_stats_after.undo_header_reads
        - env_stats_before.undo_header_reads
    )
