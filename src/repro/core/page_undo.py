"""``PreparePageAsOf`` — the paper's core primitive (section 4).

Given the current content of a page and a target LSN, walk the page's
modification chain backwards (``pageLSN`` → each record's
``prevPageLSN``), applying each record's exact physical inverse, until the
page's state is as of the target. Pages are undone independently of each
other — the property that makes the whole scheme's cost proportional to
the data actually accessed.

When periodic full page images are logged (section 6.1), the image chain
(``lastImageLSN`` → each image's ``prevImageLSN``) is walked first: the
earliest image past the target is applied and only the few modifications
between the target and that image are undone, skipping whole regions of
the log.
"""

from __future__ import annotations

from repro.config import SimEnv
from repro.errors import MissingUndoInfoError, StorageError
from repro.storage.page import Page
from repro.wal.log_manager import LogManager
from repro.wal.lsn import NULL_LSN, format_lsn
from repro.wal.records import PageImageRecord


def prepare_page_as_of(
    page: Page,
    asof_lsn: int,
    log: LogManager,
    env: SimEnv,
    *,
    use_images: bool = True,
) -> Page:
    """Rewind ``page`` (in place) to its state as of ``asof_lsn``.

    Mirrors the paper's Figure 3 pseudo code, plus the image fast path.
    Raises :class:`~repro.errors.LogTruncatedError` when the chain leaves
    the retention window and
    :class:`~repro.errors.MissingUndoInfoError` when a record on the path
    cannot be inverted (extensions disabled and derivation impossible).
    """
    env.stats.pages_prepared_asof += 1
    fetch = log.undo_fetch
    if not page.is_formatted():
        return page
    current = page.page_lsn

    if use_images and page.last_image_lsn > asof_lsn and current > asof_lsn:
        best = _earliest_image_after(page, asof_lsn, log)
        if best is not None and best.lsn < current:
            page.restore(best.image)
            env.stats.undo_images_applied += 1
            current = best.prev_page_lsn

    while current > asof_lsn:
        rec = fetch(current)
        env.charge_cpu(env.cost.undo_record_cpu_s)
        try:
            rec.physical_undo(page, fetch)
        except StorageError as exc:
            # A physical inverse applied to an unformatted page means the
            # chain crossed an in-place format with no preformat record —
            # the paper's Figure 1 broken-chain scenario.
            raise MissingUndoInfoError(
                f"page {rec.page_id}: chain broken at {format_lsn(current)} "
                f"({exc})"
            ) from exc
        env.stats.undo_records_applied += 1
        current = rec.prev_page_lsn

    if page.is_formatted():
        page.page_lsn = current
    return page


def _earliest_image_after(page: Page, asof_lsn: int, log: LogManager) -> PageImageRecord | None:
    """Walk the image chain back to the first image past ``asof_lsn``."""
    best: PageImageRecord | None = None
    image_lsn = page.last_image_lsn
    while image_lsn > asof_lsn and image_lsn != NULL_LSN:
        rec = log.undo_fetch(image_lsn)
        if not isinstance(rec, PageImageRecord):
            raise MissingUndoInfoError(
                f"page {page.page_id}: image chain hit "
                f"{type(rec).__name__} at {format_lsn(image_lsn)}"
            )
        best = rec
        image_lsn = rec.prev_image_lsn
    return best


def undo_io_estimate(env_stats_before, env_stats_after) -> int:
    """Undo log *device* reads between two stats snapshots (Figure 11)."""
    return env_stats_after.undo_log_reads - env_stats_before.undo_log_reads
