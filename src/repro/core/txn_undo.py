"""Selective transaction undo — the paper's stated future work.

Section 8: "We are working on extending our scheme to undo a specific
transaction." This module implements that extension: given a *committed*
transaction's id, compensate exactly its row changes on the live database,
as a new transaction.

This is the transaction-oriented (logical) undo the paper's section 4.1
rejected as the *general* mechanism because of data dependencies — and
those dependencies are precisely what this implementation surfaces: if a
later transaction touched the same row, the undo either stops and reports
the conflict (``conflict_policy="abort"``) or overrides it
(``conflict_policy="force"``), mirroring the reconcile decision the paper
leaves to the application.

Limitations (by design): only row changes are compensated. Transactions
containing DDL (formats/allocations — e.g. CREATE/DROP TABLE) are
rejected; recover those with an as-of snapshot instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError, TransactionError
from repro.wal.lsn import NULL_LSN
from repro.wal.records import (
    AllocPageRecord,
    BeginRecord,
    ClrRecord,
    CommitRecord,
    DeallocPageRecord,
    DeleteRowRecord,
    FormatPageRecord,
    InsertRowRecord,
    UpdateRowRecord,
)


class TransactionUndoConflict(ReproError):
    """A later transaction modified data this undo needs to touch."""


class UnsupportedTransactionUndo(ReproError):
    """The transaction contains operations selective undo cannot reverse."""


@dataclass
class TxnUndoReport:
    """Outcome of one selective undo."""

    txn_id: int
    compensating_txn_id: int = 0
    undone: int = 0
    skipped_structural: int = 0
    conflicts: list = field(default_factory=list)

    def __repr__(self) -> str:
        return (
            f"TxnUndoReport(txn={self.txn_id}, undone={self.undone}, "
            f"conflicts={len(self.conflicts)})"
        )


def _find_transaction(db, txn_id: int):
    """Locate the transaction's chain head and commit status in the log."""
    last_lsn = NULL_LSN
    committed = False
    aborted = False
    for rec in db.log.scan(db.log.start_lsn, stop_on_torn_tail=True):
        if rec.txn_id != txn_id:
            continue
        if isinstance(rec, CommitRecord):
            committed = True
        elif type(rec).__name__ == "AbortRecord":
            aborted = True
        last_lsn = rec.lsn
    return last_lsn, committed, aborted


def _collect_row_changes(db, txn_id: int, last_lsn: int):
    """The transaction's undoable records, newest first."""
    records = []
    cur = last_lsn
    while cur != NULL_LSN:
        rec = db.log.read(cur)
        if isinstance(rec, BeginRecord):
            break
        if isinstance(rec, (CommitRecord,)):
            cur = rec.prev_txn_lsn
            continue
        if isinstance(rec, ClrRecord):
            cur = rec.undo_next_lsn
            continue
        if isinstance(rec, (FormatPageRecord, AllocPageRecord, DeallocPageRecord)):
            raise UnsupportedTransactionUndo(
                f"transaction {txn_id} contains DDL/allocation at "
                f"{rec.lsn:#x}; use an as-of snapshot instead"
            )
        if isinstance(rec, (InsertRowRecord, DeleteRowRecord, UpdateRowRecord)):
            records.append(rec)
        cur = rec.prev_txn_lsn
    return records


def undo_transaction(db, txn_id: int, *, conflict_policy: str = "abort") -> TxnUndoReport:
    """Compensate a committed transaction's row changes on the live database.

    ``conflict_policy``:

    * ``"abort"`` — raise :class:`TransactionUndoConflict` (rolling back
      any partial compensation) when a row no longer holds the value the
      target transaction left;
    * ``"force"`` — compensate anyway, last-writer-wins;
    * ``"skip"`` — leave conflicting rows alone, report them.

    The compensation runs as a regular new transaction (fully logged, so
    it is itself undoable and visible to as-of snapshots).
    """
    if conflict_policy not in ("abort", "force", "skip"):
        raise ValueError(f"unknown conflict policy {conflict_policy!r}")
    last_lsn, committed, aborted = _find_transaction(db, txn_id)
    if last_lsn == NULL_LSN:
        raise TransactionError(f"transaction {txn_id} not found in the log")
    if aborted:
        raise TransactionError(f"transaction {txn_id} already rolled back")
    if not committed:
        raise TransactionError(
            f"transaction {txn_id} is not committed; use rollback"
        )
    records = _collect_row_changes(db, txn_id, last_lsn)

    report = TxnUndoReport(txn_id=txn_id)
    txn = db.begin()
    report.compensating_txn_id = txn.txn_id
    try:
        for rec in records:
            if rec.is_smo:
                report.skipped_structural += 1
                continue
            if rec.is_heap:
                self_undone = _undo_heap_row(db, txn, rec, conflict_policy, report)
            else:
                self_undone = _undo_tree_row(db, txn, rec, conflict_policy, report)
            report.undone += int(self_undone)
    except BaseException:
        db.rollback(txn)
        raise
    db.commit(txn)
    return report


def _conflict(report, policy, description) -> bool:
    """Record a conflict; returns True when the op should be skipped."""
    if policy == "abort":
        raise TransactionUndoConflict(description)
    report.conflicts.append(description)
    return policy == "skip"


def _undo_tree_row(db, txn, rec, policy, report) -> bool:
    tree = db.tree_for_object(rec.object_id)
    if tree is None:
        return not _conflict(
            report, policy, f"object {rec.object_id} no longer exists"
        )
    key = tree.key_codec.decode(rec.key_bytes)
    current = tree.get(key)
    handle_name = tree.schema.name

    if isinstance(rec, InsertRowRecord):
        expected = tree.codec.decode(rec.row)
        if current is None:
            _conflict(report, policy, f"{handle_name}{key!r}: row already gone")
            return False
        if current != expected and _conflict(
            report, policy, f"{handle_name}{key!r}: modified since (have {current!r})"
        ):
            return False
        tree.delete(txn, key)
        return True

    if isinstance(rec, DeleteRowRecord):
        if current is not None:
            if _conflict(
                report, policy, f"{handle_name}{key!r}: re-inserted since"
            ):
                return False
            tree.delete(txn, key)
        tree._insert_bytes(txn, rec.row, key, clr_for=None)
        return True

    # UpdateRowRecord
    expected = tree.codec.decode(rec.new)
    if current is None:
        _conflict(report, policy, f"{handle_name}{key!r}: row deleted since")
        return False
    if current != expected and _conflict(
        report, policy, f"{handle_name}{key!r}: modified since (have {current!r})"
    ):
        return False
    tree._update_bytes(txn, key, rec.old, clr_for=None)
    return True


def _undo_heap_row(db, txn, rec, policy, report) -> bool:
    """Tombstone a heap insert (heap slots are stable)."""
    if not isinstance(rec, InsertRowRecord):
        return not _conflict(
            report, policy, f"heap op at {rec.lsn:#x} is not an insert"
        )
    from repro.wal.records import UpdateRowRecord as _Update

    with db.fetch_page(rec.page_id) as guard:
        page = guard.page
        if rec.slot >= page.slot_count:
            _conflict(report, policy, f"heap slot {rec.slot} vanished")
            return False
        current = page.record(rec.slot)
        if current != rec.row:
            if current == b"":
                _conflict(report, policy, f"heap row at slot {rec.slot} already tombstoned")
                return False
            if _conflict(
                report, policy, f"heap slot {rec.slot} modified since"
            ):
                return False
        comp = _Update(
            slot=rec.slot,
            old=current,
            new=b"",
            page_id=rec.page_id,
            object_id=rec.object_id,
        )
        db.modifier.apply(txn, guard, comp)
    return True
