"""User-facing error-recovery workflows (the paper's introduction).

These helpers wrap the as-of snapshot machinery into the workflows a DBA
actually runs: probing backwards for the moment an object still existed,
copying a dropped table back, and diffing a table between two points in
time to reconcile selectively.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, RetentionExceededError


@dataclass
class ProbeResult:
    """Outcome of the iterative point-in-time search."""

    found: bool
    as_of: float | None
    probes: int
    snapshot_name: str | None = None


def find_when_table_existed(
    engine,
    db_name: str,
    table: str,
    *,
    latest: float,
    step_s: float = 60.0,
    max_probes: int = 32,
    keep_snapshot: bool = False,
) -> ProbeResult:
    """Probe backwards from ``latest`` until ``table`` is visible.

    The paper's introduction: each probe creates an as-of snapshot and
    checks the catalog — cheap regardless of database size, because only
    metadata pages are unwound. Earlier probes double the step
    (exponential back-off) to cover long gaps quickly.
    """
    when = latest
    step = step_s
    for probe in range(max_probes):
        name = f"__probe_{table}_{probe}"
        try:
            snap = engine.create_asof_snapshot(db_name, name, when)
        except RetentionExceededError:
            return ProbeResult(False, None, probe + 1)
        if snap.table_exists(table):
            if not keep_snapshot:
                engine.drop_snapshot(name)
                name = None
            return ProbeResult(True, when, probe + 1, snapshot_name=name)
        engine.drop_snapshot(name)
        when -= step
        step *= 2
    return ProbeResult(False, None, max_probes)


def recover_dropped_table(engine, db_name: str, table: str, as_of) -> int:
    """Re-create ``table`` as of ``as_of`` and copy its rows back.

    Returns the number of rows recovered. The live database must not
    currently have a table of that name.
    """
    db = engine.database(db_name)
    if db.catalog.get_by_name(table) is not None:
        raise CatalogError(
            f"table {table!r} still exists; drop or rename it first"
        )
    snap_name = f"__recover_{table}"
    snap = engine.create_asof_snapshot(db_name, snap_name, engine.resolve_as_of(as_of))
    try:
        schema = snap.schema(table)
        info = snap.catalog.get_by_name(table)
        db.create_table(schema, heap=info.is_heap)
        copied = 0
        with db.transaction() as txn:
            for row in snap.scan(table):
                db.insert(txn, table, row)
                copied += 1
        return copied
    finally:
        engine.drop_snapshot(snap_name)


@dataclass
class TableDiff:
    """Key-level difference of one table between two readers."""

    only_in_past: list = field(default_factory=list)
    only_in_present: list = field(default_factory=list)
    changed: list = field(default_factory=list)  # (key, past_row, present_row)

    @property
    def is_empty(self) -> bool:
        return not (self.only_in_past or self.only_in_present or self.changed)


def diff_table(past_reader, present_reader, table: str) -> TableDiff:
    """Compare a table between two readers (snapshots and/or databases).

    This powers selective reconcile: restore only the rows the error
    destroyed, keep everything legitimate work changed since.
    """
    past_schema = past_reader.table(table).schema
    past = {past_schema.key_of(row): row for row in past_reader.scan(table)}
    present = {
        past_schema.key_of(row): row for row in present_reader.scan(table)
    }
    diff = TableDiff()
    for key, row in past.items():
        if key not in present:
            diff.only_in_past.append(row)
        elif present[key] != row:
            diff.changed.append((key, row, present[key]))
    for key, row in present.items():
        if key not in past:
            diff.only_in_present.append(row)
    return diff


def restore_rows(db, table: str, diff: TableDiff, *, restore_changed: bool = False) -> int:
    """Re-insert the rows a user error removed (and optionally restore
    changed rows to their past values); returns rows written."""
    written = 0
    with db.transaction() as txn:
        for row in diff.only_in_past:
            db.insert(txn, table, row)
            written += 1
        if restore_changed:
            schema = db.table(table).schema
            for key, past_row, _present_row in diff.changed:
                changes = {
                    name: value
                    for name, value in zip(schema.column_names, past_row, strict=True)
                    if name not in schema.key
                }
                db.update(txn, table, key, changes)
                written += 1
    return written
