"""Retention period enforcement (paper section 4.3).

``ALTER DATABASE ... SET UNDO_INTERVAL = 24 HOURS`` keeps the transaction
log long enough to rewind any page that far back. Enforcement truncates
the log at checkpoint boundaries: we keep the newest checkpoint whose
wall-clock stamp is at or before the horizon (an as-of snapshot inside the
window needs the analysis scan to start at a checkpoint at or before its
SplitLSN), never truncating past the oldest active transaction or the
last completed checkpoint.
"""

from __future__ import annotations

from repro.core.split_lsn import checkpoint_chain
from repro.wal.lsn import NULL_LSN


def retention_horizon(db) -> float:
    """Oldest wall-clock time the database must remain rewindable to."""
    return db.env.clock.now() - db.undo_interval_s


def enforce_retention(db) -> int:
    """Truncate log below the retention window; returns the log start LSN.

    Besides the wall-clock horizon, the oldest active transaction and the
    last checkpoint, enforcement consults the database's registered
    retention pins — pooled as-of splits and log-shipping cursors (which
    cover both lagging standbys and the archive tier's
    :class:`~repro.archive.archiver.LogArchiver`, whose cursor advances
    only once a segment is durably archived) — so a live pooled snapshot,
    a lagging standby, or not-yet-archived log never has the log
    truncated out from under it. A detached subscriber releases its pin
    and truncation resumes.
    """
    horizon_wall = retention_horizon(db)
    keep_lsn = NULL_LSN
    for lsn, wall, _prev in checkpoint_chain(db):
        if wall <= horizon_wall:
            keep_lsn = lsn
            break
    if keep_lsn == NULL_LSN:
        return db.log.start_lsn
    for txn in db.txns.active_transactions():
        if txn.first_lsn != NULL_LSN:
            keep_lsn = min(keep_lsn, txn.first_lsn)
    keep_lsn = min(keep_lsn, db.last_checkpoint_lsn)
    for pin in db.retention_pins:
        pinned = pin()
        if pinned is not None and pinned != NULL_LSN:
            keep_lsn = min(keep_lsn, pinned)
    if keep_lsn > db.log.start_lsn:
        db.log.flush()
        db.log.truncate_before(keep_lsn)
        # Truncation moved the reachability floor: drop memoized
        # checkpoint entries and stored page versions whose whole
        # interval fell below it (versions serving a still-pooled split
        # end above the floor — the entry's pin kept keep_lsn at or
        # below the split — so they survive).
        cache = getattr(db, "_ckpt_chain_cache", None)
        if cache:
            for lsn in [lsn for lsn in cache if lsn < keep_lsn]:
                del cache[lsn]
        store = getattr(db, "version_store", None)
        if store is not None:
            store.gc(db.version_store_key, db.log.start_lsn)
    return db.log.start_lsn
