"""Buffer pool tests: pinning, LRU eviction, WAL discipline."""

from __future__ import annotations

import pytest

from repro.config import SimEnv
from repro.errors import BufferPoolError
from repro.storage.buffer import BufferPool
from repro.storage.datafile import FileManager, MemoryDataFile
from repro.storage.page import Page, PageType
from repro.wal.log_manager import LogManager
from repro.wal.records import BeginRecord

PAGE_SIZE = 1024


def make_pool(capacity=4, with_log=True, profile=None):
    env = SimEnv(data_profile=profile) if profile else SimEnv.for_tests()
    fm = FileManager(MemoryDataFile(PAGE_SIZE), env.data_device, env.stats)
    log = LogManager(env) if with_log else None
    return BufferPool(fm, capacity, env.stats, log), fm, log, env


def write_formatted(fm, page_id):
    page = Page(bytearray(PAGE_SIZE))
    page.format(page_id, PageType.HEAP, object_id=1)
    page.insert_record(0, f"page-{page_id}".encode())
    fm.write_page(page_id, bytes(page.data))


class TestFetch:
    def test_miss_reads_from_file(self):
        pool, fm, _log, env = make_pool()
        write_formatted(fm, 3)
        with pool.fetch(3) as guard:
            assert guard.page.record(0) == b"page-3"
        assert env.stats.buffer_misses == 1

    def test_hit_skips_file(self):
        pool, fm, _log, env = make_pool()
        write_formatted(fm, 3)
        with pool.fetch(3):
            pass
        reads = env.stats.page_reads
        with pool.fetch(3):
            pass
        assert env.stats.page_reads == reads
        assert env.stats.buffer_hits == 1

    def test_create_skips_read(self):
        pool, _fm, _log, env = make_pool()
        with pool.fetch(9, create=True) as guard:
            assert not guard.page.is_formatted()
        assert env.stats.page_reads == 0

    def test_nested_pins(self):
        pool, _fm, _log, _env = make_pool()
        g1 = pool.fetch(0, create=True)
        g2 = pool.fetch(0)
        assert g1.frame is g2.frame
        assert g1.frame.pin_count == 2
        g2.unpin()
        g1.unpin()
        assert g1.frame.pin_count == 0

    def test_double_unpin_rejected(self):
        pool, _fm, _log, _env = make_pool()
        guard = pool.fetch(0, create=True)
        guard.unpin()
        with pytest.raises(BufferPoolError):
            guard.unpin()

    def test_peek_no_io(self):
        pool, fm, _log, env = make_pool()
        write_formatted(fm, 2)
        assert pool.peek(2) is None
        with pool.fetch(2):
            pass
        assert pool.peek(2) is not None
        assert env.stats.page_reads == 1


class TestEviction:
    def test_lru_eviction(self):
        pool, fm, _log, env = make_pool(capacity=2)
        for pid in range(3):
            write_formatted(fm, pid)
            with pool.fetch(pid):
                pass
        assert len(pool) == 2
        assert pool.peek(0) is None  # oldest evicted
        assert env.stats.buffer_evictions == 1

    def test_dirty_eviction_writes_back(self):
        pool, fm, _log, _env = make_pool(capacity=2)
        with pool.fetch(0, create=True) as guard:
            guard.page.format(0, PageType.HEAP)
            guard.page.insert_record(0, b"dirty")
            guard.mark_dirty()
        with pool.fetch(1, create=True):
            pass
        with pool.fetch(2, create=True):
            pass  # evicts page 0
        assert Page(fm.read_page(0)).record(0) == b"dirty"

    def test_pinned_frames_survive(self):
        pool, _fm, _log, _env = make_pool(capacity=2)
        guard = pool.fetch(0, create=True)
        with pool.fetch(1, create=True):
            pass
        with pool.fetch(2, create=True):
            pass  # must evict 1, not pinned 0
        assert pool.peek(0) is not None
        guard.unpin()

    def test_all_pinned_raises(self):
        pool, _fm, _log, _env = make_pool(capacity=2)
        g0 = pool.fetch(0, create=True)
        g1 = pool.fetch(1, create=True)
        with pytest.raises(BufferPoolError):
            pool.fetch(2, create=True)
        g0.unpin()
        g1.unpin()

    def test_wal_rule_on_eviction(self):
        """Dirty eviction forces the log first (WAL discipline)."""
        pool, _fm, log, _env = make_pool(capacity=1)
        lsn = log.append(BeginRecord(txn_id=1))
        with pool.fetch(0, create=True) as guard:
            guard.page.format(0, PageType.HEAP)
            guard.page.page_lsn = lsn
            guard.mark_dirty()
        with pool.fetch(1, create=True):
            pass  # evicts dirty page 0
        assert log.durable_lsn > lsn


class TestFlush:
    def test_flush_all_clears_dirty(self):
        pool, fm, _log, _env = make_pool(capacity=8)
        for pid in range(3):
            with pool.fetch(pid, create=True) as guard:
                guard.page.format(pid, PageType.HEAP)
                guard.page.insert_record(0, str(pid).encode())
                guard.mark_dirty()
        assert sorted(pool.dirty_page_ids()) == [0, 1, 2]
        written = pool.flush_all()
        assert written == 3
        assert pool.dirty_page_ids() == []
        assert Page(fm.read_page(1)).record(0) == b"1"

    def test_flush_page_single(self):
        pool, fm, _log, _env = make_pool()
        with pool.fetch(0, create=True) as guard:
            guard.page.format(0, PageType.HEAP)
            guard.mark_dirty()
        pool.flush_page(0)
        assert pool.dirty_page_ids() == []
        assert Page(fm.read_page(0)).is_formatted()

    def test_crash_loses_buffered_state(self):
        pool, fm, _log, _env = make_pool()
        with pool.fetch(0, create=True) as guard:
            guard.page.format(0, PageType.HEAP)
            guard.mark_dirty()
        pool.crash()
        assert len(pool) == 0
        assert not Page(fm.read_page(0)).is_formatted()

    def test_drop_clean(self):
        pool, _fm, _log, _env = make_pool()
        with pool.fetch(0, create=True):
            pass
        pool.drop_clean(0)
        assert pool.peek(0) is None

    def test_drop_pinned_rejected(self):
        pool, _fm, _log, _env = make_pool()
        guard = pool.fetch(0, create=True)
        with pytest.raises(BufferPoolError):
            pool.drop_clean(0)
        guard.unpin()
