"""Log manager tests: append/flush, reads, scans, truncation, crash."""

from __future__ import annotations

import pytest

from repro.config import SimEnv
from repro.errors import LogTruncatedError, WalError
from repro.sim.device import SAS_10K, SLC_SSD
from repro.wal.log_manager import LogManager
from repro.wal.lsn import FIRST_LSN
from repro.wal.records import (
    BeginRecord,
    CommitRecord,
    InsertRowRecord,
    PageImageRecord,
    PreformatPageRecord,
)


def make_log(data_profile=None, log_profile=None, **kw) -> tuple[LogManager, SimEnv]:
    env = SimEnv(log_profile=log_profile or SLC_SSD) if log_profile else SimEnv.for_tests()
    log = LogManager(env, **kw)
    return log, env


class TestAppendFlush:
    def test_first_lsn(self):
        log, _env = make_log()
        rec = BeginRecord(txn_id=1)
        assert log.append(rec) == FIRST_LSN
        assert rec.lsn == FIRST_LSN

    def test_lsns_monotone(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_flush_moves_durable_boundary(self):
        log, _env = make_log()
        log.append(BeginRecord(txn_id=1))
        assert log.durable_lsn == FIRST_LSN
        log.flush()
        assert log.durable_lsn == log.end_lsn

    def test_flush_noop_when_durable(self):
        log, env = make_log(log_profile=SLC_SSD)
        lsn = log.append(BeginRecord(txn_id=1))
        log.flush()
        flushes = env.stats.log_flushes
        log.flush(lsn)
        assert env.stats.log_flushes == flushes

    def test_flush_charges_sequential_write(self):
        log, env = make_log(log_profile=SAS_10K)
        log.append(BeginRecord(txn_id=1))
        log.flush()
        assert env.clock.now() > 0
        assert env.stats.log_write_bytes > 0

    def test_record_counters(self):
        log, env = make_log()
        log.append(PreformatPageRecord(image=b"x" * 100, page_id=3))
        log.append(PageImageRecord(image=b"y" * 100, page_id=3))
        assert env.stats.preformat_records == 1
        assert env.stats.page_image_records == 1
        assert env.stats.preformat_bytes > 100
        assert env.stats.log_records == 2


class TestRead:
    def test_read_back(self):
        log, _env = make_log()
        lsn = log.append(InsertRowRecord(slot=2, row=b"data", page_id=9))
        rec = log.read(lsn)
        assert isinstance(rec, InsertRowRecord)
        assert rec.lsn == lsn
        assert rec.row == b"data"

    def test_read_below_start_raises(self):
        log, _env = make_log()
        with pytest.raises(WalError):
            log.read(FIRST_LSN - 1)

    def test_read_past_end_raises(self):
        log, _env = make_log()
        with pytest.raises(WalError):
            log.read(log.end_lsn)

    def test_volatile_tail_read_is_free(self):
        log, env = make_log(log_profile=SAS_10K)
        lsn = log.append(BeginRecord(txn_id=1))
        t0 = env.clock.now()
        log.read(lsn, for_undo=True)
        assert env.clock.now() == t0
        assert env.stats.undo_log_reads == 0

    def test_durable_read_charges_then_caches(self):
        log, env = make_log(log_profile=SAS_10K, block_size=4096, cache_blocks=4)
        lsn = log.append(BeginRecord(txn_id=1))
        log.flush()
        t0 = env.clock.now()
        log.read(lsn, for_undo=True)
        assert env.clock.now() > t0
        assert env.stats.undo_log_reads == 1
        t1 = env.clock.now()
        log.read(lsn, for_undo=True)
        assert env.clock.now() == t1  # cache hit
        assert env.stats.undo_log_cache_hits == 1

    def test_cache_eviction(self):
        log, env = make_log(log_profile=SAS_10K, block_size=256, cache_blocks=2)
        lsns = []
        for _ in range(40):
            lsns.append(log.append(InsertRowRecord(slot=0, row=bytes(50), page_id=1)))
        log.flush()
        log.read(lsns[0], for_undo=True)
        log.read(lsns[20], for_undo=True)
        log.read(lsns[-1], for_undo=True)
        reads_before = env.stats.undo_log_reads
        log.read(lsns[0], for_undo=True)  # evicted: charged again
        assert env.stats.undo_log_reads == reads_before + 1


class TestScan:
    def test_scan_all(self):
        log, _env = make_log()
        for i in range(10):
            log.append(BeginRecord(txn_id=i + 1))
        records = list(log.scan(FIRST_LSN))
        assert len(records) == 10
        assert [r.txn_id for r in records] == list(range(1, 11))

    def test_scan_range(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(10)]
        subset = list(log.scan(lsns[3], lsns[7]))
        assert [r.lsn for r in subset] == lsns[3:7]

    def test_scan_stops_at_torn_tail(self):
        log, _env = make_log()
        for i in range(5):
            log.append(BeginRecord(txn_id=i))
        log.flush()
        # Corrupt the tail: append garbage directly.
        log._data += b"\x99" * 10
        records = list(log.scan(FIRST_LSN, stop_on_torn_tail=True))
        assert len(records) == 5

    def test_scan_charges_sequentially(self):
        log, env = make_log(log_profile=SAS_10K, block_size=512, cache_blocks=64)
        for i in range(50):
            log.append(CommitRecord(wall_clock=float(i), txn_id=i))
        log.flush()
        list(log.scan(FIRST_LSN))
        assert env.stats.log_scan_reads > 0
        assert env.stats.undo_log_reads == 0


class TestCrashTruncate:
    def test_crash_discards_volatile(self):
        log, _env = make_log()
        log.append(BeginRecord(txn_id=1))
        log.flush()
        end_durable = log.end_lsn
        log.append(BeginRecord(txn_id=2))
        log.crash()
        assert log.end_lsn == end_durable
        assert len(list(log.scan(FIRST_LSN, stop_on_torn_tail=True))) == 1

    def test_truncate_frees_and_guards(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(10)]
        log.flush()
        size_before = log.total_bytes()
        log.truncate_before(lsns[5])
        assert log.total_bytes() < size_before
        assert log.start_lsn == lsns[5]
        with pytest.raises(LogTruncatedError):
            log.read(lsns[4])
        with pytest.raises(LogTruncatedError):
            list(log.scan(lsns[0]))
        # Retained records still readable.
        assert log.read(lsns[5]).txn_id == 5

    def test_truncate_beyond_durable_rejected(self):
        log, _env = make_log()
        log.append(BeginRecord(txn_id=1))
        log.flush()
        lsn = log.append(BeginRecord(txn_id=2))
        with pytest.raises(WalError):
            log.truncate_before(log.end_lsn)
        del lsn

    def test_truncate_backwards_is_noop(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(4)]
        log.flush()
        log.truncate_before(lsns[2])
        log.truncate_before(lsns[1])
        assert log.start_lsn == lsns[2]

    def test_reads_after_truncate_use_correct_offsets(self):
        log, _env = make_log()
        lsns = []
        for i in range(20):
            lsns.append(log.append(InsertRowRecord(slot=i, row=bytes([i] * 10), page_id=1)))
        log.flush()
        log.truncate_before(lsns[10])
        for idx in range(10, 20):
            assert log.read(lsns[idx]).slot == idx


class TestBatchedReads:
    """read_header / read_many: the batched chain-walk access path."""

    def test_read_header_matches_record(self):
        log, _env = make_log()
        lsn = log.append(
            InsertRowRecord(
                slot=3, row=b"abc", page_id=9, prev_page_lsn=77, txn_id=5
            )
        )
        header = log.read_header(lsn)
        assert header.lsn == lsn
        assert header.page_id == 9
        assert header.prev_page_lsn == 77
        assert header.txn_id == 5

    def test_read_header_charges_sector_not_block(self):
        from repro.wal.log_manager import HEADER_READ_BYTES

        log, env = make_log(log_profile=SAS_10K, block_size=4096, cache_blocks=4)
        lsn = log.append(BeginRecord(txn_id=1))
        log.flush()
        t0 = env.clock.now()
        log.read_header(lsn)
        header_s = env.clock.now() - t0
        expected = SAS_10K.rand_read_time(HEADER_READ_BYTES)
        assert header_s == pytest.approx(expected)
        assert env.stats.undo_header_reads == 1
        # The block was never streamed: a full read still charges it.
        t1 = env.clock.now()
        log.read(lsn, for_undo=True)
        assert env.clock.now() > t1
        assert env.stats.undo_log_reads == 1
        # ... and once the block is cached, headers are free.
        t2 = env.clock.now()
        log.read_header(lsn)
        assert env.clock.now() == t2

    def test_read_many_returns_all_records(self):
        log, _env = make_log()
        lsns = [
            log.append(InsertRowRecord(slot=i, row=bytes([i] * 20), page_id=1))
            for i in range(10)
        ]
        log.flush()
        records = log.read_many([lsns[7], lsns[2], lsns[7], lsns[0]])
        assert set(records) == {lsns[0], lsns[2], lsns[7]}
        assert records[lsns[2]].slot == 2
        assert records[lsns[7]].slot == 7

    def test_read_many_coalesces_adjacent_blocks(self):
        # 10 records of ~72 bytes across 256-byte blocks: the LSN set
        # spans several adjacent blocks that one span must absorb.
        log, env = make_log(
            log_profile=SAS_10K, block_size=256, cache_blocks=16,
            coalesce_gap_blocks=1,
        )
        lsns = [
            log.append(InsertRowRecord(slot=i, row=bytes([i] * 30), page_id=1))
            for i in range(10)
        ]
        log.flush()
        records = log.read_many(lsns)
        assert len(records) == 10
        assert env.stats.undo_log_reads == 1  # one coalesced span
        assert env.stats.undo_reads_coalesced > 0
        # Spanned blocks are cached: re-reads are free.
        t0 = env.clock.now()
        log.read(lsns[0], for_undo=True)
        assert env.clock.now() == t0

    def test_read_many_respects_gap_limit(self):
        log, env = make_log(
            log_profile=SAS_10K, block_size=256, cache_blocks=32,
            coalesce_gap_blocks=0,
        )
        lsns = []
        for i in range(40):
            lsns.append(
                log.append(InsertRowRecord(slot=i, row=bytes([i]) * 30, page_id=1))
            )
        log.flush()
        # Two records far apart with gap 0: two separate spans.
        log.read_many([lsns[0], lsns[-1]])
        assert env.stats.undo_log_reads == 2

    def test_read_many_volatile_tail_free(self):
        log, env = make_log(log_profile=SAS_10K)
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(3)]
        t0 = env.clock.now()
        records = log.read_many(lsns)
        assert env.clock.now() == t0
        assert len(records) == 3
        assert env.stats.undo_log_reads == 0

    def test_read_many_below_horizon_raises(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(4)]
        log.flush()
        log.truncate_before(lsns[2])
        with pytest.raises(LogTruncatedError):
            log.read_many([lsns[0], lsns[3]])

    def test_read_header_below_horizon_raises(self):
        log, _env = make_log()
        lsns = [log.append(BeginRecord(txn_id=i)) for i in range(4)]
        log.flush()
        log.truncate_before(lsns[2])
        with pytest.raises(LogTruncatedError):
            log.read_header(lsns[0])
