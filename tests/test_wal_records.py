"""Log record serialization round-trips and redo/undo semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LogRecordDecodeError, MissingUndoInfoError, WalError
from repro.storage.page import Page, PageType
from repro.wal.records import (
    FLAG_HEAP,
    FLAG_SMO,
    AbortRecord,
    AllocPageRecord,
    BeginRecord,
    CheckpointBeginRecord,
    CheckpointEndRecord,
    ClrRecord,
    CommitRecord,
    DeallocPageRecord,
    DeformatPageRecord,
    DeleteRowRecord,
    FormatPageRecord,
    InsertRowRecord,
    PageImageRecord,
    PreformatPageRecord,
    SetLinksRecord,
    UpdateRowRecord,
    decode_record,
)

PAGE_SIZE = 1024


def roundtrip(rec):
    blob = rec.serialize()
    decoded, end = decode_record(blob, 0, lsn=77)
    assert end == len(blob)
    assert decoded.lsn == 77
    assert type(decoded) is type(rec)
    assert decoded.txn_id == rec.txn_id
    assert decoded.prev_txn_lsn == rec.prev_txn_lsn
    assert decoded.page_id == rec.page_id
    assert decoded.prev_page_lsn == rec.prev_page_lsn
    assert decoded.object_id == rec.object_id
    assert decoded.flags == rec.flags
    return decoded


def tree_page(page_id: int = 5) -> Page:
    page = Page(bytearray(PAGE_SIZE))
    page.format(page_id, PageType.BTREE, object_id=10)
    return page


class TestSerialization:
    def test_begin(self):
        roundtrip(BeginRecord(txn_id=4))

    def test_commit_wall_clock(self):
        rec = roundtrip(CommitRecord(wall_clock=123.456, txn_id=4, prev_txn_lsn=99))
        assert rec.wall_clock == pytest.approx(123.456)

    def test_abort(self):
        roundtrip(AbortRecord(txn_id=9, prev_txn_lsn=1))

    def test_checkpoint_begin(self):
        rec = roundtrip(
            CheckpointBeginRecord(
                wall_clock=5.5,
                prev_checkpoint_lsn=42,
                active_txns=((3, 100), (7, 200)),
            )
        )
        assert rec.wall_clock == 5.5
        assert rec.prev_checkpoint_lsn == 42
        assert rec.active_txns == ((3, 100), (7, 200))

    def test_checkpoint_end(self):
        assert roundtrip(CheckpointEndRecord(begin_lsn=42)).begin_lsn == 42

    def test_format(self):
        rec = roundtrip(
            FormatPageRecord(
                page_type=int(PageType.BTREE),
                index_id=2,
                level=3,
                prev_page=7,
                next_page=8,
                page_id=5,
                object_id=10,
            )
        )
        assert rec.level == 3
        assert rec.prev_page == 7

    def test_preformat_image(self):
        image = bytes(range(256)) * 4
        rec = roundtrip(PreformatPageRecord(image=image, page_id=5, prev_page_lsn=33))
        assert rec.image == image

    def test_page_image(self):
        rec = roundtrip(
            PageImageRecord(image=b"\x01" * PAGE_SIZE, prev_image_lsn=12, page_id=5)
        )
        assert rec.prev_image_lsn == 12

    def test_insert(self):
        rec = roundtrip(
            InsertRowRecord(slot=3, row=b"row", key_bytes=b"key", page_id=5, txn_id=2)
        )
        assert (rec.slot, rec.row, rec.key_bytes) == (3, b"row", b"key")

    def test_delete_with_row(self):
        rec = roundtrip(
            DeleteRowRecord(slot=1, row=b"gone", key_bytes=b"k", pair_lsn=9, page_id=5)
        )
        assert rec.row == b"gone"
        assert rec.pair_lsn == 9

    def test_delete_without_row(self):
        rec = roundtrip(DeleteRowRecord(slot=1, row=None, pair_lsn=11, page_id=5, flags=FLAG_SMO))
        assert rec.row is None
        assert rec.is_smo

    def test_update(self):
        rec = roundtrip(
            UpdateRowRecord(slot=2, old=b"before", new=b"after", key_bytes=b"k", page_id=5)
        )
        assert (rec.old, rec.new) == (b"before", b"after")

    def test_update_without_old(self):
        assert roundtrip(UpdateRowRecord(slot=2, old=None, new=b"x", page_id=5)).old is None

    def test_set_links(self):
        rec = roundtrip(
            SetLinksRecord(old_prev=1, old_next=2, new_prev=3, new_next=4, page_id=5)
        )
        assert (rec.old_prev, rec.old_next, rec.new_prev, rec.new_next) == (1, 2, 3, 4)

    def test_alloc(self):
        rec = roundtrip(AllocPageRecord(target_page=9, was_ever_allocated=True, page_id=1))
        assert rec.target_page == 9
        assert rec.was_ever_allocated

    def test_dealloc(self):
        rec = roundtrip(DeallocPageRecord(target_page=9, clear_ever=True, page_id=1))
        assert rec.clear_ever

    def test_deformat(self):
        rec = roundtrip(DeformatPageRecord(page_type=4, index_id=1, level=2, page_id=5))
        assert rec.level == 2

    def test_clr_nested(self):
        comp = DeleteRowRecord(slot=4, row=b"undo-me", page_id=5)
        rec = roundtrip(
            ClrRecord(compensated_lsn=10, undo_next_lsn=6, comp=comp, page_id=5, txn_id=3)
        )
        assert rec.compensated_lsn == 10
        assert rec.undo_next_lsn == 6
        assert isinstance(rec.comp, DeleteRowRecord)
        assert rec.comp.row == b"undo-me"

    def test_clr_requires_comp(self):
        with pytest.raises(WalError):
            ClrRecord(compensated_lsn=1, undo_next_lsn=0, comp=None)

    def test_flags_roundtrip(self):
        rec = roundtrip(InsertRowRecord(slot=0, row=b"r", page_id=5, flags=FLAG_SMO | FLAG_HEAP))
        assert rec.is_smo and rec.is_heap


class TestDecodeErrors:
    def test_truncated_header(self):
        with pytest.raises(LogRecordDecodeError):
            decode_record(b"\x01\x02", 0)

    def test_truncated_body(self):
        blob = InsertRowRecord(slot=0, row=b"abcdef", page_id=1).serialize()
        with pytest.raises(LogRecordDecodeError):
            decode_record(blob[:-2], 0)

    def test_crc_mismatch(self):
        blob = bytearray(InsertRowRecord(slot=0, row=b"abcdef", page_id=1).serialize())
        blob[-1] ^= 0xFF
        with pytest.raises(LogRecordDecodeError):
            decode_record(blob, 0)


class TestRedoUndo:
    def test_insert_redo_undo(self):
        page = tree_page()
        rec = InsertRowRecord(slot=0, row=b"hello", page_id=5)
        rec.redo(page)
        assert page.record(0) == b"hello"
        rec.physical_undo(page)
        assert page.slot_count == 0

    def test_delete_redo_undo(self):
        page = tree_page()
        page.insert_record(0, b"bye")
        rec = DeleteRowRecord(slot=0, row=b"bye", page_id=5)
        rec.redo(page)
        assert page.slot_count == 0
        rec.physical_undo(page)
        assert page.record(0) == b"bye"

    def test_delete_undo_derives_from_pair(self):
        page = tree_page()
        insert = InsertRowRecord(slot=0, row=b"moved", page_id=6)
        insert.lsn = 500
        store = {500: insert}
        page.insert_record(0, b"moved")
        rec = DeleteRowRecord(slot=0, row=None, pair_lsn=500, page_id=5, flags=FLAG_SMO)
        rec.redo(page)
        rec.physical_undo(page, fetch=store.__getitem__)
        assert page.record(0) == b"moved"

    def test_delete_undo_without_info_raises(self):
        page = tree_page()
        rec = DeleteRowRecord(slot=0, row=None, page_id=5)
        with pytest.raises(MissingUndoInfoError):
            rec.physical_undo(page)

    def test_update_redo_undo(self):
        page = tree_page()
        page.insert_record(0, b"old")
        rec = UpdateRowRecord(slot=0, old=b"old", new=b"new!", page_id=5)
        rec.redo(page)
        assert page.record(0) == b"new!"
        rec.physical_undo(page)
        assert page.record(0) == b"old"

    def test_update_undo_without_old_raises(self):
        page = tree_page()
        page.insert_record(0, b"x")
        rec = UpdateRowRecord(slot=0, old=None, new=b"x", page_id=5)
        with pytest.raises(MissingUndoInfoError):
            rec.physical_undo(page)

    def test_format_redo_undo(self):
        page = Page(bytearray(PAGE_SIZE))
        rec = FormatPageRecord(
            page_type=int(PageType.BTREE), level=1, page_id=5, object_id=10
        )
        rec.redo(page)
        assert page.is_formatted() and page.level == 1
        rec.physical_undo(page)
        assert not page.is_formatted()

    def test_preformat_undo_restores_image(self):
        old = tree_page()
        old.insert_record(0, b"ancient")
        image = old.clone_bytes()
        page = tree_page()
        page.format(5, PageType.HEAP)
        rec = PreformatPageRecord(image=image, page_id=5)
        rec.redo(page)  # no-op
        assert page.page_type is PageType.HEAP
        rec.physical_undo(page)
        assert page.page_type is PageType.BTREE
        assert page.record(0) == b"ancient"

    def test_page_image_redo(self):
        page = tree_page()
        page.insert_record(0, b"state")
        image = page.clone_bytes()
        page.delete_record(0)
        rec = PageImageRecord(image=image, page_id=5)
        rec.redo(page)
        assert page.record(0) == b"state"
        rec.physical_undo(page)  # no-op
        assert page.record(0) == b"state"

    def test_set_links_redo_undo(self):
        page = tree_page()
        rec = SetLinksRecord(old_prev=0, old_next=0, new_prev=8, new_next=9, page_id=5)
        rec.redo(page)
        assert (page.prev_page, page.next_page) == (8, 9)
        rec.physical_undo(page)
        assert (page.prev_page, page.next_page) == (0, 0)

    def test_alloc_redo_undo_first_time(self):
        page = Page(bytearray(PAGE_SIZE))
        page.format(1, PageType.ALLOC_MAP)
        rec = AllocPageRecord(target_page=4, was_ever_allocated=False, page_id=1)
        rec.redo(page)
        assert page.get_body_bit(2)  # local index = 4 - (1+1)
        rec.physical_undo(page)
        assert not page.get_body_bit(2)

    def test_alloc_undo_preserves_prior_ever_bit(self):
        from repro.storage.page import ever_bit_offset

        page = Page(bytearray(PAGE_SIZE))
        page.format(1, PageType.ALLOC_MAP)
        ever = ever_bit_offset(PAGE_SIZE)
        page.set_body_bit(ever + 2, True)  # was ever allocated before
        rec = AllocPageRecord(target_page=4, was_ever_allocated=True, page_id=1)
        rec.redo(page)
        rec.physical_undo(page)
        assert page.get_body_bit(ever + 2)

    def test_dealloc_redo_keeps_ever_bit(self):
        from repro.storage.page import ever_bit_offset

        page = Page(bytearray(PAGE_SIZE))
        page.format(1, PageType.ALLOC_MAP)
        AllocPageRecord(target_page=4, page_id=1).redo(page)
        rec = DeallocPageRecord(target_page=4, page_id=1)
        rec.redo(page)
        assert not page.get_body_bit(2)
        assert page.get_body_bit(ever_bit_offset(PAGE_SIZE) + 2)
        rec.physical_undo(page)
        assert page.get_body_bit(2)

    def test_alloc_out_of_map_range_rejected(self):
        page = Page(bytearray(PAGE_SIZE))
        page.format(1, PageType.ALLOC_MAP)
        with pytest.raises(WalError):
            AllocPageRecord(target_page=1, page_id=1).redo(page)


class TestClrSemantics:
    def test_clr_redo_applies_comp(self):
        page = tree_page()
        page.insert_record(0, b"victim")
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=DeleteRowRecord(slot=0, row=b"victim", page_id=5),
            page_id=5,
        )
        clr.redo(page)
        assert page.slot_count == 0

    def test_clr_for_insert_undo_with_info(self):
        page = tree_page()
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=DeleteRowRecord(slot=0, row=b"victim", page_id=5),
            page_id=5,
        )
        clr.physical_undo(page)
        assert page.record(0) == b"victim"

    def test_clr_for_insert_undo_derives(self):
        page = tree_page()
        original = InsertRowRecord(slot=0, row=b"victim", page_id=5)
        original.lsn = 10
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=DeleteRowRecord(slot=0, row=None, page_id=5),
            page_id=5,
        )
        clr.physical_undo(page, fetch={10: original}.__getitem__)
        assert page.record(0) == b"victim"

    def test_clr_for_insert_undo_without_fetch_raises(self):
        page = tree_page()
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=DeleteRowRecord(slot=0, row=None, page_id=5),
            page_id=5,
        )
        with pytest.raises(MissingUndoInfoError):
            clr.physical_undo(page)

    def test_clr_for_delete_undo(self):
        page = tree_page()
        page.insert_record(0, b"back")
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=InsertRowRecord(slot=0, row=b"back", page_id=5),
            page_id=5,
        )
        clr.physical_undo(page)
        assert page.slot_count == 0

    def test_clr_for_update_undo_derives_from_update(self):
        page = tree_page()
        page.insert_record(0, b"older")
        original = UpdateRowRecord(slot=0, old=b"older", new=b"newer", page_id=5)
        original.lsn = 10
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=UpdateRowRecord(slot=0, old=None, new=b"older", page_id=5),
            page_id=5,
        )
        clr.physical_undo(page, fetch={10: original}.__getitem__)
        assert page.record(0) == b"newer"

    def test_clr_for_heap_tombstone_derives_from_insert(self):
        page = tree_page()
        page.insert_record(0, b"")
        original = InsertRowRecord(slot=0, row=b"heaprow", page_id=5, flags=FLAG_HEAP)
        original.lsn = 10
        clr = ClrRecord(
            compensated_lsn=10,
            undo_next_lsn=0,
            comp=UpdateRowRecord(slot=0, old=None, new=b"", page_id=5),
            page_id=5,
        )
        clr.physical_undo(page, fetch={10: original}.__getitem__)
        assert page.record(0) == b"heaprow"


# ---------------------------------------------------------------------------
# Property: every DML record type round-trips through bytes.
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(
    slot=st.integers(min_value=0, max_value=65535),
    row=st.binary(max_size=100),
    key=st.binary(max_size=40),
    txn=st.integers(min_value=0, max_value=2**63),
    prev=st.integers(min_value=0, max_value=2**63),
)
def test_insert_record_roundtrip_property(slot, row, key, txn, prev):
    rec = InsertRowRecord(
        slot=slot, row=row, key_bytes=key, txn_id=txn,
        prev_txn_lsn=prev, page_id=123, prev_page_lsn=prev // 2, object_id=9,
    )
    decoded, _ = decode_record(rec.serialize(), 0)
    assert decoded.slot == slot
    assert decoded.row == row
    assert decoded.key_bytes == key
    assert decoded.txn_id == txn
